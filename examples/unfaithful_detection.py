#!/usr/bin/env python3
"""The motivational example (paper Section III-A, Figure 3), made concrete.

An image feeder publishes camera frames; a traffic-sign recognizer
subscribes.  The recognizer is *unfaithful*: afraid of liability for
missing a stop sign, it logs a doctored version of every frame it
receives.  Under naive logging this is a he-said-she-said; under ADLP the
auditor proves exactly who lied.

Run:  python examples/unfaithful_detection.py
"""

import time

from repro import AdlpConfig, Auditor, LogServer, Master, Node, render_report
from repro.adversary import (
    GroundTruth,
    SubscriberBehavior,
    UnfaithfulAdlpProtocol,
)
from repro.adversary.behaviors import flip_first_byte
from repro.audit import Topology
from repro.audit.disputes import Blame, resolve_dispute
from repro.core import Direction
from repro.middleware.msgtypes import Image


def main() -> None:
    master = Master()
    log_server = LogServer()
    truth = GroundTruth()
    config = AdlpConfig(key_bits=1024)

    print("generating keys...")
    feeder_protocol = UnfaithfulAdlpProtocol(
        "/image_feeder", log_server, truth, config=config
    )
    # The liar: logs flip_first_byte(frame) instead of the frame it got.
    recognizer_protocol = UnfaithfulAdlpProtocol(
        "/sign_recognizer",
        log_server,
        truth,
        subscriber_behavior=SubscriberBehavior(falsify=flip_first_byte),
        config=config,
    )

    feeder = Node("/image_feeder", master, protocol=feeder_protocol)
    recognizer = Node("/sign_recognizer", master, protocol=recognizer_protocol)

    recognizer.subscribe("/camera/image_raw", Image, lambda m: None)
    publisher = feeder.advertise("/camera/image_raw", Image)
    publisher.wait_for_subscribers(1)

    print("publishing 3 camera frames (the real ones contain a stop sign)...")
    frame = b"\x01STOP-SIGN-PIXELS" + b"\x00" * 1024
    for _ in range(3):
        publisher.publish(Image(width=32, height=32, encoding="rgb8", data=frame))
        time.sleep(0.05)

    time.sleep(0.3)
    feeder_protocol.flush()
    recognizer_protocol.flush()
    feeder.shutdown()
    recognizer.shutdown()

    topology = Topology(publisher_of={"/camera/image_raw": "/image_feeder"})
    report = Auditor.for_server(log_server, topology).audit_server(log_server)
    print()
    print(render_report(report))

    assert report.flagged_components() == ["/sign_recognizer"]
    assert "/image_feeder" in report.clean_components()

    # Zoom into one disputed transmission and resolve it explicitly.
    pub_entry = log_server.entries(component_id="/image_feeder", seq=1)[0]
    sub_entry = log_server.entries(component_id="/sign_recognizer", seq=1)[0]
    verdict = resolve_dispute(pub_entry, sub_entry, log_server.keystore)
    print("\n--- dispute resolution for seq=1 ---")
    print(f"blame: {verdict.blame.value}")
    print(f"why:   {verdict.explanation}")
    assert verdict.blame is Blame.SUBSCRIBER

    # Ground truth confirms: the feeder's log matches what actually crossed
    # the wire; the recognizer's does not.
    true_digest = truth.digest_of("/camera/image_raw", 1)
    assert pub_entry.reported_hash() == true_digest
    assert sub_entry.reported_hash() != true_digest
    print("\nOK: the falsifying sign recognizer was convicted; "
          "the faithful image feeder is clean.")


if __name__ == "__main__":
    main()
