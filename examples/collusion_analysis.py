#!/usr/bin/env python3
"""Collusion groups and the limits of accountability (Sections II-A, IV-B).

Recreates the Figure 2 structure: components A, B, C, D where B and C
collude (same non-compliant vendor).  Shows that:

1. a collusion-free pair's dispute is always resolvable;
2. colluders can forge a mutually consistent pair of entries for a
   transmission that never happened -- the auditor accepts it (the paper's
   conceded limitation);
3. but the colluding group's *edge* transmissions (B -> A) remain fully
   auditable (Theorem 1), so B is still convicted when it lies to A.

Run:  python examples/collusion_analysis.py
"""

from repro import LogServer
from repro.adversary import forge_colluding_pair
from repro.audit import Auditor, Topology, render_report
from repro.audit.collusion import CollusionModel
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.protocol import message_digest
from repro.crypto import generate_keypair


def main() -> None:
    print("generating keys for A, B, C, D...")
    keys = {name: generate_keypair(1024) for name in ("/A", "/B", "/C", "/D")}
    server = LogServer()
    for name, pair in keys.items():
        server.register_key(name, pair.public)

    # -- the collusion structure (ground truth, Figure 2) ------------------
    model = CollusionModel(keys, colluding_pairs=[("/B", "/C")])
    print("\nmaximal collusion groups:")
    for group in model.groups:
        print(f"  {{{', '.join(sorted(group))}}}")
    print(f"collusion-free system? {model.is_collusion_free}")

    # -- 2. colluders forge a consistent lie on their internal edge --------
    print("\nB and C forge a consistent pair for a transmission that never "
          "happened (C -> B on /fabricated)...")
    lx, ly = forge_colluding_pair(
        "/C", keys["/C"], "/B", keys["/B"],
        "/fabricated", "fake/Data", seq=1, payload=b"we agree on this lie",
    )
    server.submit(lx)
    server.submit(ly)

    # -- 3. but B's edge transmission to A is still protected --------------
    # B really sent `honest_payload` to A; A (faithful) logged it.  B tries
    # to log a different payload.
    print("B really transmits to faithful A on /edge, then falsifies its "
          "own entry...")
    seq = 1
    honest_payload = b"the data B actually sent to A"
    honest_digest = message_digest(seq, honest_payload)
    s_b = keys["/B"].private.sign_digest(honest_digest)
    s_a = keys["/A"].private.sign_digest(honest_digest)
    # A's faithful subscriber entry, holding B's real signature:
    server.submit(LogEntry(
        component_id="/A", topic="/edge", type_name="edge/Data",
        direction=Direction.IN, seq=seq, scheme=Scheme.ADLP,
        data_hash=honest_digest, own_sig=s_a, peer_id="/B", peer_sig=s_b,
    ))
    # B's falsified publisher entry (re-signed for the fake payload, with
    # A's real ACK attached -- the best lie B can construct alone):
    fake_payload = b"what B wishes it had sent"
    fake_digest = message_digest(seq, fake_payload)
    server.submit(LogEntry(
        component_id="/B", topic="/edge", type_name="edge/Data",
        direction=Direction.OUT, seq=seq, scheme=Scheme.ADLP,
        data=fake_payload,
        own_sig=keys["/B"].private.sign_digest(fake_digest),
        peer_id="/A", peer_hash=honest_digest, peer_sig=s_a,
    ))

    topology = Topology(publisher_of={"/fabricated": "/C", "/edge": "/B"})
    report = Auditor.for_server(server, topology).audit_server(server)
    print()
    print(render_report(report))

    # The forged internal pair passed (limitation)...
    internal = [c for c in report.classified if c.entry.topic == "/fabricated"]
    assert all(c.verdict.value == "valid" for c in internal)
    print("\n-> the colluders' internal forgery was NOT detected "
          "(the paper's conceded limitation: L_V,c may be non-empty)")
    # ...but the edge lie was convicted, and A stays clean (Theorem 1).
    assert "/B" in report.flagged_components()
    assert "/A" in report.clean_components()
    print("-> B's lie about its edge transmission to faithful A WAS "
          "detected (Theorem 1 protects every non-colluding pair)")


if __name__ == "__main__":
    main()
