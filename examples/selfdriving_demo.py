#!/usr/bin/env python3
"""The paper's demo: a miniature self-driving car under ADLP (Section V).

Runs the full Figure 11(b) node graph -- camera, LIDAR, lane detector,
sign recognizer, obstacle detector, planner, controller, vehicle -- on a
simulated circular track with a stop sign and a slow zone.  Every topic
transmission is signed, acknowledged, and logged; afterwards the auditor
replays the evidence and the middleware graph shows the end-to-end
camera -> steering data flow.

Run:  python examples/selfdriving_demo.py [seconds]
"""

import sys
import time

from repro.apps.selfdriving import SelfDrivingApp
from repro.apps.selfdriving.app import seeded_keypairs
from repro.audit import Auditor, Topology, render_report
from repro.core import AdlpConfig
from repro.middleware.graph import end_to_end_paths


def main(duration: float = 8.0) -> None:
    print("generating RSA-1024 keys for all 8 nodes (seeded for the demo)...")
    keypairs = seeded_keypairs(bits=1024)
    app = SelfDrivingApp(
        scheme="adlp",
        keypairs=keypairs,
        adlp_config=AdlpConfig(key_bits=1024),
        camera_hz=20.0,
    )
    with app:
        topology = Topology.from_master(app.master)
        paths = end_to_end_paths(app.master, "/image_feeder", "/vehicle")
        print("\ncamera -> steering data-flow paths:")
        for path in paths:
            print("  " + " -> ".join(path))

        print(f"\ndriving for {duration:.0f}s (stop sign at the quarter lap, "
              f"slow zone at the three-quarter mark)...")
        app.start()
        t0 = time.monotonic()
        while time.monotonic() - t0 < duration:
            time.sleep(1.0)
            state = app.world.snapshot()
            print(
                f"  t={time.monotonic() - t0:4.1f}s  lap={app.world.laps:.3f}  "
                f"speed={state.speed:4.2f} m/s  "
                f"offset={app.world.lateral_offset():+.3f} m"
            )
        metrics = app.metrics(duration)
        app.flush_logs()
    app.flush_logs()

    print(f"\ndistance driven: {metrics.distance_m:.1f} m "
          f"({metrics.laps:.2f} laps), final lane offset "
          f"{metrics.final_offset_m:+.3f} m")
    print("messages published per node:")
    for node, count in sorted(metrics.messages_by_node.items()):
        print(f"  {node:<20} {count}")
    print(f"log: {len(app.log_server)} entries, "
          f"{app.log_server.total_bytes / 1e6:.1f} MB, "
          f"Merkle root {app.log_server.merkle_root().hex()[:16]}...")

    print("\nauditing the black box...")
    report = Auditor.for_server(app.log_server, topology).audit_server(app.log_server)
    print(render_report(report, max_findings=10))
    assert report.flagged_components() == [], "faithful car must audit clean"
    print("\nOK: every transmission in the drive is provably logged.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 8.0)
