#!/usr/bin/env python3
"""Post-incident forensics: trace a steering command back to its sensors.

Runs the self-driving app under ADLP, then plays National Transportation
Safety Board: pick the last steering command the vehicle consumed, verify
the log's integrity and validity, and reconstruct the command's full data
lineage -- down to the exact camera frame that caused it -- from nothing
but the audited log.

Run:  python examples/provenance_trace.py
"""

import time

from repro.apps.selfdriving import SelfDrivingApp
from repro.apps.selfdriving.app import seeded_keypairs
from repro.apps.selfdriving.nodes import TOPIC_STEERING
from repro.audit import Auditor, ProvenanceGraph, Topology
from repro.core import AdlpConfig, Direction


def main() -> None:
    print("running the self-driving app under ADLP for 4 seconds...")
    app = SelfDrivingApp(
        scheme="adlp",
        keypairs=seeded_keypairs(bits=1024),
        adlp_config=AdlpConfig(key_bits=1024),
    )
    with app:
        topology = Topology.from_master(app.master)
        app.run_for(4.0)
        app.flush_logs()
    app.flush_logs()
    server = app.log_server

    # Step 1: the evidence is tamper-evident and cryptographically audited.
    print("verifying log integrity and auditing all entries...")
    report = Auditor.for_server(server, topology).audit_server(server)
    assert report.flagged_components() == []
    valid_entries = [c.entry for c in report.valid_entries()]
    print(f"  {len(valid_entries)} entries, all valid")

    # Step 2: pick the incident datum -- the last steering command consumed
    # by the vehicle.
    steering = server.entries(topic=TOPIC_STEERING, direction=Direction.IN)
    incident = steering[-1]
    print(f"\nincident datum: {TOPIC_STEERING}#{incident.seq} "
          f"consumed by {incident.component_id} at t={incident.timestamp:.3f}")

    # Step 3: reconstruct provenance from the valid entries only.
    graph = ProvenanceGraph(valid_entries)
    lineage = graph.lineage(TOPIC_STEERING, incident.seq)
    suspects = graph.suspects(TOPIC_STEERING, incident.seq)

    print(f"\nlineage ({len(lineage)} upstream data items):")
    by_topic = {}
    for item in lineage:
        by_topic.setdefault(item.topic, []).append(item.seq)
    for topic, seqs in sorted(by_topic.items()):
        shown = ", ".join(f"#{s}" for s in seqs[-3:])
        more = f" (+{len(seqs) - 3} earlier)" if len(seqs) > 3 else ""
        print(f"  {topic:<24} {shown}{more}")

    print(f"\ncomponents on the causal chain: {', '.join(suspects)}")

    camera_frames = [i for i in lineage if i.topic == "/camera/image_raw"]
    assert camera_frames, "steering must trace back to camera frames"
    frame = camera_frames[-1]
    producer = graph.producer_of(frame.topic, frame.seq)
    print(f"\nthe decisive camera frame: {frame} -- published by {producer}, "
          f"whose signed log entry proves its content hash.")
    print("OK: the steering command is fully attributable, sensor to actuator.")


if __name__ == "__main__":
    main()
