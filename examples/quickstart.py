#!/usr/bin/env python3
"""Quickstart: two nodes, accountable logging, one audit.

A talker publishes strings, a listener consumes them -- both under ADLP.
Neither node's *application* code knows ADLP exists: the protocol lives in
the transport layer (the paper's transparency property).  At the end the
auditor verifies every log entry.

Run:  python examples/quickstart.py
"""

import time

from repro import (
    AdlpConfig,
    AdlpProtocol,
    Auditor,
    LogServer,
    Master,
    Node,
    render_report,
)
from repro.audit import Topology
from repro.middleware.msgtypes import StringMsg


def main() -> None:
    # The trusted logger: stores public keys and hash-chained log entries.
    log_server = LogServer()
    master = Master()

    # Each component generates its key pair and registers it (step 1 of the
    # prototype flow).  RSA-1024 generation takes a moment.
    print("generating RSA-1024 keys for both nodes...")
    config = AdlpConfig()  # paper defaults: RSA-1024, subscriber stores h(D)
    talker = Node("/talker", master, protocol=AdlpProtocol("/talker", log_server, config))
    listener = Node(
        "/listener", master, protocol=AdlpProtocol("/listener", log_server, config)
    )

    # Plain application code from here on.
    def on_message(msg: StringMsg) -> None:
        print(f"  listener got: {msg.data!r} (seq={msg.header.seq})")

    listener.subscribe("/chatter", StringMsg, on_message)
    publisher = talker.advertise("/chatter", StringMsg)
    publisher.wait_for_subscribers(1)

    for i in range(5):
        publisher.publish(StringMsg(data=f"hello, accountable world {i}"))
        time.sleep(0.05)

    # Let the ADLP acknowledgements and log submissions drain.
    time.sleep(0.3)
    talker.protocol.flush()
    listener.protocol.flush()
    talker.shutdown()
    listener.shutdown()

    print(f"\nlog server holds {len(log_server)} entries "
          f"({log_server.total_bytes} bytes), tamper-evident head "
          f"{log_server.store.head().hex()[:16]}...")

    # The audit: every transmission has a publisher entry and a subscriber
    # entry, cross-proven by each other's signatures.
    topology = Topology(
        publisher_of={"/chatter": "/talker"},
        subscribers_of={"/chatter": ["/listener"]},
    )
    report = Auditor.for_server(log_server, topology).audit_server(log_server)
    print()
    print(render_report(report))

    assert report.flagged_components() == [], "faithful run must audit clean"
    print("\nOK: all entries valid, nobody flagged.")


if __name__ == "__main__":
    main()
