#!/usr/bin/env python3
"""Record the car's sensor traffic, then re-run perception offline.

Phase 1 drives the self-driving car for a few seconds while a recorder
bags the camera topic. Phase 2 builds a *fresh* graph containing only the
perception nodes (no car, no sensors), replays the bag into it under ADLP,
and audits the offline re-execution -- the paper's debugging/forensics
workflow: reproduce a decision pipeline from recorded inputs, with the
replay itself accountable.

Run:  python examples/record_replay.py
"""

import tempfile
import time

from repro.apps.selfdriving import SelfDrivingApp
from repro.apps.selfdriving.app import seeded_keypairs
from repro.apps.selfdriving.nodes import LaneDetectorNode, TOPIC_IMAGE, TOPIC_LANE
from repro.audit import Auditor, Topology, render_report
from repro.core import AdlpConfig, AdlpProtocol, LogServer
from repro.middleware import Master, Node, Player, Recorder
from repro.middleware.msgtypes import LaneOffset
from repro.util.concurrency import wait_for


def record_drive(bag_path: str) -> int:
    print("phase 1: driving for 3 s while recording the camera topic...")
    with SelfDrivingApp(scheme="none") as app:
        app.start()
        recorder = Recorder(app.master, bag_path, topics=[TOPIC_IMAGE])
        time.sleep(3.0)
        recorder.stop()
        count = recorder.count
    print(f"  recorded {count} camera frames "
          f"({count / 3.0:.0f} Hz) into {bag_path}")
    return count


def replay_through_perception(bag_path: str, frames: int) -> None:
    print("\nphase 2: offline perception re-run under ADLP...")
    keys = seeded_keypairs(bits=1024)
    master = Master()
    server = LogServer()
    config = AdlpConfig(key_bits=1024)

    # only the perception node, fed from the bag
    detector = LaneDetectorNode(
        master,
        lambda name: AdlpProtocol(name, server, config=config, keypair=keys.get(name)),
    )
    offsets = []
    sink = Node(
        "/analysis",
        master,
        protocol=AdlpProtocol("/analysis", server, config=config),
    )
    sink.subscribe(TOPIC_LANE, LaneOffset, lambda m: offsets.append(m.offset_m))

    player = Player(
        master,
        bag_path,
        protocol=AdlpProtocol("/player", server, config=config),
    )
    # paced replay: flooding at rate=0 would overflow the 20 Hz pipeline's
    # queues exactly as it would in ROS
    published = player.play(rate=1.0, wait_for_subscribers=1)
    assert published == frames
    assert wait_for(lambda: len(offsets) >= frames * 0.8, timeout=20.0)
    time.sleep(0.5)
    for protocol_owner in (player.node, detector.node, sink):
        flush = getattr(protocol_owner.protocol, "flush", None)
        if callable(flush):
            flush()
    player.stop()
    detector.shutdown()
    sink.shutdown()

    print(f"  replayed {published} frames; lane detector produced "
          f"{len(offsets)} offsets, mean |offset| = "
          f"{sum(abs(o) for o in offsets) / max(len(offsets), 1):.4f} m")

    report = Auditor.for_server(server, Topology.from_master(master)).audit_server(server)
    print()
    print(render_report(report, max_findings=5))
    assert report.flagged_components() == []
    print("\nOK: the offline re-execution is itself fully accountable.")


def main() -> None:
    bag_path = tempfile.mktemp(suffix=".bag", prefix="adlp_drive_")
    frames = record_drive(bag_path)
    replay_through_perception(bag_path, frames)


if __name__ == "__main__":
    main()
