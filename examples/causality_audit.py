#!/usr/bin/env python3
"""Temporal causality auditing (paper Section IV-B2, Figure 10, Lemma 4).

Builds the three-component chain  x --A--> y --B--> z  and walks through
the paper's scenarios:

(b) all faithful: timestamps respect t_x,out < t_y,in < t_y,out < t_z,in;
(c) the middle component alone disrupts its timestamps: the chain's
    precedence survives and the local inversion implicates exactly y;
(d) everyone colludes: the order reverses, but only with the whole chain
    as suspects.

Run:  python examples/causality_audit.py
"""

from repro.audit.causality import (
    ChainHop,
    check_chain_precedence,
    precedence_holds,
)
from repro.core.entries import Direction, LogEntry, Scheme

CHAIN = [ChainHop("/x", "/A", 1, "/y"), ChainHop("/y", "/B", 1, "/z")]


def entry(component, topic, direction, timestamp):
    return LogEntry(
        component_id=component, topic=topic, type_name="demo/Data",
        direction=direction, seq=1, timestamp=timestamp, scheme=Scheme.ADLP,
    )


def show(label, entries):
    print(f"\n--- {label} ---")
    for e in entries:
        print(f"  {e.component_id:3} {e.direction.name.lower():3} "
              f"{e.topic} @ t={e.timestamp}")
    violations = check_chain_precedence(entries, CHAIN)
    if not violations:
        print("  no timestamp inconsistencies")
    for v in violations:
        print(f"  VIOLATION [{v.kind.value}] suspects={list(v.suspects)}")
        print(f"    {v.description}")
    print(f"  end-to-end precedence observable: "
          f"{precedence_holds(entries, CHAIN)}")
    return violations


def main() -> None:
    # (b) everyone faithful
    faithful = [
        entry("/x", "/A", Direction.OUT, 1.0),
        entry("/y", "/A", Direction.IN, 2.0),
        entry("/y", "/B", Direction.OUT, 3.0),
        entry("/z", "/B", Direction.IN, 4.0),
    ]
    assert not show("Figure 10(b): all faithful", faithful)

    # (c) y alone disrupts its two timestamps
    disrupted = [
        entry("/x", "/A", Direction.OUT, 1.0),
        entry("/y", "/A", Direction.IN, 3.5),   # moved late
        entry("/y", "/B", Direction.OUT, 0.5),  # moved early
        entry("/z", "/B", Direction.IN, 4.0),
    ]
    violations = show("Figure 10(c): y alone disrupts", disrupted)
    assert any(v.suspects == ("/y",) for v in violations)
    assert precedence_holds(disrupted, CHAIN)
    print("  -> Lemma 4: a single disruptor cannot break the precedence; "
          "its inversion is locally visible and names it")

    # (d) full collusion reverses the order
    colluding = [
        entry("/x", "/A", Direction.OUT, 3.0),
        entry("/y", "/A", Direction.IN, 4.0),
        entry("/y", "/B", Direction.OUT, 1.0),
        entry("/z", "/B", Direction.IN, 2.0),
    ]
    violations = show("Figure 10(d): all three collude", colluding)
    assert any(set(v.suspects) == {"/x", "/y", "/z"} for v in violations)
    print("  -> only a whole-chain collusion can reverse the order, and "
          "the finding implicates the whole chain")


if __name__ == "__main__":
    main()
