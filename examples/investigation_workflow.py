#!/usr/bin/env python3
"""The full third-party investigation workflow (the paper's NTSB story).

1. The *operator* runs components that push entries to a remote log server
   over TCP (components and logger in separate failure domains).
2. After an incident, the evidence is exported as a tamper-evident **case
   bundle** -- a plain directory any investigator can take away.
3. The *investigator*, with no access to the live system, loads the
   bundle, re-verifies the hash chain and Merkle commitment, audits every
   entry, and resolves the dispute -- using only registered public keys.

The same steps are scriptable via ``python -m repro.tools {verify,inspect,
audit,trace} CASE_DIR``.

Run:  python examples/investigation_workflow.py
"""

import subprocess
import sys
import tempfile
import time

from repro import AdlpConfig, LogServer, Master, Node
from repro.adversary import GroundTruth, SubscriberBehavior, UnfaithfulAdlpProtocol
from repro.adversary.behaviors import flip_first_byte
from repro.core import LogServerEndpoint, RemoteLogger
from repro.middleware.msgtypes import StringMsg
from repro.tools.caseio import export_case


def operate_system(log_server: LogServer) -> None:
    """Phase 1: the operator's system runs, logging over TCP."""
    endpoint = LogServerEndpoint(log_server)
    print(f"log server listening at {endpoint.address}")

    master = Master()
    truth = GroundTruth()
    config = AdlpConfig(key_bits=1024)
    # Components talk to the logger through sockets only.
    pub_logger = RemoteLogger(endpoint.address)
    sub_logger = RemoteLogger(endpoint.address)
    pub_protocol = UnfaithfulAdlpProtocol(
        "/flight_controller", pub_logger, truth, config=config
    )
    # the telemetry recorder falsifies what it received
    sub_protocol = UnfaithfulAdlpProtocol(
        "/telemetry_recorder",
        sub_logger,
        truth,
        subscriber_behavior=SubscriberBehavior(falsify=flip_first_byte),
        config=config,
    )
    pub_node = Node("/flight_controller", master, protocol=pub_protocol)
    sub_node = Node("/telemetry_recorder", master, protocol=sub_protocol)
    try:
        sub_node.subscribe("/commands", StringMsg, lambda m: None)
        pub = pub_node.advertise("/commands", StringMsg)
        pub.wait_for_subscribers(1)
        for i in range(4):
            pub.publish(StringMsg(data=f"command {i}"))
            time.sleep(0.05)
        time.sleep(0.4)
        pub_protocol.flush()
        sub_protocol.flush()
    finally:
        pub_node.shutdown()
        sub_node.shutdown()
        pub_logger.close()
        sub_logger.close()
        endpoint.close()
    print(f"operation done; the logger holds {len(log_server)} entries")


def investigate(case_dir: str) -> None:
    """Phase 3: an independent investigator works from the bundle alone."""
    for command in (
        ["verify", case_dir],
        ["inspect", case_dir, "--limit", "4"],
        ["audit", case_dir, "--publisher", "/commands=/flight_controller"],
    ):
        print(f"\n$ python -m repro.tools {' '.join(command)}")
        result = subprocess.run(
            [sys.executable, "-m", "repro.tools", *command],
            capture_output=True,
            text=True,
        )
        print(result.stdout.rstrip())
        if command[0] == "audit":
            assert result.returncode == 1, "audit must flag the falsifier"
            assert "/telemetry_recorder" in result.stdout
            assert "FLAGGED" in result.stdout


def main() -> None:
    log_server = LogServer()
    print("=== phase 1: operation (remote logging over TCP) ===")
    operate_system(log_server)

    print("\n=== phase 2: export the evidence as a case bundle ===")
    case_dir = tempfile.mkdtemp(prefix="adlp_case_")
    export_case(log_server, case_dir)
    print(f"case bundle written to {case_dir}")

    print("\n=== phase 3: independent investigation via the CLI ===")
    investigate(case_dir)
    print("\nOK: the falsifying telemetry recorder was convicted from the "
          "bundle alone.")


if __name__ == "__main__":
    main()
