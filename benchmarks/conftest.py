"""Shared benchmark fixtures.

Benchmarks run with the paper's cryptographic parameters (RSA-1024,
SHA-256).  Key pairs are seeded so repeated runs measure the same keys.
Results print as paper-style tables and are captured into
``bench_results.json`` (see ``repro.bench.reporting``).
"""

from __future__ import annotations

import pytest

from repro.core.policy import AdlpConfig
from repro.crypto.keys import generate_keypair


@pytest.fixture(scope="session")
def bench_keys():
    """Seeded 1024-bit keys (the paper's RSA-1024), by index.

    Scheme-pinned: Table I measures the paper's crypto regardless of the
    ``ADLP_SIG_SCHEME`` the suite runs under (the per-scheme comparison
    rows have their own keys)."""
    return [generate_keypair(1024, seed=31337 + i, scheme="rsa") for i in range(8)]


@pytest.fixture(scope="session")
def paper_config():
    """ADLP as the paper runs it: RSA-1024, subscriber stores h(D)."""
    return AdlpConfig(key_bits=1024, subscriber_stores_hash=True, ack_timeout=10.0)
