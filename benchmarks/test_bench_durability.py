"""Engineering benchmark (beyond the paper): the price of durability.

The paper's trusted logger keeps evidence in memory; a crash silently
discards it.  The durable store journals every entry through a CRC-framed
WAL, so the interesting question is what each fsync policy costs relative
to the in-memory baseline:

- ``never``    -- OS page cache only; survives process death, not power loss
- ``interval`` -- fsync on a timer; bounded post-power-loss tail loss
- ``always``   -- fsync per entry; the classic synchronous-commit price
"""

import pytest

from repro.bench.reporting import Table, save_results
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.log_server import LogServer
from repro.core.log_store import InMemoryLogStore
from repro.storage.durable_store import DurableLogStore

ENTRIES = 200

_results = {}


def _make_entries():
    return [
        LogEntry(
            component_id="/pub",
            topic="/t",
            type_name="std/String",
            direction=Direction.OUT,
            seq=i,
            timestamp=float(i),
            scheme=Scheme.ADLP,
            data=b"x" * 256,
            own_sig=b"\x5a" * 64,
        )
        for i in range(1, ENTRIES + 1)
    ]


def _bench_ingest(benchmark, tmp_path_factory, label, make_store):
    entries = _make_entries()
    open_servers = []

    def setup():
        store = make_store(str(tmp_path_factory.mktemp(f"bench-{label}")))
        server = LogServer(store)
        open_servers.append(server)
        return (server,), {}

    def ingest(server):
        for entry in entries:
            server.submit(entry)

    benchmark.pedantic(ingest, setup=setup, rounds=3, warmup_rounds=0)
    for server in open_servers:
        server.close()
    _results[label] = ENTRIES / benchmark.stats.stats.mean


def test_ingest_in_memory(benchmark, tmp_path_factory):
    _bench_ingest(
        benchmark, tmp_path_factory, "memory", lambda d: InMemoryLogStore()
    )


@pytest.mark.parametrize("fsync", ["never", "interval", "always"])
def test_ingest_durable(benchmark, tmp_path_factory, fsync):
    _bench_ingest(
        benchmark,
        tmp_path_factory,
        f"wal_fsync_{fsync}",
        lambda d: DurableLogStore(d, fsync=fsync, checkpoint_every=0),
    )


def test_report_durability(benchmark):
    benchmark(lambda: None)
    table = Table(
        "Log ingest throughput vs durability (256 B payloads)",
        ["Store", "Entries/s", "vs memory"],
    )
    baseline = _results["memory"]
    for label in ("memory", "wal_fsync_never", "wal_fsync_interval", "wal_fsync_always"):
        rate = _results[label]
        table.add_row(label, rate, f"{rate / baseline:.1%}")
    table.show()
    save_results("durability", dict(_results))
    assert all(rate > 0 for rate in _results.values())
    # Page-cache-only journaling should stay within an order of magnitude
    # of the in-memory store; per-entry fsync is allowed to be much slower.
    assert _results["wal_fsync_never"] > baseline / 50
