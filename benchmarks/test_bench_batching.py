"""Engineering benchmark (beyond the paper): group-commit batching.

Per-entry submission pays one lock acquisition, one WAL fsync, or one RPC
frame *per log entry*.  Group commit drains the logging queue in batches
(``AdlpConfig.submit_batch_max``) and pays those costs once per batch, so
the interesting ratio is entries/sec batched vs per-entry for each sink in
the logging stack:

- in-memory ``LogServer`` (lock amortization only)
- ``DurableLogStore`` under each fsync policy (fsync coalescing --
  ``always`` is where group commit classically earns its keep)
- ``RemoteLogger`` over TCP against a durably backed trusted logger
  (fsync ``always`` -- the paper's deployment), plus a volatile
  memory-backed variant that isolates the framing saving alone
- ``ReplicatedLogger`` over three replicas (the frame saving, times N)

Batched and per-entry submission are commitment-identical (asserted in
``tests/core/test_batch_submission.py``); this file measures only the
speed difference.  Set ``REPRO_BENCH_SMOKE=1`` for a tiny CI-sized
workload.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bench.reporting import Table, save_results
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.log_server import LogServer
from repro.core.log_store import InMemoryLogStore
from repro.core.remote import LogServerEndpoint, RemoteLogger
from repro.core.policy import ReplicationConfig
from repro.replication import ReplicatedLogger
from repro.storage.durable_store import DurableLogStore

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
ENTRIES = 128 if SMOKE else 512
BATCH = 64
ROUNDS = 1 if SMOKE else 3

_results = {}


def _make_entries():
    return [
        LogEntry(
            component_id="/pub",
            topic="/t",
            type_name="std/String",
            direction=Direction.OUT,
            seq=i,
            timestamp=float(i),
            scheme=Scheme.ADLP,
            data=b"x" * 256,
            own_sig=b"\x5a" * 64,
        )
        for i in range(1, ENTRIES + 1)
    ]


def _batches(entries):
    return [entries[i : i + BATCH] for i in range(0, len(entries), BATCH)]


def _spin_until(predicate, timeout=30.0):
    """Tight wait (no sleep quantization -- this is a benchmark)."""
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("benchmark sink never ingested the workload")


def _record(label, benchmark):
    _results[label] = ENTRIES / benchmark.stats.stats.mean


# -- local sinks (LogServer over a store) ------------------------------------


def _bench_local(benchmark, tmp_path_factory, label, make_store, batched):
    entries = _make_entries()
    batches = _batches(entries)
    open_servers = []

    def setup():
        store = make_store(str(tmp_path_factory.mktemp(f"bench-{label}")))
        server = LogServer(store)
        open_servers.append(server)
        return (server,), {}

    def per_entry(server):
        for entry in entries:
            server.submit(entry)

    def grouped(server):
        for batch in batches:
            server.submit_batch(batch)

    benchmark.pedantic(
        grouped if batched else per_entry,
        setup=setup,
        rounds=ROUNDS,
        warmup_rounds=0,
    )
    for server in open_servers:
        server.close()
    _record(label, benchmark)


@pytest.mark.parametrize("mode", ["per_entry", "batched"])
def test_memory(benchmark, tmp_path_factory, mode):
    _bench_local(
        benchmark,
        tmp_path_factory,
        f"memory_{mode}",
        lambda d: InMemoryLogStore(),
        batched=(mode == "batched"),
    )


@pytest.mark.parametrize("fsync", ["never", "interval", "always"])
@pytest.mark.parametrize("mode", ["per_entry", "batched"])
def test_durable(benchmark, tmp_path_factory, fsync, mode):
    _bench_local(
        benchmark,
        tmp_path_factory,
        f"wal_fsync_{fsync}_{mode}",
        lambda d: DurableLogStore(d, fsync=fsync, checkpoint_every=0),
        batched=(mode == "batched"),
    )


# -- remote sink (one TCP round trip per frame) -------------------------------


@pytest.mark.parametrize("backing", ["durable", "volatile"])
@pytest.mark.parametrize("mode", ["per_entry", "batched"])
def test_remote(benchmark, tmp_path_factory, backing, mode):
    entries = _make_entries()
    batches = _batches(entries)
    worlds = []

    def setup():
        if backing == "durable":
            # The paper's deployment: the trusted logger persists with
            # fsync on commit, so every OP_SUBMIT frame costs an fsync
            # and OP_SUBMIT_BATCH coalesces 64 of them into one.
            store = DurableLogStore(
                str(tmp_path_factory.mktemp("bench-remote")),
                fsync="always",
                checkpoint_every=0,
            )
            server = LogServer(store)
        else:
            server = LogServer()
        endpoint = LogServerEndpoint(server)
        client = RemoteLogger(endpoint.address, submit_batch_max=BATCH)
        worlds.append((server, endpoint, client))
        return (server, client), {}

    def per_entry(server, client):
        for entry in entries:
            client.submit(entry)
        _spin_until(lambda: len(server) == ENTRIES)

    def grouped(server, client):
        for batch in batches:
            client.submit_batch(batch)
        _spin_until(lambda: len(server) == ENTRIES)

    benchmark.pedantic(
        grouped if mode == "batched" else per_entry,
        setup=setup,
        rounds=ROUNDS,
        warmup_rounds=0,
    )
    for server, endpoint, client in worlds:
        client.close()
        endpoint.close()
        server.close()
    label = "remote" if backing == "durable" else "remote_volatile"
    _record(f"{label}_{mode}", benchmark)


# -- replicated sink (3 replicas) ---------------------------------------------


@pytest.mark.parametrize("mode", ["per_entry", "batched"])
def test_replicated(benchmark, mode):
    entries = _make_entries()
    batches = _batches(entries)
    worlds = []

    def setup():
        servers = [LogServer() for _ in range(3)]
        endpoints = [LogServerEndpoint(s) for s in servers]
        rlogger = ReplicatedLogger(
            [e.address for e in endpoints], config=ReplicationConfig()
        )
        worlds.append((servers, endpoints, rlogger))
        return (servers, rlogger), {}

    def per_entry(servers, rlogger):
        for entry in entries:
            rlogger.submit(entry)
        _spin_until(lambda: all(len(s) == ENTRIES for s in servers))

    def grouped(servers, rlogger):
        for batch in batches:
            rlogger.submit_batch(batch)
        _spin_until(lambda: all(len(s) == ENTRIES for s in servers))

    benchmark.pedantic(
        grouped if mode == "batched" else per_entry,
        setup=setup,
        rounds=ROUNDS,
        warmup_rounds=0,
    )
    for servers, endpoints, rlogger in worlds:
        rlogger.close()
        for endpoint in endpoints:
            endpoint.close()
    _record(f"replicated_{mode}", benchmark)


# -- report -------------------------------------------------------------------

SINKS = [
    "memory",
    "wal_fsync_never",
    "wal_fsync_interval",
    "wal_fsync_always",
    "remote",
    "remote_volatile",
    "replicated",
]


def test_report_batching(benchmark):
    benchmark(lambda: None)
    table = Table(
        f"Group-commit batching: entries/s, batch={BATCH}, 256 B payloads",
        ["Sink", "Per-entry", "Batched", "Speedup"],
    )
    data = {}
    for sink in SINKS:
        per_entry = _results[f"{sink}_per_entry"]
        batched = _results[f"{sink}_batched"]
        speedup = batched / per_entry
        table.add_row(sink, per_entry, batched, f"{speedup:.2f}x")
        data[f"{sink}_per_entry"] = per_entry
        data[f"{sink}_batched"] = batched
        data[f"{sink}_speedup"] = speedup
    table.show()
    data["batch_size"] = BATCH
    data["entries"] = ENTRIES
    save_results("batching", data)
    assert all(rate > 0 for rate in _results.values())
    # The acceptance bar: batching the remote path (one OP_SUBMIT_BATCH
    # frame and one fsync per 64 entries instead of 64 frames and 64
    # fsyncs) must at least double throughput.
    assert data["remote_speedup"] >= 2.0, (
        f"remote batching speedup {data['remote_speedup']:.2f}x < 2x"
    )
