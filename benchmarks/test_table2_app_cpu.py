"""Table II: system-wide CPU utilization of the self-driving application
under Idle / No Logging / Base Logging / ADLP.

Paper's numbers: Idle 26.03%, No-Logging 77.21%, Base 83.24%, ADLP 88.69%
(4 logical cores).  Expected shape: Idle < No-Logging < Base < ADLP, and
the ADLP increment over Base is modest relative to the application's own
cost.
"""

import time

import pytest

from repro.apps.selfdriving import SelfDrivingApp
from repro.apps.selfdriving.app import seeded_keypairs
from repro.bench.cpu import ProcessCpuSampler
from repro.bench.reporting import Table, save_results
from repro.core.policy import AdlpConfig

MEASURE_S = 4.0
CONFIG = AdlpConfig(key_bits=1024, ack_timeout=10.0)

_results = {}


@pytest.fixture(scope="module")
def app_keys():
    return seeded_keypairs(bits=1024)


def _measure_idle() -> float:
    sampler = ProcessCpuSampler()
    sampler.start()
    time.sleep(MEASURE_S)
    return sampler.stop()


def _measure_app(scheme, app_keys) -> float:
    with SelfDrivingApp(
        scheme=scheme, keypairs=app_keys, adlp_config=CONFIG, camera_hz=20.0
    ) as app:
        app.start()
        time.sleep(1.0)  # pipeline warm-up
        sampler = ProcessCpuSampler()
        sampler.start()
        time.sleep(MEASURE_S)
        return sampler.stop()


def test_idle(benchmark):
    _results["idle"] = _measure_idle()
    benchmark.pedantic(lambda: None, rounds=1)


@pytest.mark.parametrize("scheme", ["none", "naive", "adlp"])
def test_app_cpu(benchmark, app_keys, scheme):
    _results[scheme] = _measure_app(scheme, app_keys)
    benchmark.pedantic(lambda: None, rounds=1)


def test_report_table2(benchmark, app_keys):
    benchmark(lambda: None)
    table = Table(
        "Table II -- system-wide CPU%% of the self-driving app",
        ["Idle", "No Logging", "Base Logging", "ADLP"],
    )
    table.add_row(
        _results["idle"], _results["none"], _results["naive"], _results["adlp"]
    )
    table.show()
    save_results("table2", _results)

    # Shape: idle < no-logging < base < adlp (the paper's ordering).
    assert _results["idle"] < _results["none"]
    assert _results["none"] < _results["naive"]
    assert _results["naive"] < _results["adlp"]
