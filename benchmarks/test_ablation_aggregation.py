"""Ablation: per-subscriber publisher entries vs §VI-E aggregated logging.

Measures publisher-side log bytes per publication as the subscriber count
grows.  Expected: per-subscriber entries scale linearly with fan-out (the
~|D|-sized payload is duplicated per subscriber); aggregated entries stay
~flat (one payload copy + one hash/signature pair per subscriber).
"""

import time

import pytest

from repro.bench.reporting import Table, save_results
from repro.bench.workloads import payload_of_size
from repro.core import AdlpProtocol, Direction, LogServer
from repro.core.policy import AdlpConfig
from repro.middleware import Master, Node
from repro.middleware.msgtypes import RawBytes
from repro.util.concurrency import wait_for

SUBSCRIBER_COUNTS = [1, 2, 4]
MESSAGES = 10
PAYLOAD = payload_of_size(65536)

_results = {}


def _publisher_bytes_per_publication(aggregate: bool, n_subs: int, keys) -> float:
    config = AdlpConfig(
        key_bits=1024,
        aggregate_publisher_entries=aggregate,
        aggregation_window=0.05,
        ack_timeout=10.0,
    )
    master = Master()
    server = LogServer()
    pub_protocol = AdlpProtocol("/pub", server, config=config, keypair=keys[0])
    pub_node = Node("/pub", master, protocol=pub_protocol)
    nodes = [pub_node]
    subs = []
    for i in range(n_subs):
        protocol = AdlpProtocol(
            f"/sub{i}", server, config=AdlpConfig(key_bits=1024), keypair=keys[1 + i]
        )
        node = Node(f"/sub{i}", master, protocol=protocol)
        nodes.append(node)
        subs.append(node.subscribe("/data", RawBytes, lambda m: None))
    try:
        pub = pub_node.advertise("/data", RawBytes, queue_size=32)
        assert pub.wait_for_subscribers(n_subs, timeout=10.0)
        for _ in range(MESSAGES):
            pub.publish(RawBytes(data=PAYLOAD))
        assert wait_for(
            lambda: pub_protocol.stats.acks_received >= MESSAGES * n_subs,
            timeout=30.0,
        )
        time.sleep(0.15)  # let the aggregation window close
    finally:
        for node in nodes:
            node.shutdown()
        pub_protocol.flush()
    total = sum(
        e.encoded_size()
        for e in server.entries(component_id="/pub", direction=Direction.OUT)
    )
    return total / MESSAGES


@pytest.mark.parametrize("aggregate", [False, True], ids=["per_subscriber", "aggregated"])
def test_aggregation(benchmark, bench_keys, aggregate):
    label = "aggregated" if aggregate else "per_subscriber"
    per_count = {}
    for count in SUBSCRIBER_COUNTS:
        per_count[str(count)] = _publisher_bytes_per_publication(
            aggregate, count, bench_keys
        )
    _results[label] = per_count
    benchmark.pedantic(lambda: None, rounds=1)


def test_report_aggregation(benchmark, bench_keys):
    benchmark(lambda: None)
    table = Table(
        "Ablation -- publisher log bytes per publication (64 KiB payload)",
        ["Subscribers", "Per-subscriber entries", "Aggregated (§VI-E)"],
    )
    for count in SUBSCRIBER_COUNTS:
        table.add_row(
            count,
            _results["per_subscriber"][str(count)],
            _results["aggregated"][str(count)],
        )
    table.show()
    save_results("ablation_aggregation", _results)

    per_sub = _results["per_subscriber"]
    agg = _results["aggregated"]
    # per-subscriber entries duplicate the payload linearly with fan-out
    assert per_sub["4"] > 3.0 * per_sub["1"]
    # aggregation keeps publisher volume ~flat (only +hash+sig per sub)
    assert agg["4"] < 1.2 * agg["1"]
    # and aggregation always wins at fan-out > 1
    assert agg["4"] < per_sub["4"]
