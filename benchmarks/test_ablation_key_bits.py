"""Ablation: RSA modulus size (the paper fixes 1024; §VI-E discusses
lightweight crypto as future work).

Measures signing/verification time and per-message byte overhead for
512/1024/2048-bit keys.  Expected: signing time grows ~cubically with the
modulus (CRT halves are quadratic per multiply, linear in length count);
signature bytes grow linearly (64/128/256).
"""

import pytest

from repro.bench.reporting import Table, save_results
from repro.bench.timing import measure
from repro.core.protocol import AdlpMessage, message_digest
from repro.crypto.keys import generate_keypair

KEY_BITS = [512, 1024, 2048]
PAYLOAD = b"p" * 8705  # Scan-sized

_results = {}


@pytest.fixture(scope="module")
def keys_by_bits():
    return {bits: generate_keypair(bits, seed=777 + bits) for bits in KEY_BITS}


@pytest.mark.parametrize("bits", KEY_BITS)
def test_sign_time(benchmark, keys_by_bits, bits):
    private = keys_by_bits[bits].private
    digest = message_digest(1, PAYLOAD)
    stats = measure(lambda: private.sign_digest(digest), samples=100)
    _results.setdefault(str(bits), {})["sign_ms"] = stats.mean_ms
    benchmark(private.sign_digest, digest)


@pytest.mark.parametrize("bits", KEY_BITS)
def test_verify_time(benchmark, keys_by_bits, bits):
    pair = keys_by_bits[bits]
    digest = message_digest(1, PAYLOAD)
    signature = pair.private.sign_digest(digest)
    stats = measure(lambda: pair.public.verify_digest(digest, signature), samples=200)
    _results.setdefault(str(bits), {})["verify_ms"] = stats.mean_ms
    benchmark(pair.public.verify_digest, digest, signature)


@pytest.mark.parametrize("bits", KEY_BITS)
def test_message_overhead(benchmark, keys_by_bits, bits):
    pair = keys_by_bits[bits]
    digest = message_digest(1, PAYLOAD)
    signature = pair.private.sign_digest(digest)
    raw = AdlpMessage(seq=1, payload=PAYLOAD, signature=signature).encode()
    _results.setdefault(str(bits), {})["overhead_bytes"] = len(raw) - len(PAYLOAD)
    benchmark(lambda: AdlpMessage(seq=1, payload=PAYLOAD, signature=signature).encode())


def test_report_key_bits(benchmark, keys_by_bits):
    benchmark(lambda: None)
    table = Table(
        "Ablation -- RSA key size (Scan payload)",
        ["Bits", "Sign (ms)", "Verify (ms)", "Msg overhead (B)"],
    )
    for bits in KEY_BITS:
        row = _results[str(bits)]
        table.add_row(bits, row["sign_ms"], row["verify_ms"], row["overhead_bytes"])
    table.show()
    save_results("ablation_key_bits", _results)

    # signing grows superlinearly in modulus bits
    assert _results["2048"]["sign_ms"] > 3.0 * _results["1024"]["sign_ms"]
    assert _results["1024"]["sign_ms"] > 2.0 * _results["512"]["sign_ms"]
    # signature overhead is linear: 64/128/256 bytes (+/- one varint byte
    # as the length prefix widens)
    o512 = _results["512"]["overhead_bytes"]
    o1024 = _results["1024"]["overhead_bytes"]
    o2048 = _results["2048"]["overhead_bytes"]
    assert 64 <= o1024 - o512 <= 66
    assert 128 <= o2048 - o1024 <= 130
