"""Ablation: the withhold-until-ACK gate (Section V-B step 2).

The gate is ADLP's penalty mechanism (it forces subscribers to acknowledge
or starve -- Lemma 2's enforcement).  Its cost: the publish path to each
subscriber synchronously waits one ACK round trip.  With the gate off,
ACKs are collected opportunistically and throughput rises; what is lost is
the ability to *punish* a stealthy subscriber.
"""

import time

import pytest

from repro.bench.reporting import Table, save_results
from repro.bench.workloads import payload_of_size
from repro.core import AdlpProtocol, LogServer
from repro.core.policy import AdlpConfig
from repro.middleware import Master, Node
from repro.middleware.msgtypes import RawBytes
from repro.util.concurrency import wait_for

MESSAGES = 150
PAYLOAD = payload_of_size(8705)

_results = {}


def _throughput(require_ack: bool, keys) -> float:
    config = AdlpConfig(key_bits=1024, require_ack=require_ack, ack_timeout=10.0)
    master = Master()
    server = LogServer()
    pub_protocol = AdlpProtocol("/pub", server, config=config, keypair=keys[0])
    sub_protocol = AdlpProtocol("/sub", server, config=config, keypair=keys[1])
    pub_node = Node("/pub", master, protocol=pub_protocol)
    sub_node = Node("/sub", master, protocol=sub_protocol)
    try:
        sub = sub_node.subscribe("/data", RawBytes, lambda m: None)
        pub = pub_node.advertise("/data", RawBytes, queue_size=MESSAGES + 8)
        assert pub.wait_for_subscribers(1, timeout=10.0)
        t0 = time.perf_counter()
        for _ in range(MESSAGES):
            pub.publish(RawBytes(data=PAYLOAD))
        assert sub.wait_for_messages(MESSAGES, timeout=60.0)
        elapsed = time.perf_counter() - t0
        return MESSAGES / elapsed
    finally:
        pub_node.shutdown()
        sub_node.shutdown()


@pytest.mark.parametrize("require_ack", [True, False], ids=["gated", "ungated"])
def test_ack_policy_throughput(benchmark, bench_keys, require_ack):
    rate = _throughput(require_ack, bench_keys)
    _results["gated" if require_ack else "ungated"] = rate
    benchmark.pedantic(lambda: None, rounds=1)


def test_report_ack_policy(benchmark, bench_keys):
    benchmark(lambda: None)
    table = Table(
        "Ablation -- withhold-until-ACK (Scan payload, msgs/s)",
        ["Policy", "Throughput (msg/s)"],
    )
    for label in ("gated", "ungated"):
        table.add_row(label, _results[label])
    table.show()
    save_results("ablation_ack_policy", _results)

    # On loopback the gate's cost is small: the ACK round trip overlaps a
    # subscriber-side hash+sign that the ungated path merely defers, and
    # the ungated drain pays a short poll per send.  The two ends up within
    # a factor of two of each other; the ablation's real content is the
    # *semantic* trade (losing the Lemma 2 penalty), reported above.
    assert _results["ungated"] >= 0.5 * _results["gated"]
    assert _results["gated"] >= 0.5 * _results["ungated"]
    # Both are fast enough for the paper's 20 Hz camera.
    assert _results["gated"] > 20.0
