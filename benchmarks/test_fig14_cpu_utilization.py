"""Figure 14: Image publisher's CPU utilization vs number of subscribers,
for (i) no logging, (ii) base logging, (iii) ADLP.

Expected shape:
- base logging adds a small per-publication overhead over no-logging;
- ADLP adds crypto on top, but that crypto cost is ~fixed w.r.t. the
  number of subscribers (hash+sign happen once per publication), so the
  ADLP-base gap does NOT grow linearly with subscriber count.

Publisher CPU is measured per-thread via /proc (the publisher node's
threads only), the in-process analogue of the paper's per-process
accounting.
"""

import time

import pytest

from repro.bench.cpu import ThreadGroupCpuSampler, threads_matching
from repro.bench.reporting import Table, save_results
from repro.bench.workloads import payload_of_size
from repro.core import AdlpProtocol, LogServer, NaiveProtocol
from repro.core.policy import AdlpConfig
from repro.middleware import Master, Node
from repro.middleware.msgtypes import RawBytes

SCHEMES = ["none", "naive", "adlp"]
SUBSCRIBER_COUNTS = [1, 2, 4]
PUBLISH_HZ = 20.0  # the paper's camera rate
MEASURE_S = 2.5
IMAGE = payload_of_size(921641)

_results = {}


def _protocol(scheme, name, server, keys, index):
    if scheme == "none":
        return None
    if scheme == "naive":
        return NaiveProtocol(name, server.submit)
    config = AdlpConfig(key_bits=1024, ack_timeout=10.0)
    return AdlpProtocol(name, server, config=config, keypair=keys[index])


def _measure(scheme, n_subscribers, keys):
    master = Master()
    server = LogServer()
    pub_node = Node("/pub", master, protocol=_protocol(scheme, "/pub", server, keys, 0))
    nodes = [pub_node]
    subs = []
    for i in range(n_subscribers):
        node = Node(
            f"/sub{i}",
            master,
            protocol=_protocol(scheme, f"/sub{i}", server, keys, 1 + i),
        )
        nodes.append(node)
        subs.append(node.subscribe("/image", RawBytes, lambda m: None))
    try:
        pub = pub_node.advertise("/image", RawBytes, queue_size=4)
        assert pub.wait_for_subscribers(n_subscribers, timeout=10.0)
        pub_node.create_timer(PUBLISH_HZ, lambda: pub.publish(RawBytes(data=IMAGE)))
        time.sleep(0.5)  # warm up the pipeline
        # every thread working for the publisher node: per-subscriber link
        # workers, the accept thread, the publish timer, the logging thread
        ids = threads_matching(
            lambda t: t.name.startswith(("publink-", "pubaccept-"))
            or t.name in ("logging-/pub", "timer-/pub")
        )
        sampler = ThreadGroupCpuSampler(ids)
        sampler.start()
        deadline = time.monotonic() + MEASURE_S
        while time.monotonic() < deadline:
            time.sleep(0.1)
            sampler.sample()
        cpu = sampler.stop()
        stats = getattr(pub_node.protocol, "stats", None)
        signatures = getattr(stats, "signatures", 0) if stats else 0
        published = pub.stats.published
        return cpu, signatures, published
    finally:
        for node in nodes:
            node.shutdown()


@pytest.mark.parametrize("scheme", SCHEMES)
def test_publisher_cpu(benchmark, bench_keys, scheme):
    per_count = {}
    for count in SUBSCRIBER_COUNTS:
        cpu, signatures, published = _measure(scheme, count, bench_keys)
        per_count[str(count)] = cpu
        per_count[f"sig_per_pub_{count}"] = (
            signatures / published if published else 0.0
        )
    _results[scheme] = per_count
    benchmark.pedantic(lambda: None, rounds=1)  # measurement happens above


def test_report_fig14(benchmark, bench_keys):
    benchmark(lambda: None)
    table = Table(
        "Figure 14 -- Image publisher CPU%% vs subscribers (20 Hz, ~900 KB)",
        ["Subscribers"] + SCHEMES,
    )
    for count in SUBSCRIBER_COUNTS:
        table.add_row(count, *[_results[s][str(count)] for s in SCHEMES])
    table.show()
    save_results("fig14", _results)

    for count in SUBSCRIBER_COUNTS:
        key = str(count)
        # Shape 1: ADLP costs more than no-logging everywhere.
        assert _results["adlp"][key] > _results["none"][key]
    # Shape 2 (the paper's key claim): hashing+signing happen once per
    # publication regardless of subscriber count.  CPU% is noisy on shared
    # machines, so the claim is asserted exactly via the crypto counters:
    # one signature per publication at every fan-out level.
    for count in SUBSCRIBER_COUNTS:
        ratio = _results["adlp"][f"sig_per_pub_{count}"]
        assert ratio == pytest.approx(1.0, abs=0.15), (count, ratio)
