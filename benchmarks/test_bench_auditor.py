"""Engineering benchmark (beyond the paper): auditor throughput.

How fast can a third party classify evidence?  Dominated by two RSA
verifications per entry (own signature + counterpart signature).  Useful
for sizing post-incident analysis: at ~N entries/s, a minute of the
self-driving app's log (~350 entries/s under ADLP) audits in a few
seconds.
"""

import pytest

from repro.audit import Auditor, Topology
from repro.bench.reporting import Table, save_results
from repro.core import LogServer
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.protocol import message_digest

ENTRY_PAIRS = 200

_results = {}


@pytest.fixture(scope="module")
def prepared(bench_keys):
    """A server holding ENTRY_PAIRS consistent transmissions."""
    server = LogServer()
    server.register_key("/pub", bench_keys[0].public)
    server.register_key("/sub", bench_keys[1].public)
    payload = b"x" * 256
    for seq in range(1, ENTRY_PAIRS + 1):
        digest = message_digest(seq, payload)
        s_x = bench_keys[0].private.sign_digest(digest)
        s_y = bench_keys[1].private.sign_digest(digest)
        server.submit(LogEntry(
            component_id="/pub", topic="/t", type_name="std/String",
            direction=Direction.OUT, seq=seq, scheme=Scheme.ADLP,
            data=payload, own_sig=s_x, peer_id="/sub",
            peer_hash=digest, peer_sig=s_y,
        ))
        server.submit(LogEntry(
            component_id="/sub", topic="/t", type_name="std/String",
            direction=Direction.IN, seq=seq, scheme=Scheme.ADLP,
            data_hash=digest, own_sig=s_y, peer_id="/pub", peer_sig=s_x,
        ))
    topology = Topology(publisher_of={"/t": "/pub"})
    return server, topology


def test_audit_throughput(benchmark, prepared):
    server, topology = prepared
    auditor = Auditor.for_server(server, topology)
    entries = server.entries()

    report = benchmark(auditor.audit, entries)
    assert len(report.valid_entries()) == 2 * ENTRY_PAIRS

    stats = benchmark.stats.stats
    entries_per_s = len(entries) / stats.mean
    _results["entries_per_second"] = entries_per_s
    _results["entries"] = len(entries)


def test_report_auditor(benchmark, prepared):
    benchmark(lambda: None)
    table = Table(
        "Auditor throughput (RSA-1024 verification-bound)",
        ["Entries", "Entries/s"],
    )
    table.add_row(_results["entries"], _results["entries_per_second"])
    table.show()
    save_results("bench_auditor", _results)
    # Two pure-Python RSA verifications per entry (~70 us each) plus
    # pairing overhead: expect comfortably above 1k entries/s.
    assert _results["entries_per_second"] > 500
