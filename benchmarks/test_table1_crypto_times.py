"""Table I: hashing and signing time for the three representative data
types (Steering 20 B, Scan 8705 B, Image 921641 B).

Paper's numbers (PyCrypto on an i5-7260U):

    Steering:  hash 0.109 ms   hash+sign 3.042 ms
    Scan:      hash 0.201 ms   hash+sign 3.129 ms
    Image:     hash 2.638 ms   hash+sign 3.457 ms

Expected shape (what we validate): signing dominates and is nearly flat
across data sizes, because the RSA operation runs on the 32-byte digest
regardless of |D|; only the hashing component grows with |D|.

A second table compares the registered signature schemes (RSA-1024 vs
Ed25519) on sign/verify throughput, and times a
:class:`~repro.crypto.verifypool.VerifyPool` batch against the inline
path.  The speedup assertion only fires on >= 4-CPU hosts outside smoke
mode; every saved row carries the ``cpu_count`` it was measured on.
Set ``REPRO_BENCH_SMOKE=1`` for a tiny CI-sized workload.
"""

import os

import pytest

from repro.bench.reporting import Table, host_cpu_count, save_results
from repro.bench.timing import measure
from repro.bench.workloads import PAPER_SIZES, paper_payloads
from repro.crypto.hashing import data_digest
from repro.crypto.keys import generate_keypair
from repro.crypto.verifypool import MIN_POOL_BATCH, VerifyPool

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: Samples per measurement; the paper uses 3000.  Hashing is cheap enough
#: for the paper's count; signing is pure Python so we use fewer.
HASH_SAMPLES = 3000
SIGN_SAMPLES = 300

SCHEME_SAMPLES = 30 if SMOKE else 150
POOL_TRIPLES = MIN_POOL_BATCH * (2 if SMOKE else 8)
POOL_ROUNDS = 1 if SMOKE else 3

_results = {}
_scheme_results = {}


@pytest.fixture(scope="module")
def payloads():
    return paper_payloads()


@pytest.mark.parametrize("type_name", list(PAPER_SIZES))
def test_hash_only(benchmark, payloads, type_name):
    payload = payloads[type_name]
    stats = measure(lambda: data_digest(1, payload), samples=HASH_SAMPLES)
    _results.setdefault(type_name, {})["hash_ms"] = stats.mean_ms
    _results[type_name]["hash_stdev_ms"] = stats.stdev_ms
    benchmark(data_digest, 1, payload)


@pytest.mark.parametrize("type_name", list(PAPER_SIZES))
def test_hash_and_sign(benchmark, bench_keys, payloads, type_name):
    payload = payloads[type_name]
    private = bench_keys[0].private

    def hash_and_sign():
        return private.sign_digest(data_digest(1, payload))

    stats = measure(hash_and_sign, samples=SIGN_SAMPLES)
    _results.setdefault(type_name, {})["hash_sign_ms"] = stats.mean_ms
    _results[type_name]["hash_sign_stdev_ms"] = stats.stdev_ms
    benchmark(hash_and_sign)


def test_report_table1(benchmark, payloads):
    """Render the Table I analogue and check the paper's shape claims."""
    benchmark(lambda: None)  # keep this report under --benchmark-only
    table = Table(
        "Table I -- hashing and signing time per data type (RSA-1024, SHA-256)",
        ["Type", "Size (B)", "Hash only (ms)", "Hash+Sign (ms)"],
    )
    for type_name, size in PAPER_SIZES.items():
        row = _results[type_name]
        table.add_row(type_name, size, row["hash_ms"], row["hash_sign_ms"])
    table.show()
    save_results("table1", _results)

    # Shape 1: signing cost dwarfs hashing for small payloads.
    assert _results["Steering"]["hash_sign_ms"] > 5 * _results["Steering"]["hash_ms"]
    # Shape 2: hash time grows with size; Image hashing is the big one.
    assert _results["Image"]["hash_ms"] > 5 * _results["Steering"]["hash_ms"]
    # Shape 3: the signing component (hash+sign minus hash) is ~flat
    # across sizes -- within 40% between Steering and Image.
    sign_small = (
        _results["Steering"]["hash_sign_ms"] - _results["Steering"]["hash_ms"]
    )
    sign_large = _results["Image"]["hash_sign_ms"] - _results["Image"]["hash_ms"]
    assert abs(sign_large - sign_small) / sign_small < 0.4


# --------------------------------------------------------------------------
# Signature-scheme comparison and batched verification
# --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def scheme_pairs():
    """One seeded key pair per registered scheme, paper-sized for RSA."""
    return {
        "rsa": generate_keypair(1024, seed=90210, scheme="rsa"),
        "ed25519": generate_keypair(seed=90210, scheme="ed25519"),
    }


def _scheme_row(scheme):
    return _scheme_results.setdefault(scheme, {"cpu_count": host_cpu_count()})


@pytest.mark.parametrize("scheme", ["rsa", "ed25519"])
def test_scheme_sign(benchmark, scheme_pairs, payloads, scheme):
    private = scheme_pairs[scheme].private
    digest = data_digest(1, payloads["Steering"])
    stats = measure(lambda: private.sign_digest(digest), samples=SCHEME_SAMPLES)
    row = _scheme_row(scheme)
    row["sign_ms"] = stats.mean_ms
    row["sign_per_s"] = 1000.0 / stats.mean_ms
    benchmark(private.sign_digest, digest)


@pytest.mark.parametrize("scheme", ["rsa", "ed25519"])
def test_scheme_verify(benchmark, scheme_pairs, payloads, scheme):
    pair = scheme_pairs[scheme]
    digest = data_digest(1, payloads["Steering"])
    signature = pair.private.sign_digest(digest)
    assert pair.public.verify_digest(digest, signature)
    stats = measure(
        lambda: pair.public.verify_digest(digest, signature),
        samples=SCHEME_SAMPLES,
    )
    row = _scheme_row(scheme)
    row["verify_ms"] = stats.mean_ms
    row["verify_per_s"] = 1000.0 / stats.mean_ms
    benchmark(pair.public.verify_digest, digest, signature)


def test_verify_pool_speedup(benchmark, scheme_pairs):
    """Batch verification through the process pool vs the inline path.

    Ed25519 triples keep the per-verify cost meaningful relative to the
    pool's dispatch overhead.  On hosts without real parallelism the row
    still gets recorded -- honestly flat, interpretable via cpu_count.
    """
    benchmark(lambda: None)  # keep this report under --benchmark-only
    pair = scheme_pairs["ed25519"]
    key_bytes = pair.public.to_bytes()
    triples = []
    for i in range(POOL_TRIPLES):
        digest = data_digest(i, b"pool-%d" % i)
        triples.append((digest, pair.private.sign_digest(digest), key_bytes))

    workers = min(4, host_cpu_count())
    with VerifyPool(workers=1) as inline_pool:
        expected = inline_pool.verify_batch(triples)
        inline = measure(
            lambda: inline_pool.verify_batch(triples), samples=POOL_ROUNDS
        )
    with VerifyPool(workers=workers) as pool:
        assert pool.verify_batch(triples) == expected  # warm-up, same verdicts
        pooled = measure(lambda: pool.verify_batch(triples), samples=POOL_ROUNDS)

    speedup = inline.mean_ms / pooled.mean_ms
    _scheme_results["verify_pool"] = {
        "triples": POOL_TRIPLES,
        "workers": workers,
        "inline_ms": inline.mean_ms,
        "pooled_ms": pooled.mean_ms,
        "speedup": speedup,
        "cpu_count": host_cpu_count(),
    }
    # Only assert parallel speedup where parallelism exists; a 1-CPU CI
    # container records honest numbers instead of failing.
    if not SMOKE and host_cpu_count() >= 4:
        assert speedup > 1.3


def test_report_schemes(benchmark):
    """Render the per-scheme table and pin the cheap shape claim."""
    benchmark(lambda: None)  # keep this report under --benchmark-only
    table = Table(
        "Signature schemes -- sign/verify per op (32-byte digest)",
        ["Scheme", "Sign (ms)", "Sign/s", "Verify (ms)", "Verify/s"],
    )
    for scheme in ("rsa", "ed25519"):
        row = _scheme_results[scheme]
        table.add_row(
            scheme,
            row["sign_ms"],
            row["sign_per_s"],
            row["verify_ms"],
            row["verify_per_s"],
        )
    table.show()
    pool = _scheme_results["verify_pool"]
    pool_table = Table(
        "VerifyPool -- batched verification vs inline",
        ["Triples", "Workers", "Inline (ms)", "Pooled (ms)", "Speedup", "CPUs"],
    )
    pool_table.add_row(
        pool["triples"], pool["workers"], pool["inline_ms"],
        pool["pooled_ms"], pool["speedup"], pool["cpu_count"],
    )
    pool_table.show()
    save_results("crypto_schemes", _scheme_results)

    # Ed25519's fixed 256-bit scalar work beats a 1024-bit RSA private
    # exponentiation in pure Python -- the reason it's worth offering.
    assert _scheme_results["ed25519"]["sign_ms"] < _scheme_results["rsa"]["sign_ms"]
