"""Table I: hashing and signing time for the three representative data
types (Steering 20 B, Scan 8705 B, Image 921641 B).

Paper's numbers (PyCrypto on an i5-7260U):

    Steering:  hash 0.109 ms   hash+sign 3.042 ms
    Scan:      hash 0.201 ms   hash+sign 3.129 ms
    Image:     hash 2.638 ms   hash+sign 3.457 ms

Expected shape (what we validate): signing dominates and is nearly flat
across data sizes, because the RSA operation runs on the 32-byte digest
regardless of |D|; only the hashing component grows with |D|.
"""

import pytest

from repro.bench.reporting import Table, save_results
from repro.bench.timing import measure
from repro.bench.workloads import PAPER_SIZES, paper_payloads
from repro.crypto.hashing import data_digest

#: Samples per measurement; the paper uses 3000.  Hashing is cheap enough
#: for the paper's count; signing is pure Python so we use fewer.
HASH_SAMPLES = 3000
SIGN_SAMPLES = 300

_results = {}


@pytest.fixture(scope="module")
def payloads():
    return paper_payloads()


@pytest.mark.parametrize("type_name", list(PAPER_SIZES))
def test_hash_only(benchmark, payloads, type_name):
    payload = payloads[type_name]
    stats = measure(lambda: data_digest(1, payload), samples=HASH_SAMPLES)
    _results.setdefault(type_name, {})["hash_ms"] = stats.mean_ms
    _results[type_name]["hash_stdev_ms"] = stats.stdev_ms
    benchmark(data_digest, 1, payload)


@pytest.mark.parametrize("type_name", list(PAPER_SIZES))
def test_hash_and_sign(benchmark, bench_keys, payloads, type_name):
    payload = payloads[type_name]
    private = bench_keys[0].private

    def hash_and_sign():
        return private.sign_digest(data_digest(1, payload))

    stats = measure(hash_and_sign, samples=SIGN_SAMPLES)
    _results.setdefault(type_name, {})["hash_sign_ms"] = stats.mean_ms
    _results[type_name]["hash_sign_stdev_ms"] = stats.stdev_ms
    benchmark(hash_and_sign)


def test_report_table1(benchmark, payloads):
    """Render the Table I analogue and check the paper's shape claims."""
    benchmark(lambda: None)  # keep this report under --benchmark-only
    table = Table(
        "Table I -- hashing and signing time per data type (RSA-1024, SHA-256)",
        ["Type", "Size (B)", "Hash only (ms)", "Hash+Sign (ms)"],
    )
    for type_name, size in PAPER_SIZES.items():
        row = _results[type_name]
        table.add_row(type_name, size, row["hash_ms"], row["hash_sign_ms"])
    table.show()
    save_results("table1", _results)

    # Shape 1: signing cost dwarfs hashing for small payloads.
    assert _results["Steering"]["hash_sign_ms"] > 5 * _results["Steering"]["hash_ms"]
    # Shape 2: hash time grows with size; Image hashing is the big one.
    assert _results["Image"]["hash_ms"] > 5 * _results["Steering"]["hash_ms"]
    # Shape 3: the signing component (hash+sign minus hash) is ~flat
    # across sizes -- within 40% between Steering and Image.
    sign_small = (
        _results["Steering"]["hash_sign_ms"] - _results["Steering"]["hash_ms"]
    )
    sign_large = _results["Image"]["hash_sign_ms"] - _results["Image"]["hash_ms"]
    assert abs(sign_large - sign_small) / sign_small < 0.4
