"""Figure 15: log generation rate (bytes/s at the trusted logger) for
Steering data and Image data, under three configurations:

- Base: naive logging, subscriber stores data as-is;
- ADLP h(D''): ADLP with the subscriber storing the hash;
- ADLP D'': ADLP with the subscriber storing the data as-is.

Expected shape: for Image data, the h(D) option collapses the subscriber's
contribution (~921 KB -> ~350 B per entry), so ADLP-h(D) generates far
less log volume than ADLP-D; for tiny Steering data the three are
comparable and ADLP's signatures dominate.
"""

import time

import pytest

from repro.bench.rates import measure_log_rate
from repro.bench.reporting import Table, save_results
from repro.bench.workloads import payload_of_size
from repro.core import AdlpProtocol, LogServer, NaiveProtocol
from repro.core.policy import AdlpConfig
from repro.middleware import Master, Node
from repro.middleware.msgtypes import RawBytes

MEASURE_S = 2.0

#: (label, payload size, publish rate) -- Steering at 50 Hz, Image at 20 Hz
WORKLOADS = [("Steering", 20, 50.0), ("Image", 921641, 20.0)]
VARIANTS = ["base", "adlp_hash", "adlp_data"]

_results = {}


def _protocols(variant, server, keys):
    if variant == "base":
        return (
            NaiveProtocol("/pub", server.submit),
            NaiveProtocol("/sub", server.submit),
        )
    stores_hash = variant == "adlp_hash"
    config = AdlpConfig(
        key_bits=1024, subscriber_stores_hash=stores_hash, ack_timeout=10.0
    )
    return (
        AdlpProtocol("/pub", server, config=config, keypair=keys[0]),
        AdlpProtocol("/sub", server, config=config, keypair=keys[1]),
    )


def _measure(variant, size, hz, keys):
    master = Master()
    server = LogServer()
    pub_protocol, sub_protocol = _protocols(variant, server, keys)
    pub_node = Node("/pub", master, protocol=pub_protocol)
    sub_node = Node("/sub", master, protocol=sub_protocol)
    payload = payload_of_size(size)
    try:
        sub_node.subscribe("/data", RawBytes, lambda m: None)
        pub = pub_node.advertise("/data", RawBytes, queue_size=4)
        assert pub.wait_for_subscribers(1, timeout=10.0)
        pub_node.create_timer(hz, lambda: pub.publish(RawBytes(data=payload)))
        time.sleep(0.5)  # warm up
        rate = measure_log_rate(server, MEASURE_S)
        return rate
    finally:
        pub_node.shutdown()
        sub_node.shutdown()


@pytest.mark.parametrize("workload", WORKLOADS, ids=[w[0] for w in WORKLOADS])
def test_log_rates(benchmark, bench_keys, workload):
    label, size, hz = workload
    per_variant = {}
    for variant in VARIANTS:
        rate = _measure(variant, size, hz, bench_keys)
        per_variant[variant] = {
            "bytes_per_s": rate.bytes_per_second,
            "entries_per_s": rate.entries_per_second,
        }
    _results[label] = per_variant
    benchmark.pedantic(lambda: None, rounds=1)


def test_report_fig15(benchmark, bench_keys):
    benchmark(lambda: None)
    table = Table(
        "Figure 15 -- log generation rate (KB/s)",
        ["Workload", "Base", "ADLP h(D)", "ADLP D"],
    )
    for label, _, _ in WORKLOADS:
        row = _results[label]
        table.add_row(
            label,
            row["base"]["bytes_per_s"] / 1e3,
            row["adlp_hash"]["bytes_per_s"] / 1e3,
            row["adlp_data"]["bytes_per_s"] / 1e3,
        )
    table.show()
    save_results("fig15", _results)

    image = _results["Image"]
    # Shape 1 (the headline): storing h(D) collapses Image log volume
    # relative to storing D -- the subscriber side drops from ~1 MB to
    # ~350 B per entry, so ADLP-h(D) is far below ADLP-D.
    assert (
        image["adlp_hash"]["bytes_per_s"] < 0.7 * image["adlp_data"]["bytes_per_s"]
    )
    # Shape 2: ADLP-h(D) also undercuts Base for Image (Base logs D twice).
    assert image["adlp_hash"]["bytes_per_s"] < image["base"]["bytes_per_s"]
    # Shape 3: for tiny Steering data ADLP logs MORE than base (signature
    # overhead dominates small payloads).
    steering = _results["Steering"]
    assert steering["adlp_hash"]["bytes_per_s"] > steering["base"]["bytes_per_s"]
