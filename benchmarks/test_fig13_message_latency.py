"""Figure 13: average publisher->subscriber message latency vs payload
size, naive (baseline) vs ADLP, over TCP.

Expected shape: ADLP's latency ~= baseline + ~2 x (hash+sign), because the
publisher signs once and the subscriber hashes+signs again for the ACK
before delivering; the gap is roughly constant in absolute terms and
therefore shrinks relatively as payloads grow.
"""

import threading
import time

import pytest

from repro.bench.reporting import Table, save_results
from repro.bench.workloads import payload_of_size
from repro.core import AdlpProtocol, LogServer, NaiveProtocol
from repro.middleware import Master, Node
from repro.middleware.msgtypes import RawBytes
from repro.middleware.transport import TcpTransport

#: payload sizes measured (paper sweeps small..~1MB)
SIZES = [20, 1024, 8705, 65536, 262144, 921641]
MESSAGES_PER_SIZE = 30

_results = {}


class _LatencyProbe:
    """Measures publish->deliver latency via a callback rendezvous."""

    def __init__(self, node, pub_node, msg_class):
        self.received = threading.Event()
        self.sub = node.subscribe("/bench", msg_class, self._on_msg)
        self.pub = pub_node.advertise("/bench", msg_class, queue_size=4)
        assert self.pub.wait_for_subscribers(1, timeout=10.0)

    def _on_msg(self, msg):
        self.received.set()

    def roundtrip(self, msg) -> float:
        self.received.clear()
        t0 = time.perf_counter()
        self.pub.publish(msg)
        assert self.received.wait(10.0), "message lost"
        return time.perf_counter() - t0


def _measure_scheme(scheme: str, keys) -> dict:
    master = Master(transport=TcpTransport())
    server = LogServer()
    if scheme == "naive":
        pub_protocol = NaiveProtocol("/pub", server.submit)
        sub_protocol = NaiveProtocol("/sub", server.submit)
    else:
        from repro.core.policy import AdlpConfig

        config = AdlpConfig(key_bits=1024, ack_timeout=10.0)
        pub_protocol = AdlpProtocol("/pub", server, config=config, keypair=keys[0])
        sub_protocol = AdlpProtocol("/sub", server, config=config, keypair=keys[1])
    pub_node = Node("/pub", master, protocol=pub_protocol)
    sub_node = Node("/sub", master, protocol=sub_protocol)
    latencies = {}
    try:
        probe = _LatencyProbe(sub_node, pub_node, RawBytes)
        for size in SIZES:
            payload = payload_of_size(size)
            msg = RawBytes(data=payload)
            samples = []
            for _ in range(3):  # warmup
                probe.roundtrip(RawBytes(data=payload))
            for _ in range(MESSAGES_PER_SIZE):
                samples.append(probe.roundtrip(RawBytes(data=payload)))
            latencies[size] = sum(samples) / len(samples)
    finally:
        pub_node.shutdown()
        sub_node.shutdown()
    return latencies


@pytest.mark.parametrize("scheme", ["naive", "adlp"])
def test_latency_sweep(benchmark, bench_keys, scheme):
    latencies = _measure_scheme(scheme, bench_keys)
    _results[scheme] = {str(size): value * 1e3 for size, value in latencies.items()}

    # register a representative single-message latency with pytest-benchmark
    master = Master(transport=TcpTransport())
    server = LogServer()
    if scheme == "naive":
        protocols = NaiveProtocol("/pub", server.submit), NaiveProtocol("/sub", server.submit)
    else:
        from repro.core.policy import AdlpConfig

        config = AdlpConfig(key_bits=1024, ack_timeout=10.0)
        protocols = (
            AdlpProtocol("/pub", server, config=config, keypair=bench_keys[0]),
            AdlpProtocol("/sub", server, config=config, keypair=bench_keys[1]),
        )
    pub_node = Node("/pub", master, protocol=protocols[0])
    sub_node = Node("/sub", master, protocol=protocols[1])
    try:
        probe = _LatencyProbe(sub_node, pub_node, RawBytes)
        payload = payload_of_size(8705)
        benchmark.pedantic(
            lambda: probe.roundtrip(RawBytes(data=payload)),
            rounds=20,
            warmup_rounds=3,
        )
    finally:
        pub_node.shutdown()
        sub_node.shutdown()


def test_report_fig13(benchmark, bench_keys):
    benchmark(lambda: None)
    table = Table(
        "Figure 13 -- avg message latency pub->sub over TCP (ms)",
        ["Size (B)", "Baseline", "ADLP", "ADLP - Baseline"],
    )
    for size in SIZES:
        base = _results["naive"][str(size)]
        adlp = _results["adlp"][str(size)]
        table.add_row(size, base, adlp, adlp - base)
    table.show()
    save_results("fig13", _results)

    # Shape 1: ADLP is slower than baseline at every size.
    for size in SIZES:
        assert _results["adlp"][str(size)] > _results["naive"][str(size)]
    # Shape 2: the ADLP-baseline gap is on the order of 2x(hash+sign) --
    # we accept 0.5x..8x of two signing operations (~2 x ~1.7 ms) to keep
    # the check robust on shared machines.
    gaps = [
        _results["adlp"][str(size)] - _results["naive"][str(size)] for size in SIZES
    ]
    for gap in gaps:
        assert 0.5 < gap < 30.0
