"""Engineering benchmark (beyond the paper): the proof plane.

What does split-view detection cost the logger and its clients?  Three
rates bound it:

- **STH issuance** -- one RSA signature over a fixed-size payload; the
  logger pays this per gossip epoch, not per entry.
- **Inclusion prove+verify** -- a Merkle path build (server) plus a
  hash walk (client); the per-entry client-audit cost.
- **Consistency prove+verify** -- the RFC 6962 subproof between two
  sizes; paid once per observed head growth.

All three are entry-count-logarithmic or constant, so the numbers here
are what makes "every client verifies continuously" a defensible
deployment mode.  Set ``REPRO_BENCH_SMOKE=1`` for a tiny CI-sized
workload.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.reporting import Table, save_results
from repro.core import LogServer
from repro.core.entries import Direction, LogEntry, Scheme

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
ENTRIES = 256 if SMOKE else 4096
PROOF_ROUNDS = 1 if SMOKE else 3

_results: dict = {}


@pytest.fixture(scope="module")
def signed_server(bench_keys):
    """A signing server pre-loaded with ENTRIES records."""
    server = LogServer(signer=bench_keys[0].private, log_id="bench-proofs")
    payload = b"x" * 256
    for seq in range(ENTRIES):
        server.submit(LogEntry(
            component_id="/pub", topic="/t", type_name="std/String",
            direction=Direction.OUT, seq=seq, scheme=Scheme.ADLP,
            data=payload,
        ))
    return server


def test_sth_issuance_rate(benchmark, signed_server, bench_keys):
    sth = benchmark(signed_server.signed_tree_head)
    assert sth.verify(bench_keys[0].public)
    _results["sth_per_second"] = 1.0 / benchmark.stats.stats.mean


def test_inclusion_prove_verify_rate(benchmark, signed_server):
    records = signed_server.raw_records(0, ENTRIES)
    root = signed_server.merkle_root()
    indexes = range(0, ENTRIES, max(1, ENTRIES // 64))

    def prove_and_verify():
        for index in indexes:
            proof = signed_server.prove_inclusion(index)
            assert proof.verify(records[index], root)

    benchmark.pedantic(prove_and_verify, rounds=PROOF_ROUNDS, warmup_rounds=0)
    _results["inclusion_proofs_per_second"] = (
        len(list(indexes)) / benchmark.stats.stats.mean
    )


def test_consistency_prove_verify_rate(benchmark, signed_server):
    root = signed_server.merkle_root()
    sizes = list(range(1, ENTRIES, max(1, ENTRIES // 64)))
    old_roots = {old: signed_server._merkle.root_at(old) for old in sizes}

    def prove_and_verify():
        for old in sizes:
            proof = signed_server.prove_consistency(old, ENTRIES)
            assert proof.verify(old_roots[old], root)

    benchmark.pedantic(prove_and_verify, rounds=PROOF_ROUNDS, warmup_rounds=0)
    _results["consistency_proofs_per_second"] = (
        len(list(sizes)) / benchmark.stats.stats.mean
    )


def test_report_proofs(benchmark, signed_server):
    benchmark(lambda: None)
    table = Table(
        f"Proof plane throughput ({ENTRIES}-entry log, RSA-1024 STH)",
        ["Operation", "Ops/s"],
    )
    table.add_row("STH issuance", _results["sth_per_second"])
    table.add_row("Inclusion prove+verify", _results["inclusion_proofs_per_second"])
    table.add_row("Consistency prove+verify", _results["consistency_proofs_per_second"])
    table.show()
    _results["entries"] = ENTRIES
    save_results("proofs", _results)
    # Proof building is hashing-bound (no RSA): even the smoke workload
    # should clear hundreds of proofs per second.
    assert _results["inclusion_proofs_per_second"] > 100
    assert _results["consistency_proofs_per_second"] > 100
