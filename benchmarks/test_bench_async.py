"""Engineering benchmark (beyond the paper): the pipelined wire protocol.

The v2 correlation envelope (PROTOCOL.md section 15) lets one socket
carry many RPCs at once, so the interesting ratios are against the
pre-envelope discipline of one exchange in flight per connection:

- ``serial_rpc``: one entry per acknowledged RPC, one RPC in flight --
  the old ``_rpc_lock`` behavior, reconstructed with an external lock;
- ``pipelined_rpc``: the same per-entry RPCs issued by 8 threads over
  ONE shared socket (isolates what correlation alone buys: hiding the
  per-exchange turnaround gap);
- ``pipelined_batched``: 8 threads, 16-entry acknowledged batches, one
  socket -- the acceptance row (pipelining plus group commit);
- ``fanin``: how many concurrently connected clients one event-loop
  endpoint holds while answering all of them (the selectors rebuild's
  claim, counted not asserted-by-vibes);
- ``sharded``: a cross-shard batch against 4 worker processes whose
  per-entry ingest cost is a 1 ms stall, submitted shard-at-a-time vs
  fanned out -- the parent pays max-not-sum when sub-batches overlap.

Pipelining hides waiting, it does not create CPU: per-entry speedups
beyond turnaround-hiding need cores, so that assertion is gated on
:func:`host_cpu_count` and every saved row carries the ``cpu_count`` it
was measured on.  The batched and sharded bars come from overlapping
waits (frame turnaround, injected ingest stalls) and hold even on one
CPU.  Correctness is asserted in ``tests/core/test_remote_pipeline.py``
and ``tests/core/test_fanin_soak.py``; this file measures only speed.
Set ``REPRO_BENCH_SMOKE=1`` for a tiny CI-sized workload.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading

import pytest

from repro.bench.reporting import Table, host_cpu_count, save_results
from repro.core.entries import LogEntry, Scheme
from repro.core.log_server import LogServer
from repro.core.remote import LogServerEndpoint, RemoteLogger
from repro.sharding import ProcessShardedLogServer

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
ENTRIES = 128 if SMOKE else 512
THREADS = 8
BATCH = 16
ROUNDS = 1 if SMOKE else 3
# The single-socket rows are cheap (tens of ms per round) but their
# ratios feed a hard acceptance bar, so run more rounds and score the
# best one: scheduler noise on a contended host only ever *inflates* a
# round, so the minimum is the least-noise estimate of each mode.
RPC_ROUNDS = 3 if SMOKE else 5
FANIN_CLIENTS = 32 if SMOKE else 256
# One topic per shard at 4 shards (H(topic) % 4 == 0..3 in this order).
SHARD_TOPICS = ("/shard0", "/shard2", "/shard10", "/shard1")
SHARD_DELAY = 0.001
SHARD_BATCH = 64

_results: dict = {}


def _row(value: float) -> dict:
    """One saved benchmark row: the measurement plus the host's CPU
    count, so a scaling number can never be read without knowing whether
    scaling was physically possible when it was taken."""
    return {"value": value, "cpu_count": host_cpu_count()}


def _entries(count: int, base: int = 0, topic: str = "/t") -> list:
    return [
        LogEntry(
            component_id="/pub",
            topic=topic,
            seq=base + i,
            scheme=Scheme.ADLP,
            data=b"x" * 64,
        )
        for i in range(1, count + 1)
    ]


# -- one socket: serial vs pipelined vs pipelined+batched ---------------------


def _bench_one_socket(benchmark, label, hammer):
    worlds = []

    def setup():
        server = LogServer()
        endpoint = LogServerEndpoint(server)
        client = RemoteLogger(endpoint.address)
        client.health()  # connect outside the timed region
        worlds.append((server, endpoint, client))
        return (server, client), {}

    benchmark.pedantic(
        hammer, setup=setup, rounds=RPC_ROUNDS, warmup_rounds=0
    )
    for server, endpoint, client in worlds:
        client.close()
        endpoint.close()
    _results[label] = ENTRIES / benchmark.stats.stats.min


def test_serial_rpc(benchmark):
    """The pre-envelope discipline: every acknowledged submit waits out
    its reply before the next frame goes down the socket."""
    work = _entries(ENTRIES)
    lock = threading.Lock()  # the old client-side _rpc_lock, externalized

    def hammer(server, client):
        for entry in work:
            with lock:
                client.submit_batch_sync([entry], timeout=30.0)
        assert len(server) == ENTRIES

    _bench_one_socket(benchmark, "serial_rpc", hammer)


def test_pipelined_rpc(benchmark):
    """The same per-entry RPCs, 8 threads in flight on one socket."""
    per_thread = ENTRIES // THREADS
    work = [
        _entries(per_thread, base=worker * per_thread)
        for worker in range(THREADS)
    ]

    def hammer(server, client):
        def run(worker: int) -> None:
            for entry in work[worker]:
                client.submit_batch_sync([entry], timeout=30.0)

        threads = [
            threading.Thread(target=run, args=(w,)) for w in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(server) == ENTRIES

    _bench_one_socket(benchmark, "pipelined_rpc", hammer)


def test_pipelined_batched(benchmark):
    """The acceptance row: 16-entry acknowledged batches from 8 threads
    sharing one correlated socket."""
    per_thread = ENTRIES // THREADS
    work = [
        _entries(per_thread, base=worker * per_thread)
        for worker in range(THREADS)
    ]

    def hammer(server, client):
        def run(worker: int) -> None:
            batch = work[worker]
            for start in range(0, per_thread, BATCH):
                client.submit_batch_sync(
                    batch[start : start + BATCH], timeout=30.0
                )

        threads = [
            threading.Thread(target=run, args=(w,)) for w in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(server) == ENTRIES

    _bench_one_socket(benchmark, "pipelined_batched", hammer)


# -- fan-in: concurrent connections held by one endpoint ----------------------


def test_fanin_connections(benchmark):
    """Connect ``FANIN_CLIENTS`` stubs to ONE endpoint, answer an RPC on
    each, and sample the live connection count while all are open."""
    worlds = []

    def setup():
        server = LogServer()
        endpoint = LogServerEndpoint(server)
        worlds.append((server, endpoint))
        return (endpoint,), {}

    def fan_in(endpoint):
        clients = []
        try:
            for _ in range(FANIN_CLIENTS):
                client = RemoteLogger(endpoint.address)
                client.health(timeout=30.0)
                clients.append(client)
            peak = len(endpoint._connections)
            assert peak >= FANIN_CLIENTS
            _results["fanin_connections"] = max(
                _results.get("fanin_connections", 0), peak
            )
        finally:
            for client in clients:
                client.close()

    benchmark.pedantic(fan_in, setup=setup, rounds=ROUNDS, warmup_rounds=0)
    for server, endpoint in worlds:
        endpoint.close()
    _results["fanin_seconds"] = benchmark.stats.stats.mean


# -- sharded fan-out: max-not-sum across worker processes ---------------------


@pytest.mark.parametrize("mode", ["serial", "fanout"])
def test_sharded_submit(benchmark, mode):
    """Cross-shard acknowledged batches against 4 worker processes with a
    1 ms per-entry ingest stall (standing in for signature checks and
    fsync).  ``serial`` submits one shard's sub-batch at a time; ``fanout``
    hands `submit_batch` a batch spanning all four shards, whose
    sub-batches the parent pipelines concurrently."""
    store_dir = tempfile.mkdtemp(prefix=f"bench-async-{mode}-")
    server = ProcessShardedLogServer(
        shards=4,
        store_dir=store_dir,
        fsync="never",
        ingest_delay=SHARD_DELAY,
    )
    assert {server.shard_of(t) for t in SHARD_TOPICS} == {0, 1, 2, 3}
    seq = {topic: 0 for topic in SHARD_TOPICS}
    per_shard = SHARD_BATCH // len(SHARD_TOPICS)

    def next_batches():
        """Fresh sub-batches, one per shard, ``per_shard`` entries each."""
        batches = []
        for topic in SHARD_TOPICS:
            batches.append(
                _entries(per_shard, base=seq[topic], topic=topic)
            )
            seq[topic] += per_shard
        return batches

    def serial():
        for batch in next_batches():
            server.submit_batch(batch)  # single-shard: nothing overlaps

    def fanout():
        batches = next_batches()
        interleaved = [
            batch[i] for i in range(per_shard) for batch in batches
        ]
        server.submit_batch(interleaved)  # spans all 4 shards at once

    try:
        benchmark.pedantic(
            serial if mode == "serial" else fanout,
            rounds=ROUNDS,
            warmup_rounds=0,
        )
        assert len(server) == ROUNDS * SHARD_BATCH
    finally:
        server.close()
        shutil.rmtree(store_dir, ignore_errors=True)
    _results[f"sharded_{mode}"] = SHARD_BATCH / benchmark.stats.stats.mean


# -- report -------------------------------------------------------------------


def test_report_async(benchmark):
    benchmark(lambda: None)
    cpus = host_cpu_count()

    table = Table(
        f"Pipelined wire protocol: entries/s over one socket, "
        f"{THREADS} threads, 64 B payloads ({cpus} cpus)",
        ["Mode", "Entries/s", "vs serial RPC"],
    )
    serial = _results["serial_rpc"]
    data = {"threads": THREADS, "batch_size": BATCH, "entries": ENTRIES}
    for label in ("serial_rpc", "pipelined_rpc", "pipelined_batched"):
        rate = _results[label]
        table.add_row(label, rate, f"{rate / serial:.2f}x")
        data[label] = _row(rate)
    pipelined_speedup = _results["pipelined_rpc"] / serial
    batched_speedup = _results["pipelined_batched"] / serial
    data["pipelined_rpc_speedup"] = _row(pipelined_speedup)
    data["pipelined_batched_speedup"] = _row(batched_speedup)
    table.show()

    shard_table = Table(
        f"Sharded fan-out: entries/s, 4 worker processes, "
        f"{int(SHARD_DELAY * 1000)} ms/entry ingest stall ({cpus} cpus)",
        ["Mode", "Entries/s", "vs shard-at-a-time"],
    )
    shard_serial = _results["sharded_serial"]
    for mode in ("serial", "fanout"):
        rate = _results[f"sharded_{mode}"]
        shard_table.add_row(mode, rate, f"{rate / shard_serial:.2f}x")
        data[f"sharded_{mode}"] = _row(rate)
    sharded_speedup = _results["sharded_fanout"] / shard_serial
    data["sharded_fanout_speedup"] = _row(sharded_speedup)
    shard_table.show()

    fanin = _results["fanin_connections"]
    print(
        f"\nfan-in: {fanin} concurrent connections on one endpoint "
        f"({_results['fanin_seconds']:.3f}s to connect+answer all)\n"
    )
    data["fanin_connections"] = _row(float(fanin))
    save_results("async", data)

    assert all(value > 0 for value in _results.values())
    assert fanin >= FANIN_CLIENTS
    # The acceptance bar: pipelined batched submit at least doubles the
    # serial-RPC rate.  Both this and the sharded fan-out bar come from
    # overlapping *waits* (reply turnaround, injected ingest stalls), so
    # they hold even on one CPU and are not core-gated.
    assert batched_speedup >= 2.0, (
        f"pipelined batched submit {batched_speedup:.2f}x serial RPC "
        f"(expected >= 2x on {cpus} cpus)"
    )
    if not SMOKE:
        assert sharded_speedup >= 2.0, (
            f"sharded fan-out {sharded_speedup:.2f}x shard-at-a-time "
            f"(expected >= 2x with a {SHARD_DELAY * 1000:.0f} ms stall)"
        )
    # Bare per-entry pipelining only beats serial by more than the
    # turnaround-hiding margin when dispatch can actually run in
    # parallel with the client; that bar needs cores.
    if not SMOKE and cpus >= 4:
        assert pipelined_speedup >= 1.2, (
            f"pipelined per-entry RPCs {pipelined_speedup:.2f}x serial "
            f"on {cpus} cpus (expected >= 1.2x)"
        )
