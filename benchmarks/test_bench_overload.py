"""Engineering benchmark (beyond the paper): overload protection.

A saturated trusted logger is the regime the resilience stack exists
for: ingest is slowed (``OverloadInjector``) so offered load exceeds
service rate, two fire-and-forget flooders keep the server pinned, and
one well-behaved acknowledged client keeps submitting small batches
through the congestion.  The same workload runs twice:

- **off**: no admission controller on the endpoint, no client flow
  control -- every frame queues unboundedly in front of the slowed
  ingest loop and the acknowledged client waits behind the backlog;
- **on**: the endpoint runs admission control (bounded ingest with
  BUSY + retry-after), the flooders run credit windows, retry budgets
  and shed-to-spill, and the acknowledged client paces itself by the
  server's own hints.

Measured per config: **goodput** (entries fully landed per wall-clock
second, flood *and* sync, spill drained to zero -- shed entries must be
delayed, never lost, or the run fails) and the acknowledged client's
ack latency distribution.  The bar: admission control must not cost
goodput -- refusing early and pacing resends keeps the server exactly
as busy as letting the backlog pile up, while keeping the queue (and
therefore the sync client's latency) bounded.

Set ``REPRO_BENCH_SMOKE=1`` for a tiny CI-sized workload.
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from repro.bench.reporting import Table, host_cpu_count, save_results
from repro.core.log_server import LogServer
from repro.core.remote import LogServerEndpoint, RemoteLogger
from repro.errors import LoggingError, ServerBusy
from repro.middleware.transport.inproc import InprocTransport
from repro.resilience.admission import AdmissionConfig, AdmissionController
from repro.resilience.flow import FlowControlConfig
from repro.resilience.matrix import _build_records, _cell_keys
from repro.resilience.overload import OverloadInjector

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SEED = 90210
INGEST_DELAY = 0.001
FLOODERS = 2
FLOOD_ENTRIES = 64 if SMOKE else 320  # per flooder (entries, i.e. pub+sub rows)
FLOOD_BATCH = 64
SYNC_PROBES = 8 if SMOKE else 48  # acknowledged 2-record batches
DRAIN_TIMEOUT = 120.0
CONFIGS = ("off", "on")

_TOPICS = ["/bench/ack/a", "/bench/ack/b", "/bench/noise/a", "/bench/noise/b"]

# Tuned for goodput parity on a saturated server: the admission queue
# must bank enough work (high_watermark x ingest delay ~ 50 ms) to keep
# the ingest loop busy across the clients' paced retry windows, and the
# pause caps stay on the order of the queue-drain time -- a 250 ms pause
# over a 24-entry queue would idle the server 3/4 of the cycle.
_ADMISSION = AdmissionConfig(
    high_watermark=48, low_watermark=16, retry_after=0.01, max_retry_after=0.02
)
_FLOW = FlowControlConfig(
    window_bytes=4096,
    credit_timeout=2.0,
    retry_budget=64.0,
    retry_token_ratio=0.5,
    retry_time_refill=50.0,
    shed_min_pause=0.01,
    shed_max_pause=0.05,
)

_results: dict = {}


def _percentile(values, q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _run_config(protected: bool) -> dict:
    rng = random.Random(SEED)
    keys = _cell_keys(SEED)
    sync_records = _build_records(rng, keys, _TOPICS[:2], SYNC_PROBES)
    flood_shares = [
        _build_records(
            rng, keys, _TOPICS[2:], FLOOD_ENTRIES // 2, seq_base=10_000 * (i + 1)
        )
        for i in range(FLOODERS)
    ]

    server = LogServer()
    server.register_key("/pub", keys[0].public)
    server.register_key("/sub", keys[1].public)
    ingest = OverloadInjector(server, delay=INGEST_DELAY)
    transport = InprocTransport()
    endpoint = LogServerEndpoint(
        ingest,
        transport=transport,
        admission=AdmissionController(_ADMISSION) if protected else None,
    )

    flooders = [
        RemoteLogger(
            endpoint.address,
            transport=transport,
            spill_capacity=100_000,
            flow_control=_FLOW if protected else None,
            rng=random.Random(SEED + 100 + i),
        )
        for i in range(FLOODERS)
    ]
    sync_client = RemoteLogger(
        endpoint.address, transport=transport, rng=random.Random(SEED + 7)
    )

    drain_failures: list = []

    def flood(client: RemoteLogger, share) -> None:
        """One flooder's whole life: offer its share, then autonomously
        drain whatever it shed until everything landed.  Each client owns
        its connection, so the (per-entry, lock-free) ingest slowdowns of
        concurrent clients overlap identically in both configs -- the
        comparison isolates the protection stack, not a serialization
        artifact of the harness."""
        for start in range(0, len(share), FLOOD_BATCH):
            client.submit_batch(share[start : start + FLOOD_BATCH])
        deadline = time.perf_counter() + DRAIN_TIMEOUT
        while client.spilled > 0 or client.shedding:
            if time.perf_counter() > deadline:
                drain_failures.append(
                    f"spill failed to drain: {client.spilled} entries "
                    f"still parked"
                )
                return
            client.flush_spill()
            time.sleep(0.005)
        while True:  # FIFO barrier: any answer proves prior frames landed
            if time.perf_counter() > deadline:
                drain_failures.append("drain barrier never answered")
                return
            try:
                client.health(timeout=2.0)
                break
            except LoggingError:
                time.sleep(0.02)

    latencies = []
    busy_responses = 0
    started = time.perf_counter()
    threads = [
        threading.Thread(target=flood, args=(c, s), daemon=True)
        for c, s in zip(flooders, flood_shares)
    ]
    try:
        for thread in threads:
            thread.start()
        # The well-behaved client: acknowledged 2-record batches through
        # the congestion; a BUSY answer is honored (that wait is part of
        # the honest ack latency, not excluded from it).
        for i in range(0, len(sync_records), 2):
            chunk = list(sync_records[i : i + 2])
            op_start = time.perf_counter()
            while True:
                try:
                    sync_client.submit_batch_sync(chunk, timeout=30.0)
                    break
                except ServerBusy as exc:
                    busy_responses += 1
                    time.sleep(min(max(exc.retry_after, 0.005), 0.25))
            latencies.append(time.perf_counter() - op_start)
        for thread in threads:
            thread.join(timeout=DRAIN_TIMEOUT)
        assert not drain_failures, "; ".join(drain_failures)
        elapsed = time.perf_counter() - started
        expected = len(sync_records) + sum(len(s) for s in flood_shares)
        landed = len(server)
        assert landed == expected, (
            f"{expected - landed} entries lost under overload "
            f"({landed}/{expected} landed)"
        )
        shed = sum(c.shed_entries for c in flooders)
        busy_responses += sum(c.busy_responses for c in flooders)
        return {
            "goodput_eps": landed / elapsed,
            "ack_p50_ms": _percentile(latencies, 0.50) * 1e3,
            "ack_p95_ms": _percentile(latencies, 0.95) * 1e3,
            "busy_responses": busy_responses,
            "shed_entries": shed,
            "landed": landed,
            "elapsed_s": elapsed,
        }
    finally:
        for client in flooders:
            client.close()
        sync_client.close()
        endpoint.close()
        server.close()


@pytest.mark.parametrize("config", CONFIGS)
def test_saturated_goodput(benchmark, config):
    protected = config == "on"

    def run():
        _results[config] = _run_config(protected)

    benchmark.pedantic(run, rounds=1, warmup_rounds=0)
    measured = _results[config]
    assert measured["goodput_eps"] > 0
    if protected:
        # The whole point: the flood actually tripped admission control
        # and shedding delayed (not lost -- asserted inside) entries.
        assert measured["busy_responses"] > 0, (
            "saturated run never saw a BUSY response; admission control "
            "was not exercised"
        )


def test_report_overload(benchmark):
    benchmark(lambda: None)
    cpus = host_cpu_count()
    table = Table(
        f"Saturated-server overload: {FLOODERS} flooders x "
        f"{FLOOD_ENTRIES} entries + {SYNC_PROBES} acked batches, "
        f"ingest delay {INGEST_DELAY * 1e3:.1f} ms ({cpus} cpus)",
        ["Protection", "Goodput e/s", "Ack p50 ms", "Ack p95 ms",
         "BUSY", "Shed"],
    )
    data: dict = {"cpus": cpus, "ingest_delay_ms": INGEST_DELAY * 1e3}
    for config in CONFIGS:
        row = _results[config]
        table.add_row(
            config,
            row["goodput_eps"],
            row["ack_p50_ms"],
            row["ack_p95_ms"],
            row["busy_responses"],
            row["shed_entries"],
        )
        for key, value in row.items():
            data[f"{config}_{key}"] = value
    ratio = _results["on"]["goodput_eps"] / _results["off"]["goodput_eps"]
    data["goodput_ratio_on_vs_off"] = ratio
    table.show()
    save_results("overload", data)
    # The acceptance bar: overload protection must not cost goodput.
    # Refuse-early + paced resends keeps the (saturated) ingest loop as
    # busy as an unbounded backlog does; the generous floor absorbs
    # scheduler noise on small CI hosts without letting a real
    # regression (pacing idling the server) through.
    assert ratio >= 0.6, (
        f"admission control cost {1 - ratio:.0%} goodput on a saturated "
        f"server (on={_results['on']['goodput_eps']:.0f} e/s, "
        f"off={_results['off']['goodput_eps']:.0f} e/s)"
    )
