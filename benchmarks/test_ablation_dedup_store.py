"""Ablation: server-side content-addressed deduplication (§VI-E's
"this kind of optimization can also be done at the log server-side").

Runs the self-driving app under plain ADLP (per-subscriber publisher
entries) but stores the log in a :class:`DedupLogStore`.  The two camera
subscribers cause every ~900 KB frame to appear in two publisher entries;
dedup stores it once, recovering most of the aggregation extension's
saving without touching the protocol.
"""

import time

import pytest

from repro.apps.selfdriving import SelfDrivingApp
from repro.apps.selfdriving.app import seeded_keypairs
from repro.bench.reporting import Table, save_results
from repro.core import DedupLogStore, LogServer
from repro.core.policy import AdlpConfig

MEASURE_S = 3.0

_results = {}


@pytest.fixture(scope="module")
def app_keys():
    return seeded_keypairs(bits=1024)


def test_dedup_saving(benchmark, app_keys):
    store = DedupLogStore()
    server = LogServer(store=store)
    config = AdlpConfig(key_bits=1024, subscriber_stores_hash=True, ack_timeout=10.0)
    with SelfDrivingApp(
        scheme="adlp", log_server=server, keypairs=app_keys, adlp_config=config
    ) as app:
        app.start()
        time.sleep(1.0 + MEASURE_S)
        app.flush_logs()
    app.flush_logs()
    server.verify_integrity()  # reconstruction must be exact
    _results["logical_mb"] = store.total_bytes / 1e6
    _results["physical_mb"] = store.physical_bytes / 1e6
    _results["dedup_ratio"] = store.dedup_ratio
    benchmark.pedantic(lambda: None, rounds=1)


def test_report_dedup(benchmark, app_keys):
    benchmark(lambda: None)
    table = Table(
        "Ablation -- server-side dedup storage (self-driving app, ADLP)",
        ["Logical (MB)", "Physical (MB)", "Ratio"],
    )
    table.add_row(
        _results["logical_mb"], _results["physical_mb"], _results["dedup_ratio"]
    )
    table.show()
    save_results("ablation_dedup", _results)
    # the camera topic's 2-subscriber fan-out alone guarantees savings
    assert _results["dedup_ratio"] > 1.4
