"""Table IV: system-wide log generation rate of the self-driving app.

Paper: Base 36.893 Mb/s vs ADLP 37.297 Mb/s, "in both of which the
subscribers store hashed data" -- ADLP generates only ~1.1% more log
volume than base logging.

We measure three configurations:

- ``naive``  -- base logging, subscribers store h(D) (the paper's setup);
- ``adlp``   -- ADLP per-subscriber publisher entries (the prototype's
  step 6 writes one L_x per acknowledgement);
- ``adlp_aggregated`` -- the Section VI-E aggregation extension (one L_x
  per publication).

With our Figure 11(b) topology the camera topic has *two* subscribers, so
plain ADLP duplicates the ~900 KB image payload in publisher entries and
overshoots base logging by ~2x; the aggregated variant collapses that
duplication and recovers the paper's "ADLP ~ base + small %" shape.  The
discrepancy and its cause are recorded in EXPERIMENTS.md.
"""

import time

import pytest

from repro.apps.selfdriving import SelfDrivingApp
from repro.apps.selfdriving.app import seeded_keypairs
from repro.bench.rates import measure_log_rate
from repro.bench.reporting import Table, save_results
from repro.core.policy import AdlpConfig

MEASURE_S = 3.0

VARIANTS = ["naive", "adlp", "adlp_aggregated"]

_results = {}


@pytest.fixture(scope="module")
def app_keys():
    return seeded_keypairs(bits=1024)


def _measure(variant, app_keys):
    scheme = "naive" if variant == "naive" else "adlp"
    config = AdlpConfig(
        key_bits=1024,
        subscriber_stores_hash=True,
        ack_timeout=10.0,
        aggregate_publisher_entries=(variant == "adlp_aggregated"),
    )
    with SelfDrivingApp(
        scheme=scheme,
        keypairs=app_keys,
        adlp_config=config,
        camera_hz=20.0,
        naive_stores_hash=True,  # Table IV: subscribers store hashed data
    ) as app:
        app.start()
        time.sleep(1.0)
        return measure_log_rate(app.log_server, MEASURE_S)


@pytest.mark.parametrize("variant", VARIANTS)
def test_system_log_rate(benchmark, app_keys, variant):
    rate = _measure(variant, app_keys)
    _results[variant] = {
        "megabits_per_s": rate.megabits_per_second,
        "entries_per_s": rate.entries_per_second,
    }
    benchmark.pedantic(lambda: None, rounds=1)


def test_report_table4(benchmark, app_keys):
    benchmark(lambda: None)
    table = Table(
        "Table IV -- system-wide log generation rate (Mb/s)",
        ["Scheme", "Rate (Mb/s)", "Entries/s"],
    )
    for variant in VARIANTS:
        row = _results[variant]
        table.add_row(variant, row["megabits_per_s"], row["entries_per_s"])
    table.show()
    save_results("table4", _results)

    naive = _results["naive"]["megabits_per_s"]
    adlp = _results["adlp"]["megabits_per_s"]
    aggregated = _results["adlp_aggregated"]["megabits_per_s"]
    # Log data flows at a meaningful rate everywhere.
    assert min(naive, adlp, aggregated) > 1.0

    # Absolute rates are load-sensitive (CPU contention throttles the app's
    # message rate), so the shape checks are normalized per entry -- the
    # byte cost of one log entry does not depend on machine load.
    def per_entry(variant):
        row = _results[variant]
        return row["megabits_per_s"] * 1e6 / 8 / max(row["entries_per_s"], 1)

    naive_pe = per_entry("naive")
    adlp_pe = per_entry("adlp")
    agg_pe = per_entry("adlp_aggregated")
    # Plain ADLP entries are fatter: per-subscriber payload duplication on
    # the 2-subscriber camera topic plus signatures.
    assert adlp_pe > naive_pe
    # Aggregation collapses the duplication back toward base logging
    # (the paper's "ADLP ~ base + small %" shape).
    assert agg_pe < adlp_pe
    assert 0.5 * naive_pe < agg_pe < 2.0 * naive_pe
