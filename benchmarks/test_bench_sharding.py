"""Engineering benchmark (beyond the paper): topic sharding.

A single trusted logger funnels every submit through one lock and one
hash chain, so its ingest rate saturates one core (the ceiling behind the
paper's Table IV system log rates).  ``ShardedLogServer`` splits the log
into N share-nothing shards routed by topic; this file measures the two
axes that sharding opens up:

- **submit throughput vs shard count**: four submitter threads, each
  owning one topic *group* chosen so the groups split evenly across 4,
  2, and 1 shards.  Payloads are 32 KiB: SHA-256 releases the GIL above
  ~2 KiB, so chain/Merkle hashing of different shards genuinely overlaps
  when the host has cores to run them on.
- **audit wall-clock vs worker count**: ``audit_sharded`` fans per-shard
  audits (signature verification and pairwise matching) across a worker
  pool.
- **thread vs process backend, batched submit**: the same durable
  4-shard workload group-committed in 64-entry batches through
  ``ShardedLogServer`` and ``ProcessShardedLogServer`` -- the row that
  shows what escaping the GIL buys once each shard hashes in its own
  interpreter.

Sharding is verdict- and commitment-preserving (asserted by
``tests/sharding/``); this file measures only speed.  Scaling assertions
only run where scaling is physically possible (4+ CPUs via
:func:`host_cpu_count`, not SMOKE), and every saved row carries the
``cpu_count`` it was measured on so the numbers stay interpretable --
on a 1-CPU host every variant lands near the same rate and that is the
honest result.

Set ``REPRO_BENCH_SMOKE=1`` for a tiny CI-sized workload.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time

import pytest

from repro.bench.reporting import Table, host_cpu_count, save_results
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.protocol import message_digest
from repro.sharding import (
    ShardRouter,
    ShardedLogServer,
    audit_sharded,
    make_sharded_server,
)
from repro.sharding.router import _ROUTE_PREFIX  # the routing hash domain

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
THREADS = 4
PER_THREAD = 32 if SMOKE else 150
PAYLOAD = b"x" * (4096 if SMOKE else 32768)
ROUNDS = 1 if SMOKE else 3
SHARD_COUNTS = (1, 2, 4)
WORKER_COUNTS = (1, 2, 4)
AUDIT_TRANSMISSIONS = 12 if SMOKE else 48
BACKENDS = ("thread", "process")
BATCH = 64

_results: dict = {}


def _row(value: float) -> dict:
    """One saved benchmark row: the measurement plus the host's CPU
    count, so a scaling number can never be read without knowing whether
    scaling was physically possible when it was taken."""
    return {"value": value, "cpu_count": host_cpu_count()}


def _topic_groups(count: int = THREADS) -> dict:
    """One topic per routing-hash residue class mod ``count``.

    Group ``g`` satisfies ``H(topic) % 4 == g``, so at 4 shards each
    group owns shard ``g``, at 2 shards groups {0,2} share shard 0 and
    {1,3} share shard 1 (``H % 2 == (H % 4) % 2``), and at 1 shard all
    four contend for the single lock -- the contention sweep the
    benchmark wants, from one stable topic set.
    """
    from repro.crypto.hashing import sha256

    groups: dict = {}
    i = 0
    while len(groups) < count:
        topic = "/bench-%d" % i
        digest = sha256(_ROUTE_PREFIX + topic.encode("utf-8"))
        residue = int.from_bytes(digest[:8], "big") % count
        groups.setdefault(residue, topic)
        i += 1
    return groups


GROUPS = _topic_groups()


def _make_group_entries(topic: str) -> list:
    return [
        LogEntry(
            component_id="/pub",
            topic=topic,
            type_name="std/String",
            direction=Direction.OUT,
            seq=i,
            timestamp=float(i),
            scheme=Scheme.ADLP,
            data=PAYLOAD,
            own_sig=b"\x5a" * 64,
        )
        for i in range(1, PER_THREAD + 1)
    ]


WORK = {group: _make_group_entries(topic) for group, topic in GROUPS.items()}


# -- submit throughput vs shard count -----------------------------------------


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_submit_scaling(benchmark, shards):
    # sanity: the groups split over the shard counts as designed
    router = ShardRouter(shards)
    assert {router.shard_of(t) for t in GROUPS.values()} == set(
        g % shards for g in GROUPS
    )

    def setup():
        return (ShardedLogServer(shards=shards),), {}

    def hammer(server):
        threads = [
            threading.Thread(
                target=lambda group=group: [
                    server.submit(entry) for entry in WORK[group]
                ]
            )
            for group in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(server) == THREADS * PER_THREAD

    benchmark.pedantic(hammer, setup=setup, rounds=ROUNDS, warmup_rounds=0)
    _results[f"submit_{shards}_shards"] = (
        THREADS * PER_THREAD / benchmark.stats.stats.mean
    )


# -- thread vs process backend, batched submit --------------------------------


def _interleaved_records() -> list:
    """The submit workload as encoded records, round-robin across the
    four topic groups so every 64-entry batch spans every shard (the
    fan-out the process backend parallelizes)."""
    records = []
    for i in range(PER_THREAD):
        for group in range(THREADS):
            records.append(WORK[group][i].encode())
    return records


BATCHED_RECORDS = _interleaved_records()


@pytest.mark.parametrize("backend", BACKENDS)
def test_batched_submit_backends(benchmark, backend):
    """Group-committed ingest through both sharding backends, durable
    stores with ``fsync="never"`` for both so the comparison isolates
    hashing parallelism, not fsync policy."""
    created = []

    def setup():
        store_dir = tempfile.mkdtemp(prefix="bench-%s-" % backend)
        server = make_sharded_server(
            backend=backend, shards=4, store_dir=store_dir, fsync="never"
        )
        created.append((server, store_dir))
        return (server,), {}

    def hammer(server):
        for start in range(0, len(BATCHED_RECORDS), BATCH):
            server.submit_batch(BATCHED_RECORDS[start : start + BATCH])
        assert len(server) == THREADS * PER_THREAD

    try:
        benchmark.pedantic(hammer, setup=setup, rounds=ROUNDS, warmup_rounds=0)
    finally:
        for server, store_dir in created:
            server.close()
            shutil.rmtree(store_dir, ignore_errors=True)
    _results[f"batched_submit_{backend}"] = (
        THREADS * PER_THREAD / benchmark.stats.stats.mean
    )


# -- audit wall-clock vs worker count -----------------------------------------


def _signed_audit_server(bench_keys) -> ShardedLogServer:
    """A 4-shard server holding honest signed pairs across every shard
    (verification work for the audit to parallelize)."""
    server = ShardedLogServer(shards=4)
    server.register_key("/pub", bench_keys[0].public)
    server.register_key("/sub", bench_keys[1].public)
    topics = list(GROUPS.values())
    for i in range(AUDIT_TRANSMISSIONS):
        topic = topics[i % len(topics)]
        seq = i // len(topics) + 1
        payload = b"audit-%04d" % i
        digest = message_digest(seq, payload)
        s_x = bench_keys[0].private.sign_digest(digest)
        s_y = bench_keys[1].private.sign_digest(digest)
        server.submit(
            LogEntry(
                component_id="/pub", topic=topic, type_name="std/String",
                direction=Direction.OUT, seq=seq, scheme=Scheme.ADLP,
                data=payload, own_sig=s_x,
                peer_id="/sub", peer_hash=digest, peer_sig=s_y,
            )
        )
        server.submit(
            LogEntry(
                component_id="/sub", topic=topic, type_name="std/String",
                direction=Direction.IN, seq=seq, scheme=Scheme.ADLP,
                data_hash=digest, own_sig=s_y, peer_id="/pub", peer_sig=s_x,
            )
        )
    return server


@pytest.fixture(scope="module")
def audit_server(bench_keys):
    return _signed_audit_server(bench_keys)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_audit_scaling(benchmark, audit_server, workers):
    def audited():
        start = time.perf_counter()
        result = audit_sharded(audit_server, workers=workers)
        elapsed = time.perf_counter() - start
        assert result.clean
        return elapsed

    benchmark.pedantic(audited, rounds=ROUNDS, warmup_rounds=0)
    _results[f"audit_{workers}_workers"] = benchmark.stats.stats.mean


# -- report -------------------------------------------------------------------


def test_report_sharding(benchmark):
    benchmark(lambda: None)
    cpus = host_cpu_count()

    table = Table(
        f"Sharded submit: entries/s, {THREADS} threads, "
        f"{len(PAYLOAD)} B payloads ({cpus} cpus)",
        ["Shards", "Entries/s", "vs 1 shard"],
    )
    data = {
        "cpus": cpus,  # legacy top-level copy; every row repeats it
        "threads": THREADS,
        "payload_bytes": len(PAYLOAD),
    }
    base = _results["submit_1_shards"]
    for shards in SHARD_COUNTS:
        rate = _results[f"submit_{shards}_shards"]
        table.add_row(shards, rate, f"{rate / base:.2f}x")
        data[f"submit_{shards}_shards"] = _row(rate)
    data["submit_speedup_4_shards"] = _row(_results["submit_4_shards"] / base)
    table.show()

    backend_table = Table(
        f"Batched submit, 4 shards, batch={BATCH}: entries/s by backend "
        f"({cpus} cpus)",
        ["Backend", "Entries/s", "vs thread"],
    )
    thread_rate = _results["batched_submit_thread"]
    for backend in BACKENDS:
        rate = _results[f"batched_submit_{backend}"]
        backend_table.add_row(backend, rate, f"{rate / thread_rate:.2f}x")
        data[f"batched_submit_{backend}"] = _row(rate)
    process_speedup = _results["batched_submit_process"] / thread_rate
    data["batched_submit_process_speedup"] = _row(process_speedup)
    backend_table.show()

    audit_table = Table(
        f"Sharded audit: wall-clock seconds, 4 shards, "
        f"{2 * AUDIT_TRANSMISSIONS} signed entries",
        ["Workers", "Seconds", "vs 1 worker"],
    )
    audit_base = _results["audit_1_workers"]
    for workers in WORKER_COUNTS:
        seconds = _results[f"audit_{workers}_workers"]
        audit_table.add_row(workers, seconds, f"{audit_base / seconds:.2f}x")
        data[f"audit_seconds_{workers}_workers"] = _row(seconds)
    data["audit_speedup_4_workers"] = _row(
        audit_base / _results["audit_4_workers"]
    )
    audit_table.show()

    save_results("sharding", data)
    assert all(rate > 0 for rate in _results.values())
    # The scaling bars only apply where scaling is physically possible:
    # threaded shards overlap hashing via GIL release, process shards via
    # separate interpreters -- both need cores to land on.  A 1-CPU host
    # records honest flat numbers (each row says so via its cpu_count).
    if not SMOKE and cpus >= 4:
        speedup = data["submit_speedup_4_shards"]["value"]
        assert speedup >= 2.0, (
            f"4-shard submit speedup {speedup:.2f}x < 2x on {cpus} cpus"
        )
        assert process_speedup >= 2.0, (
            f"process backend batched submit {process_speedup:.2f}x the "
            f"threaded rate on {cpus} cpus (expected >= 2x at 4 shards)"
        )
