"""Table III: message and log-entry sizes (bytes) per data type, under the
base scheme and ADLP.

Paper's structure:

- message size = |D| + 4 (TCPROS length preamble) + 128 (RSA-1024 signed
  hash) under ADLP;
- base log entries store the data as-is on both sides;
- ADLP publisher entries add the two signatures and acknowledged hash;
- ADLP *subscriber* entries store h(D) instead of D, collapsing to a small
  constant (paper: 350 B) regardless of |D| -- the headline space saving.

This benchmark is deterministic: it constructs the exact wire artifacts
and measures their encoded sizes.
"""

import pytest

from repro.bench.reporting import Table, save_results
from repro.bench.workloads import PAPER_SIZES, paper_payloads
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.protocol import AdlpAck, AdlpMessage, message_digest
from repro.middleware.transport import framing

_results = {}


def _sizes_for(type_name, payload, keys):
    pub_key, sub_key = keys[0], keys[1]
    seq = 100
    digest = message_digest(seq, payload)
    s_x = pub_key.private.sign_digest(digest)
    s_y = sub_key.private.sign_digest(digest)

    adlp_wire = AdlpMessage(seq=seq, payload=payload, signature=s_x).encode()
    message_size = len(adlp_wire) + framing.frame_overhead()

    base_pub = LogEntry(
        component_id="/pub",
        topic="/data",
        type_name="bench/Type",
        direction=Direction.OUT,
        seq=seq,
        timestamp=1234.5,
        scheme=Scheme.NAIVE,
        data=payload,
    )
    base_sub = LogEntry(
        component_id="/sub",
        topic="/data",
        type_name="bench/Type",
        direction=Direction.IN,
        seq=seq,
        timestamp=1234.5,
        scheme=Scheme.NAIVE,
        data=payload,
        peer_id="/pub",
    )
    adlp_pub = LogEntry(
        component_id="/pub",
        topic="/data",
        type_name="bench/Type",
        direction=Direction.OUT,
        seq=seq,
        timestamp=1234.5,
        scheme=Scheme.ADLP,
        data=payload,
        own_sig=s_x,
        peer_id="/sub",
        peer_hash=digest,
        peer_sig=s_y,
    )
    adlp_sub = LogEntry(
        component_id="/sub",
        topic="/data",
        type_name="bench/Type",
        direction=Direction.IN,
        seq=seq,
        timestamp=1234.5,
        scheme=Scheme.ADLP,
        data_hash=digest,
        own_sig=s_y,
        peer_id="/pub",
        peer_sig=s_x,
    )
    ack = AdlpAck(seq=seq, data_hash=digest, signature=s_y)
    return {
        "message": message_size,
        "base_pub_entry": base_pub.encoded_size(),
        "base_sub_entry": base_sub.encoded_size(),
        "adlp_pub_entry": adlp_pub.encoded_size(),
        "adlp_sub_entry": adlp_sub.encoded_size(),
        "ack": len(ack.encode()),
    }


@pytest.mark.parametrize("type_name", list(PAPER_SIZES))
def test_sizes(benchmark, bench_keys, type_name):
    payload = paper_payloads()[type_name]
    _results[type_name] = _sizes_for(type_name, payload, bench_keys)
    benchmark(lambda: _sizes_for(type_name, payload, bench_keys))


def test_report_table3(benchmark, bench_keys):
    benchmark(lambda: None)
    table = Table(
        "Table III -- message and log entry sizes (bytes)",
        [
            "Type",
            "|D|",
            "Message",
            "Base pub",
            "Base sub",
            "ADLP pub",
            "ADLP sub",
            "ACK",
        ],
    )
    for type_name, size in PAPER_SIZES.items():
        row = _results[type_name]
        table.add_row(
            type_name,
            size,
            row["message"],
            row["base_pub_entry"],
            row["base_sub_entry"],
            row["adlp_pub_entry"],
            row["adlp_sub_entry"],
            row["ack"],
        )
    table.show()
    save_results("table3", _results)

    for type_name, size in PAPER_SIZES.items():
        row = _results[type_name]
        # Shape 1 (paper): message = |D| + 4 + 128, modulo a few envelope
        # tag bytes from our protobuf-style framing.
        assert size + 4 + 128 <= row["message"] <= size + 4 + 128 + 24
        # Shape 2: ADLP entries are larger than base entries on the
        # publisher side (added signatures)...
        assert row["adlp_pub_entry"] > row["base_pub_entry"]
        # Shape 3: ...but the ADLP subscriber entry is a small constant.
        assert row["adlp_sub_entry"] < 450  # paper: ~350 B

    # Shape 4: the subscriber's h(D) entry is size-independent.
    sub_sizes = {r["adlp_sub_entry"] for r in _results.values()}
    assert max(sub_sizes) - min(sub_sizes) <= 8
    # Shape 5: the ACK is ~fixed 160 B + envelope bytes (paper: 160 B).
    for row in _results.values():
        assert 160 <= row["ack"] <= 184
