import threading
import time

import pytest

from repro.util.concurrency import RateLimiter, StoppableThread, wait_for


class TestStoppableThread:
    def test_stop_terminates_polling_target(self):
        started = threading.Event()

        def work():
            started.set()
            while not thread.stopped():
                time.sleep(0.005)

        thread = StoppableThread("worker", target=work)
        thread.start()
        assert started.wait(2.0)
        thread.stop()
        assert not thread.is_alive()

    def test_is_daemon(self):
        thread = StoppableThread("t", target=lambda: None)
        assert thread.daemon

    def test_stop_without_start_is_safe(self):
        thread = StoppableThread("t", target=lambda: None)
        thread.stop()
        assert thread.stopped()


class TestRateLimiter:
    def test_paces_loop(self):
        limiter = RateLimiter(hz=200.0)
        t0 = time.monotonic()
        for _ in range(10):
            limiter.wait()
        elapsed = time.monotonic() - t0
        # 9 full periods of 5ms after the first immediate return
        assert elapsed >= 0.040

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            RateLimiter(0)
        with pytest.raises(ValueError):
            RateLimiter(-1.0)

    def test_slow_body_reanchors_instead_of_bursting(self):
        limiter = RateLimiter(hz=100.0)
        limiter.wait()
        time.sleep(0.05)  # fall behind by ~5 periods
        t0 = time.monotonic()
        limiter.wait()  # should not block (behind)
        first = time.monotonic() - t0
        t0 = time.monotonic()
        limiter.wait()  # should wait ~one period, not burst
        second = time.monotonic() - t0
        assert first < 0.005
        assert second >= 0.005


class TestWaitFor:
    def test_true_immediately(self):
        assert wait_for(lambda: True, timeout=0.1)

    def test_becomes_true(self):
        flag = []
        threading.Timer(0.05, lambda: flag.append(1)).start()
        assert wait_for(lambda: bool(flag), timeout=2.0)

    def test_timeout_returns_false(self):
        t0 = time.monotonic()
        assert not wait_for(lambda: False, timeout=0.1)
        assert time.monotonic() - t0 < 1.0
