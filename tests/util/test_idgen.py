import threading

from repro.util.idgen import SequenceCounter, unique_id


class TestSequenceCounter:
    def test_starts_at_given_value(self):
        counter = SequenceCounter(start=1)
        assert counter.next() == 1
        assert counter.next() == 2

    def test_last_before_any_issue(self):
        assert SequenceCounter(start=5).last == 4

    def test_last_tracks_latest(self):
        counter = SequenceCounter()
        counter.next()
        counter.next()
        assert counter.last == 1

    def test_thread_safety_no_duplicates(self):
        counter = SequenceCounter()
        seen = []
        lock = threading.Lock()

        def worker():
            for _ in range(500):
                value = counter.next()
                with lock:
                    seen.append(value)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == 4000
        assert len(set(seen)) == 4000


class TestUniqueId:
    def test_unique_across_calls(self):
        ids = {unique_id() for _ in range(100)}
        assert len(ids) == 100

    def test_prefix(self):
        assert unique_id("node").startswith("node_")
