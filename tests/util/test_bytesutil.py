import pytest
from hypothesis import given, strategies as st

from repro.util.bytesutil import (
    byte_length,
    hexdump,
    human_size,
    int_from_bytes,
    int_to_bytes,
)


class TestByteLength:
    def test_zero_occupies_one_byte(self):
        assert byte_length(0) == 1

    def test_boundaries(self):
        assert byte_length(255) == 1
        assert byte_length(256) == 2
        assert byte_length(65535) == 2
        assert byte_length(65536) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            byte_length(-1)


class TestIntBytes:
    def test_roundtrip_simple(self):
        assert int_from_bytes(int_to_bytes(123456789)) == 123456789

    def test_fixed_length_padding(self):
        assert int_to_bytes(1, length=4) == b"\x00\x00\x00\x01"

    def test_overflow_on_short_length(self):
        with pytest.raises(OverflowError):
            int_to_bytes(256, length=1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            int_to_bytes(-5)

    @given(st.integers(min_value=0, max_value=1 << 256))
    def test_roundtrip_property(self, n):
        assert int_from_bytes(int_to_bytes(n)) == n

    @given(st.binary(min_size=1, max_size=64))
    def test_big_endian_matches_python(self, data):
        assert int_from_bytes(data) == int.from_bytes(data, "big")


class TestHexdump:
    def test_contains_offsets_and_ascii(self):
        dump = hexdump(b"hello world, this is a hexdump test!")
        assert "00000000" in dump
        assert "hello world" in dump
        assert "00000010" in dump  # second line for >16 bytes

    def test_nonprintables_become_dots(self):
        dump = hexdump(b"\x00\x01abc")
        assert "..abc" in dump

    def test_empty(self):
        assert hexdump(b"") == ""


class TestHumanSize:
    def test_bytes(self):
        assert human_size(512) == "512 B"

    def test_kib(self):
        assert human_size(900 * 1024) == "900.0 KiB"

    def test_mib(self):
        assert human_size(5 * 1024 * 1024) == "5.0 MiB"
