import time

import pytest

from repro.util.clock import SimulatedClock, SkewedClock, SystemClock


class TestSystemClock:
    def test_tracks_wall_time(self):
        clock = SystemClock()
        assert abs(clock.now() - time.time()) < 0.5

    def test_monotone_nondecreasing(self):
        clock = SystemClock()
        a = clock.now()
        b = clock.now()
        assert b >= a


class TestSimulatedClock:
    def test_starts_at_given_time(self):
        assert SimulatedClock(start=42.0).now() == 42.0

    def test_advance(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == 2.0

    def test_sleep_advances_instead_of_blocking(self):
        clock = SimulatedClock()
        t0 = time.monotonic()
        clock.sleep(100.0)
        assert time.monotonic() - t0 < 1.0
        assert clock.now() == 100.0

    def test_cannot_go_backwards(self):
        clock = SimulatedClock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.set(5.0)

    def test_set_forward(self):
        clock = SimulatedClock()
        clock.set(7.0)
        assert clock.now() == 7.0


class TestSkewedClock:
    def test_offset(self):
        base = SimulatedClock(start=100.0)
        skewed = SkewedClock(base, offset=-30.0)
        assert skewed.now() == 70.0

    def test_scale(self):
        base = SimulatedClock(start=10.0)
        skewed = SkewedClock(base, scale=2.0)
        assert skewed.now() == 20.0

    def test_sleep_delegates_to_base(self):
        base = SimulatedClock()
        skewed = SkewedClock(base, offset=5.0)
        skewed.sleep(3.0)
        assert base.now() == 3.0
        assert skewed.now() == 8.0
