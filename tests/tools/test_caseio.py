import os

import pytest

from repro.errors import LogIntegrityError
from repro.tools.caseio import export_case, load_case

from tests.helpers import run_scenario


@pytest.fixture()
def case_dir(tmp_path, keypool):
    result = run_scenario(keypool, publications=3)
    path = str(tmp_path / "case")
    export_case(result.server, path)
    return path, result


class TestExportLoad:
    def test_roundtrip_preserves_entries(self, case_dir):
        path, result = case_dir
        bundle = load_case(path)
        assert len(bundle.server) == len(result.server)
        original = [e.encode() for e in result.server.entries()]
        restored = [e.encode() for e in bundle.server.entries()]
        assert original == restored

    def test_roundtrip_preserves_keys(self, case_dir):
        path, result = case_dir
        bundle = load_case(path)
        for component in result.server.components():
            assert bundle.server.public_key(component) == result.server.public_key(
                component
            )

    def test_merkle_root_matches(self, case_dir):
        path, result = case_dir
        bundle = load_case(path)
        assert bundle.server.merkle_root() == result.server.merkle_root()

    def test_manifest_written(self, case_dir):
        path, _ = case_dir
        manifest = open(os.path.join(path, "MANIFEST")).read()
        assert "merkle_root:" in manifest and "entries:" in manifest

    def test_loaded_case_is_auditable(self, case_dir):
        path, _ = case_dir
        bundle = load_case(path)
        from repro.audit import Auditor

        report = Auditor.for_server(bundle.server).audit_server(bundle.server)
        assert report.flagged_components() == []
        assert len(report.valid_entries()) == 6

    def test_double_export_rejected(self, case_dir):
        path, result = case_dir
        with pytest.raises(FileExistsError):
            export_case(result.server, path)


class TestTamperDetection:
    def test_modified_entries_detected(self, case_dir):
        path, _ = case_dir
        entries_path = os.path.join(path, "entries.log")
        data = bytearray(open(entries_path, "rb").read())
        data[len(data) // 2] ^= 0xFF
        open(entries_path, "wb").write(bytes(data))
        with pytest.raises(LogIntegrityError):
            load_case(path)

    def test_missing_entries_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_case(str(tmp_path))

    def test_manifest_mismatch_detected(self, case_dir, tmp_path, keypool):
        # Replace entries.log wholesale with a different (self-consistent)
        # chain; the MANIFEST's Merkle commitment must catch it.
        path, _ = case_dir
        other = run_scenario(keypool, publications=1)
        other_dir = str(tmp_path / "other")
        export_case(other.server, other_dir)
        os.replace(
            os.path.join(other_dir, "entries.log"),
            os.path.join(path, "entries.log"),
        )
        with pytest.raises(LogIntegrityError, match="MANIFEST"):
            load_case(path)
