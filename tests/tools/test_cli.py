import pytest

from repro.adversary import SubscriberBehavior
from repro.adversary.behaviors import flip_first_byte
from repro.tools.caseio import export_case
from repro.tools.cli import main

from tests.helpers import run_scenario


@pytest.fixture()
def clean_case(tmp_path, keypool):
    result = run_scenario(keypool, publications=3)
    path = str(tmp_path / "clean")
    export_case(result.server, path)
    return path


@pytest.fixture()
def dirty_case(tmp_path, keypool):
    result = run_scenario(
        keypool,
        subscriber_behaviors=[SubscriberBehavior(falsify=flip_first_byte)],
        publications=2,
    )
    path = str(tmp_path / "dirty")
    export_case(result.server, path)
    return path


class TestVerify:
    def test_intact_case(self, clean_case, capsys):
        assert main(["verify", clean_case]) == 0
        out = capsys.readouterr().out
        assert "INTACT" in out and "merkle root" in out

    def test_tampered_case(self, clean_case, capsys):
        import os

        entries = os.path.join(clean_case, "entries.log")
        data = bytearray(open(entries, "rb").read())
        data[-1] ^= 0x01
        open(entries, "wb").write(bytes(data))
        assert main(["verify", clean_case]) == 2
        assert "TAMPERED" in capsys.readouterr().out


class TestInspect:
    def test_lists_entries(self, clean_case, capsys):
        assert main(["inspect", clean_case]) == 0
        out = capsys.readouterr().out
        assert "/pub" in out and "/sub0" in out and "seq=1" in out

    def test_component_filter(self, clean_case, capsys):
        assert main(["inspect", clean_case, "--component", "/pub"]) == 0
        out = capsys.readouterr().out
        assert "/pub" in out
        assert "\n" in out
        assert all("/sub0 " not in line for line in out.splitlines())

    def test_limit(self, clean_case, capsys):
        assert main(["inspect", clean_case, "--limit", "1"]) == 0
        assert "more" in capsys.readouterr().out


class TestAudit:
    def test_clean_case_exit_zero(self, clean_case, capsys):
        assert main(["audit", clean_case, "--publisher", "/t=/pub"]) == 0
        assert "FLAGGED" not in capsys.readouterr().out

    def test_dirty_case_exit_one(self, dirty_case, capsys):
        assert main(["audit", dirty_case, "--publisher", "/t=/pub"]) == 1
        out = capsys.readouterr().out
        assert "FLAGGED" in out and "/sub0" in out

    def test_bad_publisher_syntax(self, clean_case):
        with pytest.raises(SystemExit):
            main(["audit", clean_case, "--publisher", "nonsense"])


class TestTrace:
    def test_traces_known_item(self, clean_case, capsys):
        assert main(["trace", clean_case, "/t", "1"]) == 0
        out = capsys.readouterr().out
        assert "lineage of /t#1" in out and "/pub" in out

    def test_unknown_item(self, clean_case, capsys):
        assert main(["trace", clean_case, "/t", "999"]) == 2
        assert "no valid entry" in capsys.readouterr().out
