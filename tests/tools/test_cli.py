import os

import pytest

from repro.adversary import SubscriberBehavior
from repro.adversary.behaviors import flip_first_byte
from repro.core import DurableLogStore, LogServer
from repro.tools.caseio import export_case
from repro.tools.cli import main

from tests.helpers import run_scenario


@pytest.fixture()
def clean_case(tmp_path, keypool):
    result = run_scenario(keypool, publications=3)
    path = str(tmp_path / "clean")
    export_case(result.server, path)
    return path


@pytest.fixture()
def dirty_case(tmp_path, keypool):
    result = run_scenario(
        keypool,
        subscriber_behaviors=[SubscriberBehavior(falsify=flip_first_byte)],
        publications=2,
    )
    path = str(tmp_path / "dirty")
    export_case(result.server, path)
    return path


@pytest.fixture()
def durable_store(tmp_path, keypool):
    """A durable store directory holding a clean scenario's entries."""
    result = run_scenario(keypool, publications=3)
    store_dir = str(tmp_path / "store")
    server = LogServer(DurableLogStore(store_dir))
    for component_id, key in result.server.keystore.snapshot().items():
        server.register_key(component_id, key)
    entries = result.server.entries()
    # Checkpoint mid-stream so the store has both a checkpointed prefix and
    # a replayable (tearable) tail.
    for entry in entries[:-2]:
        server.submit(entry)
    server.checkpoint()
    for entry in entries[-2:]:
        server.submit(entry)
    server.close()
    return store_dir


class TestVerify:
    def test_intact_case(self, clean_case, capsys):
        assert main(["verify", clean_case]) == 0
        out = capsys.readouterr().out
        assert "INTACT" in out and "merkle root" in out

    def test_tampered_case(self, clean_case, capsys):
        import os

        entries = os.path.join(clean_case, "entries.log")
        data = bytearray(open(entries, "rb").read())
        data[-1] ^= 0x01
        open(entries, "wb").write(bytes(data))
        assert main(["verify", clean_case]) == 2
        assert "TAMPERED" in capsys.readouterr().out


class TestInspect:
    def test_lists_entries(self, clean_case, capsys):
        assert main(["inspect", clean_case]) == 0
        out = capsys.readouterr().out
        assert "/pub" in out and "/sub0" in out and "seq=1" in out

    def test_component_filter(self, clean_case, capsys):
        assert main(["inspect", clean_case, "--component", "/pub"]) == 0
        out = capsys.readouterr().out
        assert "/pub" in out
        assert "\n" in out
        assert all("/sub0 " not in line for line in out.splitlines())

    def test_limit(self, clean_case, capsys):
        assert main(["inspect", clean_case, "--limit", "1"]) == 0
        assert "more" in capsys.readouterr().out


class TestAudit:
    def test_clean_case_exit_zero(self, clean_case, capsys):
        assert main(["audit", clean_case, "--publisher", "/t=/pub"]) == 0
        assert "FLAGGED" not in capsys.readouterr().out

    def test_dirty_case_exit_one(self, dirty_case, capsys):
        assert main(["audit", dirty_case, "--publisher", "/t=/pub"]) == 1
        out = capsys.readouterr().out
        assert "FLAGGED" in out and "/sub0" in out

    def test_bad_publisher_syntax(self, clean_case):
        with pytest.raises(SystemExit):
            main(["audit", clean_case, "--publisher", "nonsense"])


class TestRecover:
    def test_recover_reports_store_state(self, durable_store, capsys):
        assert main(["recover", durable_store]) == 0
        out = capsys.readouterr().out
        assert "recovered" in out
        assert "entries:" in out and "chain head:" in out
        assert "from checkpoint:" in out

    def test_recover_reports_torn_tail(self, durable_store, capsys):
        from repro.storage.durable_store import WAL_SUBDIR
        from repro.storage.wal import segment_paths

        wal_path = segment_paths(os.path.join(durable_store, WAL_SUBDIR))[-1][1]
        with open(wal_path, "r+b") as f:
            f.truncate(os.path.getsize(wal_path) - 4)
        assert main(["recover", durable_store]) == 0
        out = capsys.readouterr().out
        assert "torn tail bytes:" in out
        assert "torn tail bytes:  0" not in out

    def test_recover_refuses_evidence_loss(self, durable_store, capsys):
        from repro.storage.durable_store import WAL_SUBDIR
        from repro.storage.wal import segment_paths

        # The checkpoint promises entries; the WAL is gone.
        for _, path in segment_paths(os.path.join(durable_store, WAL_SUBDIR)):
            os.remove(path)
        assert main(["recover", durable_store]) == 2
        assert "TAMPERED" in capsys.readouterr().out


class TestStoreSource:
    """verify/inspect/audit accept --store as an alternative to a case."""

    def test_verify_store(self, durable_store, capsys):
        assert main(["verify", "--store", durable_store]) == 0
        out = capsys.readouterr().out
        assert "INTACT" in out and durable_store in out

    def test_verify_tampered_store(self, durable_store, capsys):
        from repro.storage.durable_store import WAL_SUBDIR
        from repro.storage.wal import SEGMENT_HEADER_SIZE, segment_paths

        wal_path = segment_paths(os.path.join(durable_store, WAL_SUBDIR))[0][1]
        with open(wal_path, "r+b") as f:
            f.seek(SEGMENT_HEADER_SIZE + 7)
            byte = f.read(1)
            f.seek(SEGMENT_HEADER_SIZE + 7)
            f.write(bytes([byte[0] ^ 0x01]))
        assert main(["verify", "--store", durable_store]) == 2
        assert "TAMPERED" in capsys.readouterr().out

    def test_inspect_store(self, durable_store, capsys):
        assert main(["inspect", "--store", durable_store]) == 0
        out = capsys.readouterr().out
        assert "/pub" in out and "seq=1" in out

    def test_audit_store(self, durable_store, capsys):
        assert (
            main(["audit", "--store", durable_store, "--publisher", "/t=/pub"])
            == 0
        )
        assert "FLAGGED" not in capsys.readouterr().out

    def test_both_sources_rejected(self, clean_case, durable_store):
        with pytest.raises(SystemExit):
            main(["verify", clean_case, "--store", durable_store])

    def test_no_source_rejected(self):
        with pytest.raises(SystemExit):
            main(["verify"])

    def test_missing_store_directory_rejected(self, tmp_path):
        """A typo'd path must error out, not materialize an empty store
        that then verifies as trivially intact."""
        ghost = str(tmp_path / "no-such-store")
        with pytest.raises(SystemExit):
            main(["verify", "--store", ghost])
        with pytest.raises(SystemExit):
            main(["recover", ghost])
        assert not os.path.exists(ghost)


class TestTrace:
    def test_traces_known_item(self, clean_case, capsys):
        assert main(["trace", clean_case, "/t", "1"]) == 0
        out = capsys.readouterr().out
        assert "lineage of /t#1" in out and "/pub" in out

    def test_unknown_item(self, clean_case, capsys):
        assert main(["trace", clean_case, "/t", "999"]) == 2
        assert "no valid entry" in capsys.readouterr().out


@pytest.fixture()
def replica_endpoints():
    from repro.core import LogServerEndpoint

    servers = [LogServer() for _ in range(3)]
    endpoints = [LogServerEndpoint(s) for s in servers]
    yield servers, endpoints
    for endpoint in endpoints:
        endpoint.close()


def _addr(endpoint) -> str:
    return "%s:%d" % (endpoint.address[1], endpoint.address[2])


def _feed_replicas(servers, keypool, count=4, rogue=None):
    from repro.core.entries import Direction, LogEntry, Scheme

    for server in servers:
        server.register_key("/p", keypool[0].public)
    for i in range(count):
        record = LogEntry(
            component_id="/p", topic="/t", type_name="std/String",
            direction=Direction.OUT, seq=i, scheme=Scheme.ADLP,
            data=b"payload-%04d" % i,
        ).encode()
        for index, server in enumerate(servers):
            if index == rogue and i == 1:
                server.submit(
                    LogEntry(
                        component_id="/p", topic="/t", type_name="std/String",
                        direction=Direction.OUT, seq=99, scheme=Scheme.ADLP,
                        data=b"substituted",
                    ).encode()
                )
            else:
                server.submit(record)


class TestHealthCommand:
    def test_healthy_set_exits_zero(self, replica_endpoints, keypool, capsys):
        servers, endpoints = replica_endpoints
        _feed_replicas(servers, keypool)
        assert main(["health"] + [_addr(e) for e in endpoints]) == 0
        out = capsys.readouterr().out
        assert out.count("entries=4") == 3
        assert "UNREACHABLE" not in out and "DIVERGENCE" not in out
        # No admission controller on these endpoints: no overload line.
        assert "overload:" not in out

    def test_admission_counters_reported(self, keypool, capsys):
        from repro.core import LogServerEndpoint
        from repro.resilience.admission import (
            AdmissionConfig,
            AdmissionController,
        )

        server = LogServer()
        admission = AdmissionController(
            AdmissionConfig(high_watermark=4, low_watermark=1)
        )
        endpoint = LogServerEndpoint(server, admission=admission)
        try:
            _feed_replicas([server], keypool)
            admission.force_admit(6)  # latch BUSY; leaves depth visible
            assert main(["health", _addr(endpoint)]) == 0
        finally:
            endpoint.close()
        out = capsys.readouterr().out
        assert "overload:" in out
        assert "depth=6" in out and "peak=6" in out

    def test_unreachable_replica_exits_one(self, replica_endpoints, keypool, capsys):
        servers, endpoints = replica_endpoints
        _feed_replicas(servers, keypool)
        endpoints[1].close()
        assert (
            main(["health", "--timeout", "0.5"] + [_addr(e) for e in endpoints])
            == 1
        )
        out = capsys.readouterr().out
        assert "UNREACHABLE" in out
        assert out.count("entries=4") == 2

    def test_divergence_exits_two_with_roots(
        self, replica_endpoints, keypool, capsys
    ):
        servers, endpoints = replica_endpoints
        _feed_replicas(servers, keypool, rogue=2)
        assert main(["health"] + [_addr(e) for e in endpoints]) == 2
        out = capsys.readouterr().out
        assert "DIVERGENCE at 4 entries" in out

    def test_malformed_address_rejected(self):
        with pytest.raises(SystemExit, match="HOST:PORT"):
            main(["health", "localhost"])
        with pytest.raises(SystemExit, match="HOST:PORT"):
            main(["health", "localhost:notaport"])


class TestReplicasCommand:
    def test_healthy_set_reports_quorum_met(
        self, replica_endpoints, keypool, capsys
    ):
        servers, endpoints = replica_endpoints
        _feed_replicas(servers, keypool)
        assert main(["replicas"] + [_addr(e) for e in endpoints]) == 0
        out = capsys.readouterr().out
        assert "3/3 healthy" in out and "MET" in out
        assert out.count("breaker=closed") == 3

    def test_no_quorum_exits_one(self, replica_endpoints, keypool, capsys):
        servers, endpoints = replica_endpoints
        _feed_replicas(servers, keypool)
        endpoints[0].close()
        endpoints[1].close()
        assert main(["replicas"] + [_addr(e) for e in endpoints]) == 1
        out = capsys.readouterr().out
        assert "NOT MET" in out
        assert "UNREACHABLE" in out

    def test_divergent_minority_exits_two(
        self, replica_endpoints, keypool, capsys
    ):
        servers, endpoints = replica_endpoints
        _feed_replicas(servers, keypool, rogue=2)
        assert main(["replicas"] + [_addr(e) for e in endpoints]) == 2
        out = capsys.readouterr().out
        assert "DIVERGENCE" in out
        assert "breaker=open" in out  # the rogue was quarantined

    def test_audit_flag_runs_replica_set_audit(
        self, replica_endpoints, keypool, capsys
    ):
        servers, endpoints = replica_endpoints
        _feed_replicas(servers, keypool)
        assert main(["replicas", "--audit"] + [_addr(e) for e in endpoints]) == 0
        out = capsys.readouterr().out
        assert "audited replica-" in out
        assert "common prefix 4" in out


@pytest.fixture()
def forked_endpoints(keypool):
    """An equivocating logger's two faces behind two endpoints, plus the
    logger's public key written the way ``--key`` reads it."""
    from repro.adversary import ForkingLogServer, tamper_timestamp
    from repro.core import LogServerEndpoint
    from repro.core.entries import Direction, LogEntry, Scheme

    fork = ForkingLogServer(
        keypool[0].private, log_id="cli-fork", fork_at=2,
        mutate=tamper_timestamp,
    )
    for i in range(4):
        fork.submit(
            LogEntry(
                component_id="/p", topic="/t", type_name="std/String",
                direction=Direction.OUT, seq=i, scheme=Scheme.ADLP,
                data=b"payload-%04d" % i,
            ).encode()
        )
    endpoints = [
        LogServerEndpoint(fork.face(view)) for view in ("honest", "forked")
    ]
    yield fork, endpoints
    for endpoint in endpoints:
        endpoint.close()
    fork.close()


@pytest.fixture()
def logger_key_file(tmp_path, keypool):
    path = tmp_path / "logger.pub"
    path.write_bytes(keypool[0].public.to_bytes())
    return str(path)


class TestSthCommand:
    def test_consistent_signed_heads_exit_zero(
        self, replica_endpoints, keypool, logger_key_file, capsys
    ):
        servers, endpoints = replica_endpoints
        for server in servers:
            server.attach_signer(keypool[0].private, log_id="cli-set")
        _feed_replicas(servers, keypool)
        args = [_addr(e) for e in endpoints] + ["--key", logger_key_file]
        assert main(["sth"] + args) == 0
        out = capsys.readouterr().out
        assert out.count("sig=OK") == 3
        assert "EQUIVOCATION" not in out

    def test_split_view_is_proven_and_exits_two(
        self, forked_endpoints, logger_key_file, capsys
    ):
        _, endpoints = forked_endpoints
        args = [_addr(e) for e in endpoints] + ["--key", logger_key_file]
        assert main(["sth"] + args) == 2
        out = capsys.readouterr().out
        assert "EQUIVOCATION" in out and "cli-fork" in out

    def test_split_view_without_key_is_not_a_conviction(
        self, forked_endpoints, capsys
    ):
        _, endpoints = forked_endpoints
        assert main(["sth"] + [_addr(e) for e in endpoints]) == 0
        out = capsys.readouterr().out
        assert "sig=unverified" in out
        assert "EQUIVOCATION" not in out

    def test_unsigned_server_reported_unreachable(
        self, replica_endpoints, keypool, capsys
    ):
        servers, endpoints = replica_endpoints
        _feed_replicas(servers, keypool)  # no signer attached
        assert main(["sth", _addr(endpoints[0])]) == 1
        assert "UNREACHABLE" in capsys.readouterr().out

    def test_bad_key_file_rejected(self, tmp_path, replica_endpoints):
        _, endpoints = replica_endpoints
        junk = tmp_path / "junk.pub"
        junk.write_bytes(b"not a key")
        with pytest.raises(SystemExit, match="not a logger public key"):
            main(["sth", _addr(endpoints[0]), "--key", str(junk)])


class TestProofCommand:
    def test_included_record_exits_zero(
        self, replica_endpoints, keypool, logger_key_file, capsys
    ):
        servers, endpoints = replica_endpoints
        servers[0].attach_signer(keypool[0].private, log_id="cli-proof")
        _feed_replicas(servers, keypool)
        assert (
            main(["proof", _addr(endpoints[0]), "2", "--key", logger_key_file])
            == 0
        )
        out = capsys.readouterr().out
        assert "INCLUDED" in out and "signature verified" in out

    def test_index_beyond_head_exits_two(
        self, replica_endpoints, keypool, capsys
    ):
        servers, endpoints = replica_endpoints
        servers[0].attach_signer(keypool[0].private)
        _feed_replicas(servers, keypool)
        assert main(["proof", _addr(endpoints[0]), "99"]) == 2
        assert "beyond the signed head" in capsys.readouterr().out

    def test_wrong_identity_key_exits_two(
        self, replica_endpoints, keypool, tmp_path, capsys
    ):
        servers, endpoints = replica_endpoints
        servers[0].attach_signer(keypool[0].private)
        _feed_replicas(servers, keypool)
        other = tmp_path / "other.pub"
        other.write_bytes(keypool[1].public.to_bytes())
        assert (
            main(["proof", _addr(endpoints[0]), "0", "--key", str(other)]) == 2
        )
        assert "INVALID" in capsys.readouterr().out


class TestReplicasGossip:
    def test_forked_logger_quarantined_with_evidence(
        self, forked_endpoints, logger_key_file, capsys
    ):
        _, endpoints = forked_endpoints
        args = [_addr(e) for e in endpoints] + [
            "--quorum", "1", "--key", logger_key_file,
        ]
        assert main(["replicas"] + args) == 2
        out = capsys.readouterr().out
        assert "EQUIVOCATION" in out
        assert out.count("breaker=open") == 2
