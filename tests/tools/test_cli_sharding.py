"""CLI over sharded durable layouts: verify/inspect/audit/recover."""

import os

import pytest

from repro.sharding import ShardedLogServer, shard_dirname
from repro.storage.durable_store import CHECKPOINT_SUBDIR, WAL_SUBDIR
from repro.storage.wal import segment_paths
from repro.tools.cli import main

from tests.sharding.workload import (
    TOPICS,
    forged_out,
    honest_pair,
    register_pair,
)

SHARDS = 3


def build_layout(tmp_path, keypool, dirty=False):
    store_dir = str(tmp_path / "sharded-store")
    server = ShardedLogServer(shards=SHARDS, store_dir=store_dir, fsync="never")
    register_pair(server, keypool)
    for topic in TOPICS:
        for seq in (1, 2):
            pub, sub = honest_pair(keypool, topic, seq, b"cli-%d" % seq)
            server.submit(pub.encode())
            server.submit(sub.encode())
    if dirty:
        server.submit(forged_out(keypool, "/a", 3, b"lie").encode())
    # a checkpoint per shard, so later damage cannot hide as a torn tail
    server.checkpoint()
    server.close()
    return store_dir


def flip_checkpoint_byte(store_dir, shard):
    """Damage one shard's newest checkpoint: lenient recovery still
    reopens (WAL replay), but the strict tamper check fails."""
    ckpt_dir = os.path.join(store_dir, shard_dirname(shard), CHECKPOINT_SUBDIR)
    path = os.path.join(ckpt_dir, sorted(os.listdir(ckpt_dir))[-1])
    with open(path, "r+b") as f:
        f.seek(30)
        byte = f.read(1)
        f.seek(30)
        f.write(bytes([byte[0] ^ 0x01]))


def drop_wal(store_dir, shard):
    """Delete one shard's WAL outright: its checkpoint promises entries
    the log no longer holds, so even lenient recovery refuses."""
    wal_dir = os.path.join(store_dir, shard_dirname(shard), WAL_SUBDIR)
    for _, path in segment_paths(wal_dir):
        os.remove(path)


@pytest.fixture()
def layout(tmp_path, keypool):
    return build_layout(tmp_path, keypool)


class TestVerify:
    def test_intact_sharded_layout(self, layout, capsys):
        assert main(["verify", "--store", layout, "--shards", str(SHARDS)]) == 0
        out = capsys.readouterr().out
        assert "INTACT" in out
        assert "shards:      3" in out
        assert "set root:" in out
        for shard in range(SHARDS):
            assert f"shard   {shard}:" in out

    def test_tampered_shard_fails_verify(self, layout, capsys):
        flip_checkpoint_byte(layout, 1)
        assert main(["verify", "--store", layout, "--shards", str(SHARDS)]) == 2
        out = capsys.readouterr().out
        assert "TAMPERED" in out and "shard 1" in out

    def test_wrong_shard_count_refused(self, layout, capsys):
        assert main(["verify", "--store", layout, "--shards", "4"]) == 2
        assert "TAMPERED" in capsys.readouterr().out

    def test_shards_without_store_rejected(self, layout):
        with pytest.raises(SystemExit):
            main(["verify", layout, "--shards", str(SHARDS)])

    def test_missing_store_directory_rejected(self, tmp_path):
        ghost = str(tmp_path / "no-such-store")
        with pytest.raises(SystemExit):
            main(["verify", "--store", ghost, "--shards", str(SHARDS)])
        assert not os.path.exists(ghost)


class TestInspect:
    def test_lists_every_shard_by_default(self, layout, capsys):
        assert main(["inspect", "--store", layout, "--shards", str(SHARDS)]) == 0
        out = capsys.readouterr().out
        for topic in TOPICS:
            assert topic in out

    def test_shard_filter_lists_one_shard(self, layout, capsys):
        server = ShardedLogServer(shards=SHARDS, store_dir=layout, fsync="never")
        expected = {e.topic for e in server.entries(shard=0)}
        server.close()
        assert (
            main(
                ["inspect", "--store", layout, "--shards", str(SHARDS),
                 "--shard", "0"]
            )
            == 0
        )
        out = capsys.readouterr().out
        listed = {line.split()[3] for line in out.splitlines() if line.strip()}
        assert listed == expected

    def test_evidence_loss_at_open_is_reported_not_raised(self, layout, capsys):
        # Dropping a checkpointed shard's WAL makes store-open itself fail
        # during journal replay; the CLI must report it, not traceback.
        drop_wal(layout, 1)
        assert main(["inspect", "--store", layout, "--shards", str(SHARDS)]) == 2
        out = capsys.readouterr().out
        assert "TAMPERED" in out and "checkpointed evidence" in out

    def test_shard_flag_requires_sharded_source(self, tmp_path, keypool):
        from repro.core import DurableLogStore, LogServer

        store_dir = str(tmp_path / "plain")
        server = LogServer(DurableLogStore(store_dir, fsync="never"))
        pub, _ = honest_pair(keypool, "/a", 1, b"x")
        server.submit(pub.encode())
        server.close()
        with pytest.raises(SystemExit):
            main(["inspect", "--store", store_dir, "--shard", "0"])


class TestAudit:
    def test_clean_layout_exits_zero(self, layout, capsys):
        assert main(["audit", "--store", layout, "--shards", str(SHARDS)]) == 0
        out = capsys.readouterr().out
        assert out.count("intact") == SHARDS
        assert "FLAGGED" not in out

    def test_workers_flag_accepted(self, layout, capsys):
        assert (
            main(
                ["audit", "--store", layout, "--shards", str(SHARDS),
                 "--workers", "2"]
            )
            == 0
        )

    def test_forged_entry_exits_one(self, tmp_path, keypool, capsys):
        layout = build_layout(tmp_path, keypool, dirty=True)
        assert main(["audit", "--store", layout, "--shards", str(SHARDS)]) == 1
        assert "/pub" in capsys.readouterr().out

    def test_evidence_loss_at_open_is_reported_not_raised(self, layout, capsys):
        drop_wal(layout, 1)
        assert main(["audit", "--store", layout, "--shards", str(SHARDS)]) == 2
        out = capsys.readouterr().out
        assert "TAMPERED" in out and "checkpointed evidence" in out

    def test_tampered_shard_exits_two_and_is_named(self, layout, capsys):
        flip_checkpoint_byte(layout, 2)
        assert main(["audit", "--store", layout, "--shards", str(SHARDS)]) == 2
        out = capsys.readouterr().out
        assert "shard 2: TAMPERED" in out
        assert "tampered shards: [2]" in out
        # the intact shards still classified
        assert out.count("intact") == SHARDS - 1


class TestRecover:
    def test_recover_all_shards(self, layout, capsys):
        assert main(["recover", layout, "--shards", str(SHARDS)]) == 0
        out = capsys.readouterr().out
        assert out.count("recovered") == SHARDS
        for shard in range(SHARDS):
            assert f"shard {shard}: recovered" in out

    def test_recover_single_shard(self, layout, capsys):
        assert main(["recover", layout, "--shard", "1"]) == 0
        out = capsys.readouterr().out
        assert out.count("recovered") == 1
        assert "shard 1: recovered" in out

    def test_recover_reports_damaged_shard(self, layout, capsys):
        drop_wal(layout, 0)
        assert main(["recover", layout, "--shards", str(SHARDS)]) == 2
        out = capsys.readouterr().out
        assert "shard 0: TAMPERED" in out
        assert out.count("recovered") == SHARDS - 1
