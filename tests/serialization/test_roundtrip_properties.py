"""Property-based roundtrip testing of the wire schema."""

import enum

from hypothesis import given, strategies as st

from repro.serialization import (
    WireMessage,
    boolean,
    bytes_,
    double,
    repeated,
    sint64,
    string,
    uint64,
)


class Kind(enum.IntEnum):
    A = 0
    B = 1
    C = 2


class Record(WireMessage):
    u = uint64(1)
    s = sint64(2)
    d = double(3)
    b = boolean(4)
    text = string(5)
    blob = bytes_(6)
    items = repeated(sint64(7))
    names = repeated(string(8))


records = st.builds(
    Record,
    u=st.integers(min_value=0, max_value=(1 << 64) - 1),
    s=st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1),
    d=st.floats(allow_nan=False, allow_infinity=True),
    b=st.booleans(),
    text=st.text(max_size=60),
    blob=st.binary(max_size=60),
    items=st.lists(
        st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1), max_size=10
    ),
    names=st.lists(st.text(max_size=10), max_size=10),
)


@given(records)
def test_encode_decode_roundtrip(record):
    assert Record.decode(record.encode()) == record


@given(records)
def test_encoding_is_deterministic(record):
    assert record.encode() == record.encode()


@given(records, records)
def test_distinct_messages_distinct_encodings(a, b):
    # The encoding must be injective over non-default-equal messages.
    if a != b:
        assert a.encode() != b.encode()


@given(st.binary(max_size=40))
def test_bytes_payload_identity(blob):
    assert Record.decode(Record(blob=blob).encode()).blob == blob
