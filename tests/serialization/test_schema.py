import enum

import pytest

from repro.errors import SchemaError
from repro.serialization import (
    WireMessage,
    boolean,
    bytes_,
    double,
    enum as enum_field,
    message,
    repeated,
    sint64,
    string,
    uint64,
)
from repro.serialization.wire import WireType, encode_tag, encode_varint


class Color(enum.IntEnum):
    RED = 0
    GREEN = 1
    BLUE = 2


class Inner(WireMessage):
    value = uint64(1)
    label = string(2)


class Sample(WireMessage):
    count = uint64(1)
    delta = sint64(2)
    ratio = double(3)
    flag = boolean(4)
    name = string(5)
    blob = bytes_(6)
    color = enum_field(7, Color)
    inner = message(8, Inner)
    tags = repeated(string(9))
    values = repeated(uint64(10))


class TestRoundtrip:
    def test_full_message(self):
        msg = Sample(
            count=7,
            delta=-42,
            ratio=2.5,
            flag=True,
            name="hello",
            blob=b"\x00\x01\x02",
            color=Color.BLUE,
            inner=Inner(value=5, label="in"),
            tags=["a", "b"],
            values=[1, 2, 3],
        )
        assert Sample.decode(msg.encode()) == msg

    def test_empty_message_is_zero_bytes(self):
        assert Sample().encode() == b""
        assert Sample.decode(b"") == Sample()

    def test_defaults_omitted_from_wire(self):
        # only non-default fields cost bytes (proto3 semantics)
        small = Sample(count=1).encode()
        assert len(small) == 2  # tag + varint

    def test_default_values_after_decode(self):
        msg = Sample.decode(b"")
        assert msg.count == 0
        assert msg.name == ""
        assert msg.blob == b""
        assert msg.flag is False
        assert msg.color is Color.RED
        assert msg.inner is None
        assert msg.tags == []

    def test_repeated_preserves_defaults_and_order(self):
        msg = Sample(tags=["x", "", "y"], values=[0, 5, 0])
        decoded = Sample.decode(msg.encode())
        assert decoded.tags == ["x", "", "y"]
        assert decoded.values == [0, 5, 0]

    def test_nested_message_roundtrip(self):
        msg = Sample(inner=Inner(value=9))
        assert Sample.decode(msg.encode()).inner.value == 9

    def test_unknown_fields_skipped(self):
        raw = Sample(count=3).encode()
        raw += encode_tag(99, WireType.VARINT) + encode_varint(1234)
        assert Sample.decode(raw).count == 3

    def test_encoded_size(self):
        msg = Sample(name="abc")
        assert msg.encoded_size() == len(msg.encode())


class TestValidation:
    def test_unknown_kwarg_rejected(self):
        with pytest.raises(SchemaError):
            Sample(nope=1)

    def test_uint_range(self):
        with pytest.raises(SchemaError):
            Sample(count=-1)
        with pytest.raises(SchemaError):
            Sample(count=1 << 64)

    def test_string_type_enforced(self):
        with pytest.raises(SchemaError):
            Sample(name=b"bytes")

    def test_bytes_type_enforced(self):
        with pytest.raises(SchemaError):
            Sample(blob="text")

    def test_bytearray_coerced(self):
        msg = Sample(blob=bytearray(b"ok"))
        assert msg.blob == b"ok"

    def test_nested_type_enforced(self):
        with pytest.raises(SchemaError):
            Sample(inner=Sample())

    def test_duplicate_field_numbers_rejected(self):
        with pytest.raises(SchemaError):

            class Bad(WireMessage):
                a = uint64(1)
                b = string(1)

    def test_enum_coercion(self):
        msg = Sample(color=2)
        assert msg.color is Color.BLUE


class TestInheritance:
    def test_subclass_inherits_fields(self):
        class Extended(Sample):
            extra = string(11)

        msg = Extended(count=1, extra="more")
        decoded = Extended.decode(msg.encode())
        assert decoded.count == 1 and decoded.extra == "more"


class TestRepr:
    def test_repr_shows_nondefault_fields(self):
        rep = repr(Sample(count=5, name="x"))
        assert "count=5" in rep and "name='x'" in rep and "delta" not in rep

    def test_repr_truncates_long_bytes(self):
        rep = repr(Sample(blob=b"z" * 100))
        assert "..." in rep
