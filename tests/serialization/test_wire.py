import pytest
from hypothesis import given, strategies as st

from repro.errors import DecodingError
from repro.serialization.wire import (
    WireType,
    decode_double,
    decode_length_delimited,
    decode_tag,
    decode_varint,
    encode_double,
    encode_length_delimited,
    encode_tag,
    encode_varint,
    skip_field,
    zigzag_decode,
    zigzag_encode,
)


class TestVarint:
    @pytest.mark.parametrize(
        "value,encoded",
        [
            (0, b"\x00"),
            (1, b"\x01"),
            (127, b"\x7f"),
            (128, b"\x80\x01"),
            (300, b"\xac\x02"),  # canonical protobuf example
            (1 << 63, b"\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01"),
        ],
    )
    def test_known_encodings(self, value, encoded):
        assert encode_varint(value) == encoded
        assert decode_varint(encoded) == (value, len(encoded))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_rejected(self):
        with pytest.raises(DecodingError):
            decode_varint(b"\x80")

    def test_overlong_rejected(self):
        with pytest.raises(DecodingError):
            decode_varint(b"\xff" * 11)

    def test_decode_at_offset(self):
        data = b"junk" + encode_varint(300)
        assert decode_varint(data, 4) == (300, 6)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_roundtrip(self, value):
        encoded = encode_varint(value)
        assert decode_varint(encoded) == (value, len(encoded))


class TestZigzag:
    @pytest.mark.parametrize(
        "signed,unsigned",
        [(0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4), (2147483647, 4294967294)],
    )
    def test_protobuf_vectors(self, signed, unsigned):
        assert zigzag_encode(signed) == unsigned
        assert zigzag_decode(unsigned) == signed

    @given(st.integers(min_value=-(1 << 62), max_value=(1 << 62) - 1))
    def test_roundtrip(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value


class TestTags:
    def test_roundtrip(self):
        for number in (1, 15, 16, 2047, 100000):
            for wtype in WireType:
                raw = encode_tag(number, wtype)
                assert decode_tag(raw) == (number, wtype, len(raw))

    def test_invalid_field_number(self):
        with pytest.raises(ValueError):
            encode_tag(0, WireType.VARINT)

    def test_unknown_wire_type_rejected(self):
        with pytest.raises(DecodingError):
            decode_tag(encode_varint((1 << 3) | 3))  # wire type 3 unused

    def test_field_number_zero_rejected_on_decode(self):
        with pytest.raises(DecodingError):
            decode_tag(encode_varint(0 << 3 | 0))


class TestLengthDelimited:
    def test_roundtrip(self):
        raw = encode_length_delimited(b"payload")
        assert decode_length_delimited(raw) == (b"payload", len(raw))

    def test_empty_payload(self):
        assert decode_length_delimited(encode_length_delimited(b"")) == (b"", 1)

    def test_truncated_rejected(self):
        with pytest.raises(DecodingError):
            decode_length_delimited(b"\x05abc")


class TestDouble:
    def test_roundtrip(self):
        raw = encode_double(3.14159)
        value, end = decode_double(raw)
        assert value == pytest.approx(3.14159)
        assert end == 8

    def test_truncated(self):
        with pytest.raises(DecodingError):
            decode_double(b"\x00" * 4)


class TestSkipField:
    def test_skips_each_wire_type(self):
        cases = [
            (WireType.VARINT, encode_varint(300)),
            (WireType.I64, b"\x00" * 8),
            (WireType.I32, b"\x00" * 4),
            (WireType.LEN, encode_length_delimited(b"abcdef")),
        ]
        for wtype, body in cases:
            assert skip_field(body + b"rest", 0, wtype) == len(body)
