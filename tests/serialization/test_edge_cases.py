"""Serialization edge cases not covered by the roundtrip suites."""

import enum

import pytest

from repro.errors import DecodingError, SchemaError
from repro.serialization import WireMessage, enum as enum_field, string, uint64
from repro.serialization.wire import WireType, encode_tag, encode_varint


class Mode(enum.IntEnum):
    OFF = 0
    ON = 1


class Config(WireMessage):
    mode = enum_field(1, Mode)
    name = string(2)


class TestEnumDecoding:
    def test_unknown_enum_value_rejected(self):
        raw = encode_tag(1, WireType.VARINT) + encode_varint(99)
        with pytest.raises(DecodingError):
            Config.decode(raw)

    def test_known_value(self):
        raw = encode_tag(1, WireType.VARINT) + encode_varint(1)
        assert Config.decode(raw).mode is Mode.ON


class TestWireTypeMismatch:
    def test_scalar_field_with_wrong_wire_type_rejected(self):
        # field 1 declared VARINT, sent as LEN
        raw = encode_tag(1, WireType.LEN) + encode_varint(2) + b"ab"
        with pytest.raises(DecodingError):
            Config.decode(raw)

    def test_string_field_with_invalid_utf8_rejected(self):
        raw = encode_tag(2, WireType.LEN) + encode_varint(2) + b"\xff\xfe"
        with pytest.raises(DecodingError):
            Config.decode(raw)


class TestLastValueWins:
    def test_duplicate_scalar_field_takes_last(self):
        # proto3 semantics: the last occurrence of a singular field wins
        raw = (
            encode_tag(1, WireType.VARINT)
            + encode_varint(1)
            + encode_tag(1, WireType.VARINT)
            + encode_varint(0)
        )
        assert Config.decode(raw).mode is Mode.OFF


class TestTruncation:
    def test_truncated_mid_message(self):
        full = Config(name="hello").encode()
        with pytest.raises(DecodingError):
            Config.decode(full[:-2])
