"""GossipRelay: pooling, cross-checking, and split-view conviction."""

import pytest

from repro.crypto.merkle import MerkleTree
from repro.errors import LogIntegrityError
from repro.gossip import (
    GossipRelay,
    SignedTreeHead,
    TreeHeadMonitor,
    gossip_round,
    issue_sth,
)
from repro.gossip.evidence import KIND_CONSISTENCY, KIND_FORK


@pytest.fixture()
def signer(keypool):
    return keypool[0].private


def head(signer, entries, root, log_id="log-1", scope=0, chain=None):
    return issue_sth(
        signer, log_id, entries, chain or root, root, scope=scope
    )


class TestObserve:
    def test_fork_detected_across_sources(self, signer):
        relay = GossipRelay("r")
        relay.register_key("log-1", signer.public_key)
        assert relay.observe(head(signer, 5, b"a" * 32), "x") == []
        evidence = relay.observe(head(signer, 5, b"b" * 32), "y")
        assert len(evidence) == 1
        ev = evidence[0]
        assert ev.kind == KIND_FORK
        assert ev.verify(signer.public_key)
        assert set(ev.sources) == {"x", "y"}

    def test_identical_head_is_not_evidence(self, signer):
        relay = GossipRelay("r")
        relay.register_key("log-1", signer.public_key)
        sth = head(signer, 5, b"a" * 32)
        relay.observe(sth)
        assert relay.observe(SignedTreeHead.from_bytes(sth.to_bytes())) == []

    def test_duplicate_conviction_deduped(self, signer):
        relay = GossipRelay("r")
        relay.register_key("log-1", signer.public_key)
        relay.observe(head(signer, 5, b"a" * 32))
        assert relay.observe(head(signer, 5, b"b" * 32))
        assert relay.observe(head(signer, 5, b"b" * 32)) == []
        assert len(relay.evidence()) == 1

    def test_forged_head_dropped_not_convicting(self, signer, keypool):
        relay = GossipRelay("r")
        relay.register_key("log-1", signer.public_key)
        relay.observe(head(signer, 5, b"a" * 32))
        forged = head(keypool[1].private, 5, b"b" * 32)  # wrong key, same log
        assert relay.observe(forged) == []
        assert relay.evidence() == []
        assert relay.stats()["rejected_heads"] == 1

    def test_unverifiable_conflict_convicts_nobody(self, signer):
        # No registered key: the conflicting pair is pooled but produces
        # no evidence -- anyone could have forged one side.
        relay = GossipRelay("r")
        relay.observe(head(signer, 5, b"a" * 32))
        assert relay.observe(head(signer, 5, b"b" * 32)) == []
        assert relay.evidence() == []
        # Registering the key and re-gossiping the same heads convicts.
        relay.register_key("log-1", signer.public_key)
        assert relay.observe(head(signer, 5, b"b" * 32))

    def test_scopes_and_logs_are_independent(self, signer, keypool):
        relay = GossipRelay("r")
        relay.register_key("log-1", signer.public_key)
        relay.register_key("log-2", keypool[1].private.public_key)
        relay.observe(head(signer, 5, b"a" * 32))
        assert relay.observe(head(signer, 5, b"b" * 32, scope=1)) == []
        assert relay.observe(head(keypool[1].private, 5, b"b" * 32, log_id="log-2")) == []

    def test_listener_fires_once_per_evidence(self, signer):
        relay = GossipRelay("r")
        relay.register_key("log-1", signer.public_key)
        seen = []
        relay.add_listener(seen.append)
        relay.observe(head(signer, 5, b"a" * 32))
        relay.observe(head(signer, 5, b"b" * 32))
        relay.observe(head(signer, 5, b"b" * 32))
        assert len(seen) == 1

    def test_history_eviction(self, signer):
        relay = GossipRelay("r", history_limit=4)
        relay.register_key("log-1", signer.public_key)
        for n in range(1, 10):
            relay.observe(head(signer, n, bytes([n]) * 32))
        assert relay.stats()["heads"] == 4
        assert relay.latest("log-1").entries == 9


class TestConsistencyChallenge:
    def test_append_only_growth_passes(self, signer):
        payloads = [b"r%d" % i for i in range(8)]
        tree = MerkleTree(payloads)
        relay = GossipRelay(
            "r",
            consistency_prover=lambda old, new: tree.prove_consistency(
                old.entries, new.entries
            ),
        )
        relay.register_key("log-1", signer.public_key)
        relay.observe(head(signer, 4, tree.root_at(4)))
        assert relay.observe(head(signer, 8, tree.root_at(8))) == []
        assert relay.evidence() == []

    def test_rewritten_history_convicted(self, signer):
        honest = MerkleTree([b"r%d" % i for i in range(8)])
        rewritten = MerkleTree([b"x%d" % i for i in range(8)])
        relay = GossipRelay(
            "r",
            consistency_prover=lambda old, new: rewritten.prove_consistency(
                old.entries, new.entries
            ),
        )
        relay.register_key("log-1", signer.public_key)
        relay.observe(head(signer, 4, honest.root_at(4)))
        evidence = relay.observe(head(signer, 8, rewritten.root_at(8)))
        assert len(evidence) == 1
        assert evidence[0].kind == KIND_CONSISTENCY
        assert evidence[0].verify(signer.public_key)

    def test_refusing_the_challenge_is_evidence(self, signer):
        def refuse(old, new):
            raise RuntimeError("no proof for you")

        relay = GossipRelay("r", consistency_prover=refuse)
        relay.register_key("log-1", signer.public_key)
        relay.observe(head(signer, 4, b"a" * 32))
        evidence = relay.observe(head(signer, 8, b"b" * 32))
        assert len(evidence) == 1
        assert evidence[0].kind == KIND_CONSISTENCY
        assert "failed the consistency challenge" in evidence[0].detail


class TestExchange:
    def test_exchange_unions_pools_and_detects(self, signer):
        a, b = GossipRelay("a"), GossipRelay("b")
        for relay in (a, b):
            relay.register_key("log-1", signer.public_key)
        a.observe(head(signer, 5, b"a" * 32), "group-a")
        b.observe(head(signer, 5, b"b" * 32), "group-b")
        evidence = a.exchange(b)
        assert evidence
        assert a.evidence() and b.evidence()
        assert a.stats()["rounds"] == 1 and b.stats()["rounds"] == 1

    def test_ring_round_bounds_detection(self, signer):
        relays = [GossipRelay(f"n{i}") for i in range(5)]
        for relay in relays:
            relay.register_key("log-1", signer.public_key)
        relays[0].observe(head(signer, 5, b"a" * 32), "east")
        relays[3].observe(head(signer, 5, b"b" * 32), "west")
        rounds = 0
        while not any(r.evidence() for r in relays):
            assert rounds < 3, "ring of 5 must connect within ceil(5/2) rounds"
            gossip_round(relays)
            rounds += 1
        assert rounds <= 3

    def test_single_relay_round_is_a_no_op(self, signer):
        relay = GossipRelay("solo")
        assert gossip_round([relay]) == []
        assert relay.stats()["rounds"] == 0


class TestMonitor:
    def test_caches_newest_verified_head(self, signer):
        monitor = TreeHeadMonitor(signer.public_key)
        tree = MerkleTree([b"r%d" % i for i in range(6)])
        prover = lambda old, new: tree.prove_consistency(old, new)
        monitor.observe(head(signer, 3, tree.root_at(3)), prover)
        monitor.observe(head(signer, 6, tree.root_at(6)), prover)
        assert monitor.verified_head().entries == 6
        # An older (still consistent) head does not regress the cache.
        monitor.observe(head(signer, 3, tree.root_at(3)), prover)
        assert monitor.verified_head().entries == 6

    def test_bad_signature_raises(self, signer, keypool):
        monitor = TreeHeadMonitor(keypool[1].public)
        with pytest.raises(LogIntegrityError):
            monitor.observe(head(signer, 3, b"a" * 32))
        assert monitor.verified_head() is None

    def test_fork_raises_and_records(self, signer):
        monitor = TreeHeadMonitor(signer.public_key)
        monitor.observe(head(signer, 3, b"a" * 32))
        with pytest.raises(LogIntegrityError, match="equivocated"):
            monitor.observe(head(signer, 3, b"b" * 32))
        assert len(monitor.evidence()) == 1
        assert monitor.evidence()[0].verify(signer.public_key)
        # The lying head never enters the cache.
        assert monitor.verified_head().merkle_root == b"a" * 32

    def test_non_append_only_growth_raises(self, signer):
        honest = MerkleTree([b"r%d" % i for i in range(4)])
        rewritten = MerkleTree([b"x%d" % i for i in range(8)])
        monitor = TreeHeadMonitor(signer.public_key)
        monitor.observe(head(signer, 4, honest.root()))
        with pytest.raises(LogIntegrityError, match="append-only"):
            monitor.observe(
                head(signer, 8, rewritten.root()),
                lambda old, new: rewritten.prove_consistency(old, new),
            )
        assert monitor.evidence()[0].kind == KIND_CONSISTENCY
