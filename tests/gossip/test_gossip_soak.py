"""Soak: split-view storm under relay churn.

A fleet of loggers -- most honest, several equivocating -- issues heads
to a mesh of gossip relays that is itself unstable: relays leave and
(re)join between rounds, so no single relay is guaranteed to see both
sides of any fork directly.  The storm must still converge:

- every equivocating logger is convicted, with evidence that verifies
  under its registered key alone;
- no honest logger is ever convicted (zero false positives), even
  though honest heads keep growing throughout the storm;
- evidence spreads: once the churn settles, every surviving relay
  holds a conviction for every liar.

Excluded from tier-1 by the ``soak`` marker; CI runs it in the
non-blocking gossip job.  When ``ADLP_SOAK_LOG_DIR`` is set, a round-by-
round trace is left behind for artifact upload.
"""

from __future__ import annotations

import os

import pytest

from repro.crypto.merkle import MerkleTree
from repro.crypto.keys import generate_keypair
from repro.gossip import GossipRelay, gossip_round, issue_sth

pytestmark = pytest.mark.soak

HONEST_LOGGERS = 6
LYING_LOGGERS = 3
RELAYS = 10
ROUNDS = 40
CHURN_PROBABILITY = 0.3  # per round: one relay leaves, one rejoins


class _HonestLog:
    """An append-only log that signs a fresh head each round."""

    def __init__(self, index, seed):
        self.log_id = f"honest-{index}"
        self.keys = generate_keypair(512, seed=seed)
        self.tree = MerkleTree()
        self.size = 0

    def grow(self, rng):
        for _ in range(rng.randrange(1, 4)):
            self.size += 1
            self.tree.append(b"%s-%06d" % (self.log_id.encode(), self.size))

    def head(self):
        return issue_sth(
            self.keys.private, self.log_id, self.size,
            self.tree.root(), self.tree.root(), timestamp=float(self.size),
        )


class _LyingLog(_HonestLog):
    """Maintains two divergent views and serves each to half the mesh."""

    def __init__(self, index, seed):
        super().__init__(index, seed)
        self.log_id = f"liar-{index}"
        self.forked = MerkleTree()

    def grow(self, rng):
        for _ in range(rng.randrange(1, 4)):
            self.size += 1
            payload = b"%s-%06d" % (self.log_id.encode(), self.size)
            self.tree.append(payload)
            self.forked.append(payload + b"-tampered")

    def head_for(self, audience):
        tree = self.tree if audience == 0 else self.forked
        return issue_sth(
            self.keys.private, self.log_id, self.size,
            tree.root(), tree.root(), timestamp=float(self.size),
        )


def test_split_view_storm_under_churn(rng, tmp_path):
    honest = [_HonestLog(i, seed=1000 + i) for i in range(HONEST_LOGGERS)]
    liars = [_LyingLog(i, seed=2000 + i) for i in range(LYING_LOGGERS)]
    loggers = honest + liars

    def make_relay(index):
        relay = GossipRelay(f"relay-{index}")
        for log in loggers:
            relay.register_key(log.log_id, log.keys.public)
        return relay

    active = [make_relay(i) for i in range(RELAYS)]
    benched = []
    trace = []

    for round_index in range(ROUNDS):
        for log in loggers:
            log.grow(rng)
        # Each logger publishes to a random subset of the active mesh;
        # liars split that subset into two audiences.
        for log in honest:
            for relay in rng.sample(active, max(2, len(active) // 3)):
                relay.observe(log.head(), source=relay.name)
        for log in liars:
            targets = rng.sample(active, max(2, len(active) // 2))
            half = len(targets) // 2
            for audience, group in enumerate((targets[:half], targets[half:])):
                for relay in group:
                    relay.observe(log.head_for(audience), source=relay.name)
        gossip_round(active)
        # Churn: a relay leaves (keeping its pool) and an old one rejoins.
        if rng.random() < CHURN_PROBABILITY and len(active) > 3:
            benched.append(active.pop(rng.randrange(len(active))))
        if benched and rng.random() < CHURN_PROBABILITY:
            active.append(benched.pop(0))
        convicted = {
            ev.log_id for relay in active + benched for ev in relay.evidence()
        }
        trace.append(
            f"round {round_index}: relays={len(active)} "
            f"convicted={sorted(convicted)}"
        )

    # Settle: everyone rejoins and the mesh runs quiet closing rounds.
    active += benched
    for _ in range(len(active)):
        gossip_round(active)

    log_dir = os.environ.get("ADLP_SOAK_LOG_DIR")
    if log_dir:
        os.makedirs(log_dir, exist_ok=True)
        with open(os.path.join(log_dir, "gossip-storm-trace.log"), "w") as fh:
            fh.write("\n".join(trace) + "\n")

    liar_ids = {log.log_id for log in liars}
    honest_ids = {log.log_id for log in honest}
    for relay in active:
        convicted = {ev.log_id for ev in relay.evidence()}
        assert convicted & honest_ids == set(), (
            f"{relay.name} convicted an honest logger: {convicted & honest_ids}"
        )
        assert liar_ids <= convicted, (
            f"{relay.name} missed liars: {liar_ids - convicted}"
        )
        for evidence in relay.evidence():
            key = next(
                log.keys.public for log in liars if log.log_id == evidence.log_id
            )
            assert evidence.verify(key)
        assert relay.stats()["rejected_heads"] == 0
