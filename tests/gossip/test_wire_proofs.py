"""Proofs over the wire: fetch-and-verify clients, typed range errors.

A client must never have to trust the transport or parse a server
traceback: heads arrive signed, proofs verify locally against those
heads, and a malformed request comes back as a typed
:class:`~repro.errors.ProofError` across every backend (plain, threaded
shards, process shards).
"""

import pytest

from repro.core import LogServer, LogServerEndpoint
from repro.core.remote import RemoteLogger
from repro.errors import LogIntegrityError, LoggingError, ProofError
from repro.sharding import ShardedLogServer, make_sharded_server

from tests.sharding.workload import (
    GOLDEN_SHARDS_4,
    TOPICS,
    honest_pair,
    register_pair,
)


def _stream(keypool, count=8, topics=TOPICS):
    records = []
    for i in range(count):
        pub, _ = honest_pair(keypool, topics[i % len(topics)], i + 1, b"w%d" % i)
        records.append(pub.encode())
    return records


@pytest.fixture()
def plain(keypool):
    server = LogServer(signer=keypool[2].private, log_id="wire-plain")
    register_pair(server, keypool)
    endpoint = LogServerEndpoint(server)
    client = RemoteLogger(endpoint.address)
    yield server, client
    client.close()
    endpoint.close()


@pytest.fixture()
def sharded(keypool):
    server = ShardedLogServer(shards=4)
    server.attach_signer(keypool[2].private, log_id="wire-sharded")
    register_pair(server, keypool)
    endpoint = LogServerEndpoint(server)
    client = RemoteLogger(endpoint.address)
    yield server, client
    client.close()
    endpoint.close()


class TestClientVerification:
    def test_fetch_sth_matches_server_commitment(self, plain, keypool):
        server, client = plain
        records = _stream(keypool)
        for record in records:
            server.submit(record)
        sth = client.fetch_sth()
        assert sth.verify(keypool[2].public)
        assert sth.log_id == "wire-plain"
        assert sth.entries == len(records)
        assert sth.merkle_root == server.merkle_root()

    def test_inclusion_proof_verifies_against_signed_root(self, plain, keypool):
        server, client = plain
        records = _stream(keypool)
        for record in records:
            server.submit(record)
        sth = client.fetch_sth()
        for index, record in enumerate(records):
            proof = client.prove_inclusion(index, tree_size=sth.entries)
            assert proof.verify(record, sth.merkle_root)

    def test_consistency_proof_links_two_fetched_heads(self, plain, keypool):
        server, client = plain
        records = _stream(keypool)
        for record in records[:3]:
            server.submit(record)
        old = client.fetch_sth()
        for record in records[3:]:
            server.submit(record)
        new = client.fetch_sth()
        proof = client.prove_consistency(old.entries, new.entries)
        assert proof.verify(old.merkle_root, new.merkle_root)

    def test_verified_sth_requires_arming(self, plain):
        _, client = plain
        with pytest.raises(LoggingError, match="enable_sth_verification"):
            client.verified_sth()

    def test_verified_sth_challenges_growth(self, plain, keypool):
        server, client = plain
        monitor = client.enable_sth_verification(keypool[2].public)
        assert client.sth_monitor is monitor
        records = _stream(keypool)
        for record in records[:4]:
            server.submit(record)
        first = client.verified_sth()
        for record in records[4:]:
            server.submit(record)
        second = client.verified_sth()
        assert second.entries == len(records) > first.entries
        assert monitor.verified_head().entries == second.entries
        assert monitor.evidence() == []

    def test_verified_sth_rejects_wrong_identity(self, plain, keypool):
        server, client = plain
        client.enable_sth_verification(keypool[3].public)  # not the signer
        server.submit(_stream(keypool, count=1)[0])
        with pytest.raises(LogIntegrityError):
            client.verified_sth()

    def test_verify_own_entry_end_to_end(self, plain, keypool):
        server, client = plain
        client.enable_sth_verification(keypool[2].public)
        records = _stream(keypool)
        for record in records:
            server.submit(record)
        assert client.verify_own_entry(records[5], 5)
        # A record the log never saw does not verify at any index.
        stranger = _stream(keypool, count=1, topics=["/zz"])[0]
        assert not client.verify_own_entry(stranger, 5)

    def test_verify_own_entry_beyond_signed_head(self, plain, keypool):
        server, client = plain
        client.enable_sth_verification(keypool[2].public)
        record = _stream(keypool, count=1)[0]
        server.submit(record)
        with pytest.raises(ProofError, match="not covered"):
            client.verify_own_entry(record, 7)


class TestTypedErrorsPlain:
    def test_out_of_range_index_is_proof_error(self, plain, keypool):
        server, client = plain
        server.submit(_stream(keypool, count=1)[0])
        with pytest.raises(ProofError):
            client.prove_inclusion(5)
        # ...and still an IndexError for pre-gossip catch sites.
        with pytest.raises(IndexError):
            client.prove_inclusion(5)

    def test_negative_index_refused_locally(self, plain):
        _, client = plain
        with pytest.raises(ProofError, match="out of range"):
            client.prove_inclusion(-1)
        with pytest.raises(ProofError, match="out of range"):
            client.prove_consistency(-2)

    def test_consistency_range_errors_are_typed(self, plain, keypool):
        server, client = plain
        for record in _stream(keypool, count=3):
            server.submit(record)
        with pytest.raises(ProofError):
            client.prove_consistency(5, 9)  # beyond the tree
        with pytest.raises(ProofError):
            client.prove_consistency(3, 2)  # old > new

    def test_unsigned_server_refuses_sth_cleanly(self, keypool):
        server = LogServer()  # no signer attached
        endpoint = LogServerEndpoint(server)
        client = RemoteLogger(endpoint.address)
        try:
            with pytest.raises(LoggingError, match="signer"):
                client.fetch_sth()
        finally:
            client.close()
            endpoint.close()


class TestTypedErrorsSharded:
    def test_per_shard_proofs_verify(self, sharded, keypool):
        server, client = sharded
        records = _stream(keypool)
        for record in records:
            server.submit(record)
        by_shard = {}
        for i, record in enumerate(records):
            shard = GOLDEN_SHARDS_4[TOPICS[i % len(TOPICS)]]
            by_shard.setdefault(shard, []).append(record)
        for shard, shard_records in by_shard.items():
            sth = client.fetch_sth(shard=shard)
            assert sth.verify(keypool[2].public)
            assert sth.scope == shard + 1
            for index, record in enumerate(shard_records):
                proof = client.prove_inclusion(
                    index, tree_size=sth.entries, shard=shard
                )
                assert proof.verify(record, sth.merkle_root)

    def test_untargeted_proof_refused(self, sharded, keypool):
        server, client = sharded
        server.submit(_stream(keypool, count=1)[0])
        with pytest.raises(LoggingError, match="shard id"):
            client.prove_inclusion(0)
        with pytest.raises(LoggingError, match="shard id"):
            client.prove_consistency(0)

    def test_untargeted_sth_is_the_signed_set_head(self, sharded, keypool):
        server, client = sharded
        for record in _stream(keypool):
            server.submit(record)
        sth = client.fetch_sth()
        assert sth.verify(keypool[2].public)
        assert sth.scope == 0
        assert sth.merkle_root == server.commitment().root

    def test_out_of_range_shard_and_index_are_typed(self, sharded, keypool):
        server, client = sharded
        server.submit(_stream(keypool, count=1)[0])
        with pytest.raises(ProofError):
            client.prove_inclusion(0, shard=9)
        with pytest.raises(ProofError):
            client.prove_inclusion(99, shard=0)


class TestTypedErrorsProcess:
    def test_worker_range_error_crosses_the_boundary(self, tmp_path, keypool):
        """An out-of-range proof request against a process shard comes
        back as a typed ProofError relayed through parent and endpoint --
        never a worker traceback or a dead connection."""
        server = make_sharded_server(
            backend="process", shards=2, store_dir=str(tmp_path / "wire")
        )
        server.attach_signer(keypool[2].private, log_id="wire-proc")
        register_pair(server, keypool)
        endpoint = LogServerEndpoint(server)
        client = RemoteLogger(endpoint.address)
        try:
            records = _stream(keypool, count=4)
            for record in records:
                server.submit(record)
            with pytest.raises(ProofError):
                client.prove_inclusion(99, shard=0)
            with pytest.raises(ProofError):
                client.prove_consistency(7, 9, shard=1)
            # The connection survives the refusal: a good proof still works.
            for shard in range(2):
                sth = client.fetch_sth(shard=shard)
                assert sth.verify(keypool[2].public)
                if sth.entries:
                    proof = client.prove_inclusion(
                        0, tree_size=sth.entries, shard=shard
                    )
                    fetched = client.fetch_records(0, 1, shard=shard)
                    assert proof.verify(fetched[0], sth.merkle_root)
        finally:
            client.close()
            endpoint.close()
            server.close()
