"""Signed tree heads and equivocation evidence: the static artifacts.

Signing, verification, wire round-trips, conflict semantics, and the
self-contained evidence object a conviction rests on.
"""

import pytest

from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.log_server import LogServer
from repro.errors import DecodingError, LoggingError
from repro.gossip import (
    SCOPE_LOG,
    EquivocationEvidence,
    SignedTreeHead,
    issue_sth,
    make_evidence,
    require_valid,
)
from repro.gossip.evidence import KIND_FORK


def entry(seq, component="/p", topic="/t"):
    return LogEntry(
        component_id=component, topic=topic, type_name="std/String",
        direction=Direction.OUT, seq=seq, scheme=Scheme.ADLP,
        data=b"payload-%d" % seq,
    )


@pytest.fixture()
def signer(keypool):
    return keypool[0].private


class TestSignedTreeHead:
    def test_sign_and_verify(self, signer, keypool):
        sth = issue_sth(signer, "log-1", 7, b"h" * 32, b"r" * 32)
        assert sth.verify(signer.public_key)
        assert not sth.verify(keypool[1].public)
        assert sth.key_fingerprint == signer.public_key.fingerprint()

    def test_signature_covers_every_field(self, signer):
        base = issue_sth(signer, "log-1", 7, b"h" * 32, b"r" * 32, timestamp=5.0)
        for field, value in [
            ("log_id", "log-2"),
            ("entries", 8),
            ("chain_head", b"x" * 32),
            ("merkle_root", b"x" * 32),
            ("timestamp", 6.0),
            ("scope", 3),
        ]:
            tampered = SignedTreeHead.from_bytes(base.to_bytes())
            setattr(tampered, field, value)
            assert not tampered.verify(signer.public_key), field

    def test_wire_round_trip(self, signer):
        sth = issue_sth(signer, "log-9", 42, b"h" * 32, b"r" * 32, scope=2)
        back = SignedTreeHead.from_bytes(sth.to_bytes())
        assert back.log_id == "log-9"
        assert back.entries == 42
        assert back.scope == 2
        assert back.verify(signer.public_key)

    def test_malformed_bytes_rejected(self):
        with pytest.raises(DecodingError):
            SignedTreeHead.from_bytes(b"\xff\xff not a head")
        with pytest.raises(DecodingError):
            SignedTreeHead.from_bytes(SignedTreeHead(log_id="x").encode())

    def test_conflicts_with(self, signer):
        a = issue_sth(signer, "log-1", 5, b"h" * 32, b"r" * 32)
        forked = issue_sth(signer, "log-1", 5, b"h" * 32, b"R" * 32)
        later = issue_sth(signer, "log-1", 6, b"h" * 32, b"r" * 32)
        other_log = issue_sth(signer, "log-2", 5, b"h" * 32, b"R" * 32)
        other_scope = issue_sth(signer, "log-1", 5, b"h" * 32, b"R" * 32, scope=1)
        assert a.conflicts_with(forked) and forked.conflicts_with(a)
        assert not a.conflicts_with(a)
        assert not a.conflicts_with(later)
        assert not a.conflicts_with(other_log)
        assert not a.conflicts_with(other_scope)

    def test_require_valid(self, signer, keypool):
        sth = issue_sth(signer, "log-1", 1, b"h" * 32, b"r" * 32)
        assert require_valid(sth, signer.public_key) is sth
        with pytest.raises(LoggingError):
            require_valid(sth, keypool[1].public)


class TestLogServerSth:
    def test_server_signs_its_commitment(self, signer):
        server = LogServer(signer=signer)
        for i in range(3):
            server.submit(entry(i))
        sth = server.signed_tree_head(timestamp=1.0)
        assert sth.verify(signer.public_key)
        assert sth.entries == 3
        assert sth.scope == SCOPE_LOG
        assert sth.chain_head == server.store.head()
        assert sth.merkle_root == server.merkle_root()

    def test_unsigned_server_refuses(self):
        with pytest.raises(LoggingError, match="signer"):
            LogServer().signed_tree_head()

    def test_attach_signer_later(self, signer):
        server = LogServer()
        server.attach_signer(signer, log_id="late")
        assert server.signed_tree_head().log_id == "late"


class TestEvidence:
    def test_evidence_verifies_and_round_trips(self, signer):
        a = issue_sth(signer, "log-1", 5, b"h" * 32, b"r" * 32)
        b = issue_sth(signer, "log-1", 5, b"h" * 32, b"R" * 32)
        ev = make_evidence(KIND_FORK, a, b, detail="d", sources=("x", "y"))
        assert ev.verify(signer.public_key)
        assert ev.log_id == "log-1"
        back = EquivocationEvidence.from_bytes(ev.to_bytes())
        assert back.kind == KIND_FORK
        assert back.verify(signer.public_key)
        assert back.first.merkle_root == ev.first.merkle_root
        assert back.sources == ("x", "y")

    def test_evidence_rejects_wrong_key_and_shape(self, signer, keypool):
        a = issue_sth(signer, "log-1", 5, b"h" * 32, b"r" * 32)
        b = issue_sth(signer, "log-1", 5, b"h" * 32, b"R" * 32)
        ev = make_evidence(KIND_FORK, a, b)
        assert not ev.verify(keypool[1].public)
        # A non-conflicting pair is not fork evidence, however signed.
        c = issue_sth(signer, "log-1", 6, b"h" * 32, b"r" * 32)
        bogus = make_evidence(KIND_FORK, a, c)
        assert not bogus.verify(signer.public_key)
