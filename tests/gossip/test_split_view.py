"""End-to-end split-view detection: the issue's acceptance scenario.

A compromised trusted logger serves a fork -- one view to client group
A, a tampered view to group B.  Each group's proofs check out against
its own signed head (per-client verification alone is *insufficient*),
but one gossip exchange between the groups yields self-contained,
independently verifiable equivocation evidence; a replicated client
quarantines the logger on it and the online auditor reports it.
"""

import pytest

from repro.adversary import ForkingLogServer, tamper_timestamp
from repro.audit.online import OnlineAuditor
from repro.core import LogServerEndpoint, RemoteLogger
from repro.core.entries import Direction, LogEntry, Scheme
from repro.crypto.keystore import KeyStore
from repro.core.policy import ReplicationConfig
from repro.gossip import EquivocationEvidence, GossipRelay, gossip_round
from repro.replication import ReplicatedLogger
from repro.resilience.matrix import EQUIVOCATION_ROUND_BOUND

FAST = ReplicationConfig(
    breaker_failure_threshold=2,
    breaker_reset_timeout=0.05,
    breaker_max_reset_timeout=0.2,
    health_timeout=2.0,
)

RECORDS = 12
FORK_AT = 6


def entry(seq):
    return LogEntry(
        component_id="/p", topic="/t", type_name="std/String",
        direction=Direction.OUT, seq=seq, scheme=Scheme.ADLP,
        data=b"payload-%04d" % seq,
    )


@pytest.fixture()
def forked_world(keypool):
    """A forking logger behind two endpoints (one per audience), with the
    submission stream already ingested into both views."""
    fork = ForkingLogServer(
        keypool[0].private, log_id="split-view", fork_at=FORK_AT,
        mutate=tamper_timestamp,
    )
    endpoints = [LogServerEndpoint(fork.face(view)) for view in ("honest", "forked")]
    clients = [RemoteLogger(e.address) for e in endpoints]
    clients[0].submit_batch_sync([entry(seq).encode() for seq in range(RECORDS)])
    assert all(
        len(fork.face(view)) == RECORDS for view in ("honest", "forked")
    ), "both views must ingest the full stream"
    yield fork, endpoints, clients
    for client in clients:
        client.close()
    for endpoint in endpoints:
        endpoint.close()
    fork.close()


class TestSplitView:
    def test_each_group_alone_is_convinced(self, forked_world, keypool):
        """Both audiences get internally consistent, fully proven views --
        the lie is invisible without gossip."""
        fork, _, clients = forked_world
        heads = []
        for client in clients:
            sth = client.fetch_sth()
            assert sth.verify(keypool[0].public)
            assert sth.entries == RECORDS
            for index in range(RECORDS):
                proof = client.prove_inclusion(index, tree_size=sth.entries)
                record = client.fetch_records(index, 1)[0]
                assert proof.verify(record, sth.merkle_root)
            heads.append(sth)
        # Same signed size, different roots: the fork is real.
        assert heads[0].merkle_root != heads[1].merkle_root

    def test_gossip_detects_within_bounded_rounds(self, forked_world, keypool):
        fork, _, clients = forked_world
        relays = []
        for label, client in zip(("group-a", "group-b"), clients):
            relay = GossipRelay(label)
            relay.register_key(fork.log_id, keypool[0].public)
            assert relay.observe(client.fetch_sth(), source=label) == []
            relays.append(relay)
        rounds = 0
        while not any(r.evidence() for r in relays):
            rounds += 1
            assert rounds <= EQUIVOCATION_ROUND_BOUND
            gossip_round(relays)
        evidence = next(r for r in relays if r.evidence()).evidence()[0]
        assert evidence.log_id == fork.log_id
        assert evidence.verify(keypool[0].public)
        # Self-contained: a third party re-verifies it from bytes alone,
        # holding nothing but the logger's public key.
        portable = EquivocationEvidence.from_bytes(evidence.to_bytes())
        assert portable.verify(keypool[0].public)
        assert not portable.verify(keypool[1].public)

    def test_replicated_client_quarantines_the_liar(self, forked_world, keypool):
        fork, endpoints, _ = forked_world
        rlogger = ReplicatedLogger([e.address for e in endpoints], config=FAST)
        try:
            rlogger.enable_sth_gossip(keypool[0].public)
            rlogger.probe()
            assert rlogger.equivocation()
            assert rlogger.equivocation()[0].verify(keypool[0].public)
            statuses = rlogger.statuses()
            assert all(s.breaker == "open" for s in statuses)
            assert any(
                "equivocation" in (s.last_error or "") for s in statuses
            )
            assert rlogger.stats()["equivocation_evidence"] >= 1
            # The conviction is permanent: a later probe (past the breaker
            # reset window) must not readmit the forked logger.
            import time

            time.sleep(FAST.breaker_reset_timeout * 2)
            rlogger.probe()
            assert all(s.breaker == "open" for s in rlogger.statuses())
        finally:
            rlogger.close()

    def test_online_auditor_reports_the_conviction(self, forked_world, keypool):
        fork, _, clients = forked_world
        relay = GossipRelay("auditor-relay")
        relay.register_key(fork.log_id, keypool[0].public)
        auditor = OnlineAuditor(KeyStore())
        auditor.watch_gossip(relay)
        for label, client in zip(("a", "b"), clients):
            relay.observe(client.fetch_sth(), source=label)
        findings = [f for f in auditor.findings if f.kind == "equivocation"]
        assert len(findings) == 1
        assert findings[0].component_id == fork.log_id
        assert "split-view" in findings[0].detail or fork.log_id in findings[0].detail
        # Late subscribers replay accumulated evidence exactly once.
        late = OnlineAuditor(KeyStore())
        late.watch_gossip(relay)
        late.watch_gossip(relay)
        assert len([f for f in late.findings if f.kind == "equivocation"]) == 1
