import json
import threading
import time

import pytest

from repro.bench.cpu import ProcessCpuSampler, ThreadGroupCpuSampler, threads_matching
from repro.bench.rates import measure_log_rate
from repro.bench.reporting import Table, save_results
from repro.bench.timing import TimingStats, measure
from repro.bench.workloads import (
    LATENCY_SWEEP_SIZES,
    PAPER_SIZES,
    paper_payloads,
    payload_of_size,
)
from repro.core import LogServer
from repro.core.entries import LogEntry


class TestWorkloads:
    def test_paper_sizes_exact(self):
        assert PAPER_SIZES == {"Steering": 20, "Scan": 8705, "Image": 921641}
        for name, payload in paper_payloads().items():
            assert len(payload) == PAPER_SIZES[name]

    def test_payloads_deterministic(self):
        assert payload_of_size(100) == payload_of_size(100)

    def test_different_sizes_different_content(self):
        assert payload_of_size(100)[:50] != payload_of_size(200)[:50]

    def test_sweep_covers_paper_range(self):
        assert min(LATENCY_SWEEP_SIZES) == 20
        assert max(LATENCY_SWEEP_SIZES) == 921641


class TestTiming:
    def test_measure_counts_samples(self):
        stats = measure(lambda: None, samples=50, warmup=2)
        assert stats.samples == 50
        assert stats.mean >= 0

    def test_measure_captures_real_duration(self):
        stats = measure(lambda: time.sleep(0.002), samples=5, warmup=0)
        assert 0.0015 < stats.mean < 0.05

    def test_stats_from_samples(self):
        stats = TimingStats.from_samples([0.001, 0.002, 0.003])
        assert stats.mean == pytest.approx(0.002)
        assert stats.min == 0.001 and stats.max == 0.003
        assert stats.mean_ms == pytest.approx(2.0)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            TimingStats.from_samples([])


class TestCpuSamplers:
    def test_process_sampler_sees_busy_loop(self):
        sampler = ProcessCpuSampler()
        sampler.start()
        t0 = time.monotonic()
        while time.monotonic() - t0 < 0.2:
            sum(range(1000))
        cpu = sampler.stop()
        assert cpu > 20.0  # busy loop should look busy

    def test_process_sampler_idle_is_low(self):
        sampler = ProcessCpuSampler()
        sampler.start()
        time.sleep(0.2)
        assert sampler.stop() < 50.0

    def test_thread_group_sampler_isolates_threads(self):
        stop = threading.Event()

        def burn():
            while not stop.is_set():
                sum(range(1000))

        worker = threading.Thread(target=burn, name="burner")
        worker.start()
        try:
            ids = threads_matching(lambda t: t.name == "burner")
            assert ids
            sampler = ThreadGroupCpuSampler(ids)
            sampler.start()
            time.sleep(0.3)
            cpu = sampler.stop()
            assert cpu > 20.0
            # and a sampler over an idle thread set sees ~nothing
            idle_ids = threads_matching(lambda t: t.name == "MainThread")
            idle = ThreadGroupCpuSampler(idle_ids)
            idle.start()
            time.sleep(0.1)
        finally:
            stop.set()
            worker.join()


class TestLogRate:
    def test_measures_ingest(self):
        server = LogServer()
        stop = threading.Event()

        def feeder():
            seq = 0
            while not stop.is_set():
                seq += 1
                server.submit(LogEntry(component_id="/a", topic="/t", seq=seq, data=b"x" * 100))
                time.sleep(0.002)

        thread = threading.Thread(target=feeder)
        thread.start()
        try:
            rate = measure_log_rate(server, duration_s=0.3)
        finally:
            stop.set()
            thread.join()
        assert rate.entries > 10
        assert rate.bytes_per_second > 1000
        assert rate.megabits_per_second == pytest.approx(
            rate.bytes_per_second * 8 / 1e6
        )


class TestReporting:
    def test_table_renders_aligned(self):
        table = Table("Demo", ["Type", "Value"])
        table.add_row("Steering", 3.042)
        table.add_row("Image", 3.457)
        text = table.render()
        assert "Demo" in text and "Steering" in text and "3.042" in text

    def test_row_arity_checked(self):
        table = Table("Demo", ["A", "B"])
        with pytest.raises(ValueError):
            table.add_row("only one")

    def test_save_results_merges(self, tmp_path, monkeypatch):
        path = tmp_path / "results.json"
        monkeypatch.setattr("repro.bench.reporting._RESULTS_PATH", str(path))
        save_results("exp1", {"a": 1})
        save_results("exp2", {"b": 2})
        data = json.loads(path.read_text())
        assert data == {"exp1": {"a": 1}, "exp2": {"b": 2}}
