"""Pipelined wire protocol regressions: correlated RPCs sharing one
socket, late-reply discard, and the three remote-client races the
pipelining work exposed (connect-under-lock, reap-vs-send TOCTOU, and
the zero-hint BUSY retry spin)."""

import threading
import time

import pytest

from repro.core import LogServer, LogServerEndpoint, RemoteLogger
from repro.core.entries import LogEntry, Scheme
from repro.core.remote import (
    MIN_SHED_FLOOR,
    OP_BUSY,
    LoggerRequest,
    LoggerResponse,
    RemoteUnavailable,
    _floor_retry_after,
)
from repro.errors import ServerBusy, TransportError
from repro.middleware.transport.base import (
    Connection,
    ConnectionClosed,
    Transport,
)
from repro.middleware.transport.tcp import TcpTransport
from repro.util.concurrency import wait_for


def _entry(seq: int) -> LogEntry:
    return LogEntry(
        component_id="/a", topic="/t", seq=seq, scheme=Scheme.ADLP
    )


class _CountingTransport(Transport):
    """TcpTransport wrapper counting outbound connects."""

    def __init__(self):
        self._inner = TcpTransport()
        self.connects = 0

    def listen(self):
        return self._inner.listen()

    def connect(self, address):
        self.connects += 1
        return self._inner.connect(address)


class TestPipelinedRpcs:
    def test_concurrent_sync_rpcs_share_one_connection(self):
        """Many threads issue acknowledged batches through ONE stub at
        once; every batch lands and the stub never opens a second
        connection (pre-envelope clients serialized on _rpc_lock)."""
        server = LogServer()
        endpoint = LogServerEndpoint(server)
        transport = _CountingTransport()
        client = RemoteLogger(endpoint.address, transport=transport)
        client.health()  # warm the connection before the stampede
        threads = 8
        per_thread = 25
        errors = []

        def worker(base: int) -> None:
            try:
                batch = [_entry(base + i) for i in range(per_thread)]
                client.submit_batch_sync(batch, timeout=10.0)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        pool = [
            threading.Thread(target=worker, args=(t * per_thread,))
            for t in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=30.0)
        assert not errors
        assert len(server) == threads * per_thread
        assert transport.connects == 1
        client.close()
        endpoint.close()

    def test_late_reply_discarded_by_id_connection_survives(self):
        """A reply that arrives after its RPC timed out is dropped by
        correlation id; the connection (and later RPCs on it) survive.
        Pre-envelope clients had to kill the connection instead."""
        transport = TcpTransport()
        listener = transport.listen()
        stop = threading.Event()
        accepted = []

        def serve() -> None:
            conn = listener.accept(timeout=5.0)
            if conn is None:  # pragma: no cover - setup failure
                return
            accepted.append(conn)
            stalled = None
            seen = 0
            while not stop.is_set():
                try:
                    frame = conn.recv_frame(timeout=0.1)
                except ConnectionClosed:
                    return
                if frame is None:
                    continue
                request = LoggerRequest.decode(frame)
                reply = LoggerResponse(
                    ok=True, entries=0, corr_id=int(request.corr_id)
                )
                seen += 1
                if seen == 2:
                    stalled = reply  # park: its RPC will time out
                    continue
                conn.send_frame(reply.encode())
                if stalled is not None:
                    conn.send_frame(stalled.encode())  # the LATE reply
                    stalled = None

        server_thread = threading.Thread(target=serve, daemon=True)
        server_thread.start()
        client = RemoteLogger(listener.address)
        try:
            client.health(timeout=5.0)  # latches "server correlates"
            with pytest.raises(RemoteUnavailable):
                client.health(timeout=0.3)  # server parks this reply
            # Same connection: answered in order (reply 3, then late 2).
            client.health(timeout=5.0)
            client.health(timeout=5.0)  # pumps + discards the late reply
            assert wait_for(
                lambda: client.stats()["late_replies_discarded"] >= 1,
                timeout=2.0,
            )
            assert client.connected
            assert len(accepted) == 1  # never reconnected
        finally:
            stop.set()
            client.close()
            server_thread.join(timeout=5.0)
            listener.close()


class _BlockingConnectTransport(Transport):
    """connect() parks on an event, then fails -- a stand-in for a
    blackholed host / full accept backlog."""

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()

    def connect(self, address):
        self.entered.set()
        self.release.wait(timeout=10.0)
        raise TransportError("connect timed out")


class TestConnectOutsideLock:
    def test_stalled_connect_does_not_freeze_stats_or_close(self):
        """Regression: _connect used to hold self._lock across the
        blocking transport connect, so a stalled connect froze stats()
        and close() on every other thread."""
        transport = _BlockingConnectTransport()
        client = RemoteLogger(("test", "nowhere"), transport=transport)

        submitter = threading.Thread(target=client.submit, args=(_entry(1),))
        submitter.start()
        assert transport.entered.wait(timeout=5.0)
        # The connect is stalled RIGHT NOW; the shared lock must be free.
        start = time.monotonic()
        client.stats()
        assert client.spilled == 0
        assert not client.connected
        client.close()
        assert time.monotonic() - start < 1.0
        transport.release.set()
        submitter.join(timeout=5.0)
        assert not submitter.is_alive()
        # The entry survived the stalled connect (spilled, not lost).
        assert client.dropped == 0

    def test_non_accepting_tcp_server_does_not_block_other_threads(self):
        """Same race end-to-end over TCP: a listener whose accept backlog
        is saturated stalls fresh connects; stats() must stay prompt."""
        import socket as socketlib

        gate = socketlib.socket()
        gate.bind(("127.0.0.1", 0))
        gate.listen(0)  # never accepted; minimal backlog
        address = ("tcp",) + gate.getsockname()
        fillers = []
        for _ in range(4):  # saturate the accept queue
            filler = socketlib.socket()
            filler.setblocking(False)
            filler.connect_ex(gate.getsockname())
            fillers.append(filler)
        client = RemoteLogger(
            address, transport=TcpTransport(connect_timeout=1.0)
        )
        try:
            submitter = threading.Thread(
                target=client.submit, args=(_entry(1),)
            )
            submitter.start()
            time.sleep(0.1)  # let the submitter reach the connect
            start = time.monotonic()
            client.stats()
            _ = client.spilled
            assert time.monotonic() - start < 0.75
            submitter.join(timeout=10.0)
            assert not submitter.is_alive()
            assert client.dropped == 0
        finally:
            client.close()
            for filler in fillers:
                filler.close()
            gate.close()


class _FlipConnection(Connection):
    """Looks alive at the pre-send peek, reports peer-closed immediately
    after the send -- the injected reap-vs-send race."""

    def __init__(self):
        self.frames = []
        self._closed = False
        self._peer_gone = False

    def send_frame(self, frame: bytes) -> None:
        if self._closed:
            raise ConnectionClosed("closed")
        self.frames.append(frame)
        self._peer_gone = True  # the server reaped us mid-send

    def recv_frame(self, timeout=None):
        return None

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def peer_closed(self) -> bool:
        return self._peer_gone


class _GoodConnection(Connection):
    def __init__(self):
        self.frames = []
        self._closed = False

    def send_frame(self, frame: bytes) -> None:
        if self._closed:
            raise ConnectionClosed("closed")
        self.frames.append(frame)

    def recv_frame(self, timeout=None):
        return None

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def peer_closed(self) -> bool:
        return False


class _ScriptedTransport(Transport):
    def __init__(self, connections):
        self._connections = list(connections)

    def connect(self, address):
        if not self._connections:
            raise TransportError("no more connections scripted")
        return self._connections.pop(0)


class TestPeerCloseRespill:
    def test_close_between_peek_and_send_respills(self):
        """Regression: a connection reaped between the peer_closed() peek
        and the fire-and-forget send used to swallow the frame silently.
        The post-send peek must route it to the spill queue instead."""
        flip = _FlipConnection()
        good = _GoodConnection()
        client = RemoteLogger(
            ("test", "x"),
            transport=_ScriptedTransport([flip, good]),
            reconnect_backoff=0.001,
        )
        entry = _entry(7)
        client.submit(entry)
        assert len(flip.frames) == 1  # the send itself "succeeded"
        assert client.spilled == 1  # ...but the record was respilled
        assert client.dropped == 0
        assert client.stats()["peer_close_respills"] == 1
        assert flip.closed  # the raced connection was retired

        # Recovery: the respilled record drains on the next connection.
        assert client.flush_spill()
        assert client.spilled == 0
        assert client.stats()["spill_retries"] == 1
        assert len(good.frames) == 1
        resent = LoggerRequest.decode(good.frames[0])
        assert bytes(resent.entry_bytes) == entry.encode()
        client.close()

    def test_batch_respill_counts_every_record(self):
        flip = _FlipConnection()
        client = RemoteLogger(
            ("test", "x"), transport=_ScriptedTransport([flip])
        )
        client.submit_batch([_entry(i) for i in range(5)])
        assert client.spilled == 5
        assert client.stats()["peer_close_respills"] == 5
        assert client.dropped == 0
        client.close()


class TestBusyRetryFloor:
    def test_floor_applies_jitter_within_bounds(self):
        import random

        rng = random.Random(42)
        for _ in range(100):
            floored = _floor_retry_after(0.0, rng)
            assert MIN_SHED_FLOOR <= floored < 2 * MIN_SHED_FLOOR
        # Hints at or above the floor pass through untouched.
        assert _floor_retry_after(MIN_SHED_FLOOR) == MIN_SHED_FLOOR
        assert _floor_retry_after(0.5) == 0.5

    def test_zero_hint_busy_bounds_retry_rate(self):
        """Regression: a BUSY verdict with retry_after_ms=0 used to open
        a zero-length shed window -- clients honoring the hint retried in
        a hot spin.  The client-side floor bounds the retry rate no
        matter what the server says."""
        transport = TcpTransport()
        listener = transport.listen()
        stop = threading.Event()

        def serve() -> None:
            conn = listener.accept(timeout=5.0)
            if conn is None:  # pragma: no cover - setup failure
                return
            while not stop.is_set():
                try:
                    frame = conn.recv_frame(timeout=0.1)
                except ConnectionClosed:
                    return
                if frame is None:
                    continue
                request = LoggerRequest.decode(frame)
                conn.send_frame(
                    LoggerResponse(
                        ok=False,
                        error="synthetic overload",
                        code=OP_BUSY,
                        queue_depth=10,
                        retry_after_ms=0,  # the pathological hint
                        corr_id=int(request.corr_id),
                    ).encode()
                )

        server_thread = threading.Thread(target=serve, daemon=True)
        server_thread.start()
        client = RemoteLogger(listener.address)
        try:
            attempts = 0
            window = 0.4
            deadline = time.monotonic() + window
            while time.monotonic() < deadline:
                attempts += 1
                with pytest.raises(ServerBusy) as info:
                    client.submit_batch_sync([_entry(attempts)], timeout=5.0)
                assert info.value.retry_after >= MIN_SHED_FLOOR
                assert info.value.retry_after < 2 * MIN_SHED_FLOOR
                time.sleep(info.value.retry_after)  # honor the hint
            # Bounded retry rate: at most one attempt per floor interval
            # (plus slack for scheduling) -- a hot spin would make this
            # hundreds.
            assert attempts <= int(window / MIN_SHED_FLOOR) + 2
        finally:
            stop.set()
            client.close()
            server_thread.join(timeout=5.0)
            listener.close()
