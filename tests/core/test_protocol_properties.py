"""Property-based tests of the ADLP wire artifacts and the end-to-end
sign/ack/verify invariants."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.protocol import AdlpAck, AdlpMessage, message_digest
from repro.errors import ProtocolError


seqs = st.integers(min_value=0, max_value=(1 << 64) - 1)
payloads = st.binary(max_size=512)
signatures = st.binary(min_size=1, max_size=256)


class TestWireRoundtrips:
    @given(seq=seqs, payload=payloads, signature=signatures)
    def test_message_roundtrip(self, seq, payload, signature):
        msg = AdlpMessage(seq=seq, payload=payload, signature=signature)
        parsed = AdlpMessage.parse(msg.encode())
        assert (parsed.seq, parsed.payload, parsed.signature) == (
            seq,
            payload,
            signature,
        )

    @given(seq=seqs, payload=payloads, signature=signatures)
    def test_ack_data_form_roundtrip(self, seq, payload, signature):
        ack = AdlpAck(seq=seq, signature=signature, returns_data=True, payload=payload)
        parsed = AdlpAck.parse(ack.encode())
        assert parsed.acknowledged_hash() == message_digest(seq, payload)

    @given(st.binary(max_size=64))
    def test_garbage_never_crashes_parse(self, blob):
        for parser in (AdlpMessage.parse, AdlpAck.parse):
            try:
                parser(blob)
            except ProtocolError:
                pass  # rejection is fine; uncontrolled exceptions are not

    @given(seq=seqs, payload=payloads)
    def test_digest_symmetry(self, seq, payload):
        """Publisher and subscriber compute identical digests from the
        wire fields alone."""
        msg = AdlpMessage(seq=seq, payload=payload, signature=b"s")
        decoded = AdlpMessage.decode(msg.encode())
        assert message_digest(decoded.seq, decoded.payload) == message_digest(
            seq, payload
        )


class TestLogEntryRoundtrip:
    entries = st.builds(
        LogEntry,
        component_id=st.sampled_from(["/a", "/b", "/node_1"]),
        topic=st.sampled_from(["/t", "/camera/image_raw"]),
        type_name=st.just("std/String"),
        direction=st.sampled_from([Direction.OUT, Direction.IN]),
        seq=seqs,
        timestamp=st.floats(min_value=0, max_value=1e12),
        scheme=st.sampled_from([Scheme.NAIVE, Scheme.ADLP]),
        data=st.binary(max_size=128),
        data_hash=st.binary(max_size=32),
        own_sig=st.binary(max_size=128),
        peer_id=st.sampled_from(["", "/peer"]),
        peer_hash=st.binary(max_size=32),
        peer_sig=st.binary(max_size=128),
    )

    @given(entries)
    def test_roundtrip(self, entry):
        assert LogEntry.decode(entry.encode()) == entry

    @given(entries, entries)
    def test_injective_encoding(self, a, b):
        if a != b:
            assert a.encode() != b.encode()


class TestSignatureInvariants:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seq=st.integers(min_value=0, max_value=(1 << 64) - 2),  # seq+1 below
        payload=payloads,
    )
    def test_signed_digest_verifies_only_for_exact_pair(self, keypool, seq, payload):
        pair = keypool[0]
        digest = message_digest(seq, payload)
        signature = pair.private.sign_digest(digest)
        assert pair.public.verify_digest(digest, signature)
        # any change to seq or payload breaks verification
        assert not pair.public.verify_digest(
            message_digest(seq + 1, payload), signature
        )
        assert not pair.public.verify_digest(
            message_digest(seq, payload + b"x"), signature
        )

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seq=seqs, payload=payloads)
    def test_signature_not_transferable_between_keys(self, keypool, seq, payload):
        digest = message_digest(seq, payload)
        signature = keypool[0].private.sign_digest(digest)
        assert not keypool[1].public.verify_digest(digest, signature)
