"""Integration tests of the ADLP transport protocol (Sections IV-A, V-B)."""

import time

import pytest

from repro.core import AdlpConfig, AdlpProtocol, Direction, LogServer, Scheme
from repro.core.protocol import message_digest
from repro.middleware import Master, Node
from repro.middleware.msgtypes import StringMsg
from repro.middleware.transport import TcpTransport
from repro.util.concurrency import wait_for

TOPIC = "/t"


def build_pair(keypool, config, transport=None):
    master = Master(transport=transport) if transport else Master()
    server = LogServer()
    pub_protocol = AdlpProtocol("/pub", server, config=config, keypair=keypool[0])
    sub_protocol = AdlpProtocol("/sub", server, config=config, keypair=keypool[1])
    pub_node = Node("/pub", master, protocol=pub_protocol)
    sub_node = Node("/sub", master, protocol=sub_protocol)
    return master, server, pub_node, sub_node, pub_protocol, sub_protocol


@pytest.fixture()
def world(keypool, fast_config):
    parts = build_pair(keypool, fast_config)
    yield parts
    parts[2].shutdown()
    parts[3].shutdown()


def publish_and_settle(pub_node, sub_node, pub_protocol, sub_protocol, count=3):
    received = []
    sub = sub_node.subscribe(TOPIC, StringMsg, received.append)
    pub = pub_node.advertise(TOPIC, StringMsg)
    assert pub.wait_for_subscribers(1)
    for i in range(count):
        pub.publish(StringMsg(data=f"msg {i}"))
    assert sub.wait_for_messages(count)
    # publisher entries are written on ACK receipt; wait for the log
    assert wait_for(lambda: pub_protocol.stats.acks_received >= count, timeout=5.0)
    pub_protocol.flush()
    sub_protocol.flush()
    return received


class TestHappyPath:
    def test_application_sees_clean_messages(self, world):
        _, _, pub_node, sub_node, pub_protocol, sub_protocol = world
        received = publish_and_settle(pub_node, sub_node, pub_protocol, sub_protocol)
        assert [m.data for m in received] == ["msg 0", "msg 1", "msg 2"]

    def test_both_entries_logged_per_transmission(self, world):
        _, server, pub_node, sub_node, pub_protocol, sub_protocol = world
        publish_and_settle(pub_node, sub_node, pub_protocol, sub_protocol)
        outs = server.entries(component_id="/pub", direction=Direction.OUT)
        ins = server.entries(component_id="/sub", direction=Direction.IN)
        assert len(outs) == 3 and len(ins) == 3
        assert all(e.scheme is Scheme.ADLP for e in outs + ins)

    def test_publisher_entry_structure(self, world, keypool):
        # L_x: (id_x, type, out, D'_x, s'_x, D'_y, s'_y) -- Figure 9.
        _, server, pub_node, sub_node, pub_protocol, sub_protocol = world
        publish_and_settle(pub_node, sub_node, pub_protocol, sub_protocol, count=1)
        entry = server.entries(component_id="/pub")[0]
        assert entry.data and not entry.data_hash  # publisher stores D as-is
        digest = message_digest(entry.seq, entry.data)
        assert keypool[0].public.verify_digest(digest, entry.own_sig)  # s'_x
        assert entry.peer_id == "/sub"
        assert entry.peer_hash == digest  # D'_y acknowledged the same data
        assert keypool[1].public.verify_digest(entry.peer_hash, entry.peer_sig)  # s'_y

    def test_subscriber_entry_structure(self, world, keypool):
        # L_y: (id_y, type, in, h(D''_y), s''_x, s''_y) -- Figure 9 + h(D).
        _, server, pub_node, sub_node, pub_protocol, sub_protocol = world
        publish_and_settle(pub_node, sub_node, pub_protocol, sub_protocol, count=1)
        entry = server.entries(component_id="/sub")[0]
        assert entry.data_hash and not entry.data  # stores the hash
        assert keypool[1].public.verify_digest(entry.data_hash, entry.own_sig)
        assert entry.peer_id == "/pub"
        assert keypool[0].public.verify_digest(entry.data_hash, entry.peer_sig)

    def test_pub_and_sub_agree_on_digest(self, world):
        _, server, pub_node, sub_node, pub_protocol, sub_protocol = world
        publish_and_settle(pub_node, sub_node, pub_protocol, sub_protocol, count=1)
        pub_entry = server.entries(component_id="/pub")[0]
        sub_entry = server.entries(component_id="/sub")[0]
        assert pub_entry.reported_hash() == sub_entry.reported_hash()
        assert pub_entry.seq == sub_entry.seq == 1

    def test_works_over_tcp(self, keypool, fast_config):
        parts = build_pair(keypool, fast_config, transport=TcpTransport())
        _, server, pub_node, sub_node, pub_protocol, sub_protocol = parts
        try:
            publish_and_settle(pub_node, sub_node, pub_protocol, sub_protocol)
            assert len(server.entries()) == 6
        finally:
            pub_node.shutdown()
            sub_node.shutdown()

    def test_public_keys_registered_at_startup(self, world):
        _, server, *_ = world
        assert set(server.components()) == {"/pub", "/sub"}


class TestCryptoAccounting:
    def test_sign_once_per_publication_multiple_subscribers(
        self, keypool, fast_config
    ):
        """The Figure 14 property: crypto cost does not scale with
        subscriber count."""
        master = Master()
        server = LogServer()
        pub_protocol = AdlpProtocol("/pub", server, config=fast_config, keypair=keypool[0])
        pub_node = Node("/pub", master, protocol=pub_protocol)
        sub_nodes = []
        subs = []
        for i in range(3):
            protocol = AdlpProtocol(
                f"/sub{i}", server, config=fast_config, keypair=keypool[1 + i]
            )
            node = Node(f"/sub{i}", master, protocol=protocol)
            sub_nodes.append(node)
            subs.append(node.subscribe(TOPIC, StringMsg, lambda m: None))
        try:
            pub = pub_node.advertise(TOPIC, StringMsg)
            assert pub.wait_for_subscribers(3)
            for i in range(4):
                pub.publish(StringMsg(data=f"m{i}"))
            for sub in subs:
                assert sub.wait_for_messages(4)
            assert wait_for(
                lambda: pub_protocol.stats.acks_received >= 12, timeout=5.0
            )
            # 4 publications -> 4 signatures, regardless of 3 subscribers
            assert pub_protocol.stats.signatures == 4
            # but one log entry per (publication, subscriber)
            pub_protocol.flush()
            assert len(server.entries(component_id="/pub")) == 12
        finally:
            pub_node.shutdown()
            for node in sub_nodes:
                node.shutdown()

    def test_subscriber_stats(self, world):
        _, _, pub_node, sub_node, pub_protocol, sub_protocol = world
        publish_and_settle(pub_node, sub_node, pub_protocol, sub_protocol)
        assert sub_protocol.stats.acks_sent == 3
        assert sub_protocol.stats.signatures == 3
        assert sub_protocol.stats.digests == 3


class TestConfigurations:
    def test_subscriber_stores_data_when_configured(self, keypool):
        config = AdlpConfig(key_bits=512, subscriber_stores_hash=False)
        parts = build_pair(keypool, config)
        _, server, pub_node, sub_node, pub_protocol, sub_protocol = parts
        try:
            publish_and_settle(pub_node, sub_node, pub_protocol, sub_protocol, count=1)
            entry = server.entries(component_id="/sub")[0]
            assert entry.data and not entry.data_hash
        finally:
            pub_node.shutdown()
            sub_node.shutdown()

    def test_ack_returns_data_variant(self, keypool):
        # Section IV-A: the ACK may carry the data itself for small messages.
        config = AdlpConfig(key_bits=512, ack_returns_data=True)
        parts = build_pair(keypool, config)
        _, server, pub_node, sub_node, pub_protocol, sub_protocol = parts
        try:
            publish_and_settle(pub_node, sub_node, pub_protocol, sub_protocol, count=2)
            entry = server.entries(component_id="/pub")[0]
            # the publisher still records the acknowledged digest
            assert entry.peer_hash == entry.reported_hash()
        finally:
            pub_node.shutdown()
            sub_node.shutdown()

    def test_verify_on_receive_accepts_valid(self, keypool):
        config = AdlpConfig(key_bits=512, verify_on_receive=True)
        parts = build_pair(keypool, config)
        _, server, pub_node, sub_node, pub_protocol, sub_protocol = parts
        try:
            received = publish_and_settle(
                pub_node, sub_node, pub_protocol, sub_protocol, count=2
            )
            assert len(received) == 2
            assert sub_protocol.stats.invalid_signatures == 0
        finally:
            pub_node.shutdown()
            sub_node.shutdown()

    def test_no_ack_mode_still_logs_asynchronously(self, keypool):
        config = AdlpConfig(key_bits=512, require_ack=False)
        parts = build_pair(keypool, config)
        _, server, pub_node, sub_node, pub_protocol, sub_protocol = parts
        try:
            received = []
            sub = sub_node.subscribe(TOPIC, StringMsg, received.append)
            pub = pub_node.advertise(TOPIC, StringMsg)
            pub.wait_for_subscribers(1)
            for i in range(5):
                pub.publish(StringMsg(data=f"m{i}"))
            assert sub.wait_for_messages(5)
            # ACKs are drained opportunistically on later sends; publish one
            # more to collect the stragglers.
            wait_for(lambda: pub_protocol.stats.acks_received >= 4, timeout=2.0)
            pub.publish(StringMsg(data="flush"))
            assert sub.wait_for_messages(6)
            assert pub_protocol.stats.acks_received >= 4
        finally:
            pub_node.shutdown()
            sub_node.shutdown()


class TestReplayProtection:
    def test_stale_frames_dropped(self, world, keypool, fast_config):
        _, _, pub_node, sub_node, pub_protocol, sub_protocol = world
        # Drive the subscriber protocol directly with a replayed frame.
        sub_proto = sub_protocol.subscriber_protocol(TOPIC, "std/String")

        class FakeConn:
            def send_frame(self, frame):
                pass

        digest = message_digest(5, b"data")
        from repro.core.protocol import AdlpMessage

        frame = AdlpMessage(
            seq=5, payload=b"data", signature=keypool[0].private.sign_digest(digest)
        ).encode()
        assert sub_proto.on_frame("/pub", FakeConn(), frame) == b"data"
        # An exact replay of an already-ACKed seq is swallowed as a
        # duplicate (idempotently re-ACKed, never re-delivered).
        assert sub_proto.on_frame("/pub", FakeConn(), frame) is None
        assert sub_protocol.stats.dup_frames_dropped >= 1
        # A *stale* frame -- an old seq the subscriber never ACKed (its
        # ACK cache has no entry) -- is dropped as stale, not re-ACKed.
        stale_digest = message_digest(2, b"old")
        stale = AdlpMessage(
            seq=2, payload=b"old",
            signature=keypool[0].private.sign_digest(stale_digest),
        ).encode()
        assert sub_proto.on_frame("/pub", FakeConn(), stale) is None
        assert sub_protocol.stats.stale_frames >= 1
