"""Server-side dedup storage (the paper's §VI-E server-side optimization)."""

import pytest

from repro.core import LogServer
from repro.core.dedup_store import DedupLogStore
from repro.core.entries import Direction, LogEntry, Scheme
from repro.errors import LogIntegrityError


def entry_with_payload(payload, seq=1, peer="/sub"):
    return LogEntry(
        component_id="/pub",
        topic="/t",
        type_name="std/String",
        direction=Direction.OUT,
        seq=seq,
        scheme=Scheme.ADLP,
        data=payload,
        own_sig=b"s" * 64,
        peer_id=peer,
        peer_hash=b"h" * 32,
        peer_sig=b"t" * 64,
    )


class TestDedup:
    def test_identical_payloads_stored_once(self):
        store = DedupLogStore()
        payload = b"frame" * 10000  # 50 KB
        # 4 subscribers -> 4 publisher entries carrying the same frame
        for i, peer in enumerate(["/a", "/b", "/c", "/d"]):
            store.append(entry_with_payload(payload, seq=1, peer=peer).encode())
        assert store.dedup_ratio > 3.0
        assert store.physical_bytes < store.total_bytes

    def test_small_payloads_not_deduped(self):
        store = DedupLogStore()
        for i in range(3):
            store.append(entry_with_payload(b"tiny", seq=i + 1).encode())
        assert store.dedup_ratio == pytest.approx(1.0, rel=0.01)

    def test_records_reconstruct_byte_identically(self):
        store = DedupLogStore()
        originals = [
            entry_with_payload(b"frame" * 1000, seq=i + 1, peer=p).encode()
            for i, p in enumerate(["/a", "/b"])
        ]
        for record in originals:
            store.append(record)
        assert store.records() == originals

    def test_verify_passes_on_clean_store(self):
        store = DedupLogStore()
        for i in range(5):
            store.append(entry_with_payload(b"data" * 500, seq=i + 1).encode())
        store.verify()

    def test_blob_tamper_detected(self):
        store = DedupLogStore()
        store.append(entry_with_payload(b"frame" * 1000).encode())
        ref = next(iter(store._blobs))
        store._blobs[ref] = b"tampered" * 1000
        with pytest.raises(LogIntegrityError):
            store.verify()

    def test_stripped_record_tamper_detected(self):
        store = DedupLogStore()
        store.append(entry_with_payload(b"frame" * 1000).encode())
        store._stripped[0] = entry_with_payload(b"", seq=99).encode()
        with pytest.raises(LogIntegrityError):
            store.verify()

    def test_non_entry_records_stored_verbatim(self):
        store = DedupLogStore()
        blob = b"\x00\x01\x02 not a LogEntry" * 100
        store.append(blob)
        assert store.records() == [blob]
        store.verify()

    def test_head_matches_plain_store(self):
        """The chain commitment is identical to a plain store's, so the
        optimization is invisible to auditors and case bundles."""
        from repro.core.log_store import InMemoryLogStore

        plain = InMemoryLogStore()
        dedup = DedupLogStore()
        for i in range(4):
            record = entry_with_payload(b"frame" * 1000, seq=i + 1).encode()
            plain.append(record)
            dedup.append(record)
        assert plain.head() == dedup.head()


class TestWithLogServer:
    def test_log_server_over_dedup_store(self, keypool):
        store = DedupLogStore()
        server = LogServer(store=store)
        payload = b"image-bytes" * 5000
        for i, peer in enumerate(["/a", "/b", "/c"]):
            server.submit(entry_with_payload(payload, seq=1, peer=peer))
        assert len(server) == 3
        server.verify_integrity()
        assert store.dedup_ratio > 2.0
        # queries still see full entries
        assert all(e.data == payload for e in server.entries())