"""Retransmission and duplicate handling under scripted frame loss.

Frame-index map for a single pub/sub pair over :class:`FaultyTransport`
(the middleware's topology: the publisher listens, the subscriber
connects):

- ``connect`` side, frame 0: the subscriber's handshake header; frames 1+
  are its ACKs.
- ``accept`` side, frame 0: the publisher's handshake reply; frames 1+ are
  data frames (including retransmissions).
"""

import pytest

from repro.core import AdlpConfig, AdlpProtocol, LogServer
from repro.core.entries import Direction
from repro.middleware import Master, Node, handshake
from repro.middleware.msgtypes import StringMsg
from repro.middleware.transport import FaultSchedule, FaultyTransport
from repro.util.concurrency import wait_for


def make_pair(keypool, schedule, config):
    """One publisher + one subscriber node over a faulted inproc network."""
    master = Master(transport=FaultyTransport(schedule=schedule))
    server = LogServer()
    pub_protocol = AdlpProtocol("/pub", server, config=config, keypair=keypool[0])
    sub_protocol = AdlpProtocol("/sub", server, config=config, keypair=keypool[1])
    pub_node = Node("/pub", master, protocol=pub_protocol)
    sub_node = Node("/sub", master, protocol=sub_protocol)
    return server, pub_protocol, sub_protocol, pub_node, sub_node


class TestAckLossRetransmission:
    def test_publisher_retransmits_after_lost_ack(self, keypool):
        """The first ACK is dropped: the publisher times out, re-sends the
        frame, and the subscriber re-ACKs from its cache without a second
        delivery.  Stats match the injected fault exactly."""
        schedule = FaultSchedule(seed=1).script("connect", 1, "drop")
        config = AdlpConfig(
            key_bits=512,
            ack_timeout=0.2,
            max_retransmits=3,
            retransmit_backoff=2.0,
            max_ack_timeout=2.0,
        )
        server, pub_protocol, sub_protocol, pub_node, sub_node = make_pair(
            keypool, schedule, config
        )
        try:
            sub = sub_node.subscribe("/t", StringMsg, lambda m: None)
            pub = pub_node.advertise("/t", StringMsg)
            assert pub.wait_for_subscribers(1)
            pub.publish(StringMsg(data="survives ack loss"))
            assert sub.wait_for_messages(1)
            assert wait_for(
                lambda: pub_protocol.stats.acks_received == 1, timeout=5.0
            )

            assert pub_protocol.stats.ack_timeouts == 1
            assert pub_protocol.stats.retransmits == 1
            assert pub_protocol.stats.acks_received == 1
            assert sub_protocol.stats.dup_frames_dropped == 1
            # exactly-once delivery despite two copies on the wire
            assert sub.stats.received == 1

            pub_protocol.flush()
            sub_protocol.flush()
            # the publisher's entry carries the (re-sent) ACK: proven, not
            # an unproven-publication stub
            out_entries = server.entries(component_id="/pub", seq=1)
            assert len(out_entries) == 1
            assert out_entries[0].peer_sig
            assert len(server.entries(component_id="/sub", seq=1)) == 1
        finally:
            pub_node.shutdown()
            sub_node.shutdown()

    def test_duplicated_data_frame_delivered_once(self, keypool):
        """A network-duplicated data frame is delivered exactly once; the
        duplicate is re-ACKed from the cache and dropped."""
        schedule = FaultSchedule(seed=1).script("accept", 1, "dup")
        config = AdlpConfig(key_bits=512, ack_timeout=2.0)
        server, pub_protocol, sub_protocol, pub_node, sub_node = make_pair(
            keypool, schedule, config
        )
        try:
            sub = sub_node.subscribe("/t", StringMsg, lambda m: None)
            pub = pub_node.advertise("/t", StringMsg)
            assert pub.wait_for_subscribers(1)
            pub.publish(StringMsg(data="sent twice"))
            assert sub.wait_for_messages(1)
            assert wait_for(
                lambda: sub_protocol.stats.dup_frames_dropped == 1, timeout=5.0
            )
            assert sub.stats.received == 1
            assert pub_protocol.stats.retransmits == 0

            pub_protocol.flush()
            sub_protocol.flush()
            # one IN entry, not two: duplicates cannot corrupt the log
            assert len(server.entries(component_id="/sub")) == 1
        finally:
            pub_node.shutdown()
            sub_node.shutdown()


class TestPermanentAckLoss:
    def test_bounded_timeout_no_hang_clean_degradation(self, keypool):
        """Every ACK is dropped forever: the publisher must exhaust its
        retransmit budget in bounded time, log the unproven publication,
        and keep serving (``drop_unacked_subscriber=False``)."""
        schedule = FaultSchedule(seed=1).script_range("connect", 1, "drop")
        config = AdlpConfig(
            key_bits=512,
            ack_timeout=0.05,
            max_retransmits=2,
            retransmit_backoff=2.0,
            max_ack_timeout=0.2,
            drop_unacked_subscriber=False,
        )
        server, pub_protocol, sub_protocol, pub_node, sub_node = make_pair(
            keypool, schedule, config
        )
        try:
            sub = sub_node.subscribe("/t", StringMsg, lambda m: None)
            pub = pub_node.advertise("/t", StringMsg)
            assert pub.wait_for_subscribers(1)
            pub.publish(StringMsg(data="never acked"))
            # bounded: initial wait + 2 backed-off retries, well under 5s
            assert wait_for(
                lambda: pub_protocol.stats.ack_timeouts
                == config.max_retransmits + 1,
                timeout=5.0,
            )
            assert pub_protocol.stats.retransmits == config.max_retransmits
            assert pub_protocol.stats.acks_received == 0
            # the subscriber delivered once and swallowed each retransmit
            assert sub.wait_for_messages(1)
            assert sub.stats.received == 1
            assert wait_for(
                lambda: sub_protocol.stats.dup_frames_dropped
                == config.max_retransmits,
                timeout=5.0,
            )

            # clean degradation: the link survives and later messages flow
            pub.publish(StringMsg(data="still flowing"))
            assert sub.wait_for_messages(2, timeout=10.0)

            pub_protocol.flush()
            sub_protocol.flush()
            # the unproven publication is logged (evidence, not silence)
            out_entries = server.entries(
                component_id="/pub", direction=Direction.OUT, seq=1
            )
            assert len(out_entries) == 1
            assert not out_entries[0].peer_sig
        finally:
            pub_node.shutdown()
            sub_node.shutdown()

    def test_paper_faithful_default_never_retransmits(self, keypool):
        """With ``max_retransmits=0`` (the default) a lost ACK is treated
        as subscriber misbehavior: one timeout, no retransmission."""
        schedule = FaultSchedule(seed=1).script_range("connect", 1, "drop")
        config = AdlpConfig(key_bits=512, ack_timeout=0.1)
        server, pub_protocol, sub_protocol, pub_node, sub_node = make_pair(
            keypool, schedule, config
        )
        try:
            sub = sub_node.subscribe("/t", StringMsg, lambda m: None)
            pub = pub_node.advertise("/t", StringMsg)
            assert pub.wait_for_subscribers(1)
            pub.publish(StringMsg(data="one strike"))
            assert wait_for(
                lambda: pub_protocol.stats.ack_timeouts == 1, timeout=5.0
            )
            assert pub_protocol.stats.retransmits == 0
            # the paper's penalty applies: the link is dropped
            assert wait_for(lambda: pub.stats.link_errors == 1, timeout=5.0)
        finally:
            pub_node.shutdown()
            sub_node.shutdown()


class TestHandshakeRetries:
    def test_dropped_client_header_is_resent(self, keypool, monkeypatch):
        """The subscriber's first handshake header is dropped; the retrying
        handshake re-sends it and the connection still comes up."""
        monkeypatch.setattr(handshake, "HANDSHAKE_TIMEOUT", 0.6)
        schedule = FaultSchedule(seed=1).script("connect", 0, "drop")
        config = AdlpConfig(key_bits=512, ack_timeout=2.0)
        _, pub_protocol, sub_protocol, pub_node, sub_node = make_pair(
            keypool, schedule, config
        )
        try:
            sub = sub_node.subscribe("/t", StringMsg, lambda m: None)
            pub = pub_node.advertise("/t", StringMsg)
            assert pub.wait_for_subscribers(1, timeout=5.0)
            assert sub.wait_for_connection(timeout=5.0)
            pub.publish(StringMsg(data="after retried handshake"))
            assert sub.wait_for_messages(1)
        finally:
            pub_node.shutdown()
            sub_node.shutdown()

    def test_truncated_client_header_is_retried(self, keypool, monkeypatch):
        """A mangled (truncated) header frame is skipped by the server and
        the client's re-send completes the handshake."""
        monkeypatch.setattr(handshake, "HANDSHAKE_TIMEOUT", 0.6)
        schedule = FaultSchedule(seed=1).script("connect", 0, "truncate")
        config = AdlpConfig(key_bits=512, ack_timeout=2.0)
        _, pub_protocol, sub_protocol, pub_node, sub_node = make_pair(
            keypool, schedule, config
        )
        try:
            sub = sub_node.subscribe("/t", StringMsg, lambda m: None)
            pub = pub_node.advertise("/t", StringMsg)
            assert pub.wait_for_subscribers(1, timeout=5.0)
            assert sub.wait_for_connection(timeout=5.0)
            pub.publish(StringMsg(data="after mangled handshake"))
            assert sub.wait_for_messages(1)
        finally:
            pub_node.shutdown()
            sub_node.shutdown()
