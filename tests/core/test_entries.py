import pytest

from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.protocol import message_digest


class TestLogEntry:
    def test_roundtrip_full(self):
        entry = LogEntry(
            component_id="/pub",
            topic="/t",
            type_name="std/String",
            direction=Direction.OUT,
            seq=7,
            timestamp=123.456,
            scheme=Scheme.ADLP,
            data=b"payload",
            own_sig=b"\x01" * 64,
            peer_id="/sub",
            peer_hash=b"\x02" * 32,
            peer_sig=b"\x03" * 64,
        )
        assert LogEntry.decode(entry.encode()) == entry

    def test_roundtrip_aggregated(self):
        entry = LogEntry(
            component_id="/pub",
            topic="/t",
            type_name="std/String",
            direction=Direction.OUT,
            seq=1,
            scheme=Scheme.ADLP,
            aggregated=True,
            ack_peer_ids=["/a", "/b"],
            ack_peer_hashes=[b"\x01" * 32, b"\x02" * 32],
            ack_peer_sigs=[b"\x03" * 64, b"\x04" * 64],
        )
        decoded = LogEntry.decode(entry.encode())
        assert decoded.ack_peer_ids == ["/a", "/b"]
        assert decoded.ack_peer_hashes[1] == b"\x02" * 32

    def test_naive_entry_is_smaller(self):
        # Definition 2 uses only the basic fields; ADLP adds signatures.
        naive = LogEntry(
            component_id="/pub",
            topic="/t",
            type_name="std/String",
            direction=Direction.OUT,
            seq=1,
            timestamp=1.0,
            scheme=Scheme.NAIVE,
            data=b"x" * 20,
        )
        adlp = LogEntry(
            component_id="/pub",
            topic="/t",
            type_name="std/String",
            direction=Direction.OUT,
            seq=1,
            timestamp=1.0,
            scheme=Scheme.ADLP,
            data=b"x" * 20,
            own_sig=b"s" * 128,
            peer_id="/sub",
            peer_hash=b"h" * 32,
            peer_sig=b"t" * 128,
        )
        assert naive.encoded_size() < adlp.encoded_size()

    def test_direction_predicates(self):
        assert LogEntry(direction=Direction.OUT).is_publication
        assert LogEntry(direction=Direction.IN).is_subscription
        assert not LogEntry(direction=Direction.IN).is_publication

    def test_validate_meta_rejects_unknown_direction(self):
        entry = LogEntry(component_id="/a", topic="/t")
        with pytest.raises(ValueError):
            entry.validate_meta()

    def test_validate_meta_rejects_bad_names(self):
        entry = LogEntry(component_id="", topic="/t", direction=Direction.IN)
        with pytest.raises(Exception):
            entry.validate_meta()


class TestReportedHash:
    def test_from_data(self):
        entry = LogEntry(seq=5, data=b"payload")
        assert entry.reported_hash() == message_digest(5, b"payload")

    def test_from_hash_field(self):
        digest = message_digest(5, b"payload")
        entry = LogEntry(seq=5, data_hash=digest)
        assert entry.reported_hash() == digest

    def test_hash_field_takes_priority(self):
        digest = message_digest(1, b"claimed")
        entry = LogEntry(seq=1, data=b"other", data_hash=digest)
        assert entry.reported_hash() == digest

    def test_empty_when_nothing_reported(self):
        assert LogEntry(seq=1).reported_hash() == b""

    def test_key_identifies_transmission_view(self):
        a = LogEntry(component_id="/x", topic="/t", seq=1, direction=Direction.OUT)
        b = LogEntry(component_id="/x", topic="/t", seq=1, direction=Direction.IN)
        assert a.key() != b.key()
