"""The eager-verification option: subscribers can check the publisher's
signature before delivery (off the paper's measured path, but the natural
hardening when subscribers do not trust the transport's signing layer)."""

import pytest

from repro.adversary import GroundTruth, PublisherBehavior, UnfaithfulAdlpProtocol
from repro.core import AdlpConfig, AdlpProtocol, LogServer
from repro.middleware import Master, Node
from repro.middleware.msgtypes import StringMsg
from repro.util.concurrency import wait_for


class TestVerifyOnReceive:
    def test_invalid_wire_signature_blocked_before_delivery(self, keypool):
        """A publisher shipping garbage signatures (Figure 8 a) cannot get
        its data consumed by a verifying subscriber."""
        config = AdlpConfig(
            key_bits=512, verify_on_receive=True, require_ack=False
        )
        server = LogServer()
        truth = GroundTruth()
        pub_protocol = UnfaithfulAdlpProtocol(
            "/pub",
            server,
            truth,
            publisher_behavior=PublisherBehavior(send_invalid_signature=True),
            config=config,
            keypair=keypool[0],
        )
        sub_protocol = AdlpProtocol("/sub", server, config=config, keypair=keypool[1])
        master = Master()
        pub_node = Node("/pub", master, protocol=pub_protocol)
        sub_node = Node("/sub", master, protocol=sub_protocol)
        try:
            received = []
            sub_node.subscribe("/t", StringMsg, received.append)
            pub = pub_node.advertise("/t", StringMsg)
            assert pub.wait_for_subscribers(1)
            for i in range(3):
                pub.publish(StringMsg(data=f"m{i}"))
            assert wait_for(
                lambda: sub_protocol.stats.invalid_signatures >= 3, timeout=5.0
            )
            assert received == []  # nothing reached the application
        finally:
            pub_node.shutdown()
            sub_node.shutdown()

    def test_resolve_key_absent_for_remote_logger(self, keypool):
        """RemoteLogger exposes no keystore, so eager verification has no
        key source and resolve_key degrades to None."""
        from repro.core import LogServerEndpoint, RemoteLogger

        server = LogServer()
        endpoint = LogServerEndpoint(server)
        client = RemoteLogger(endpoint.address)
        try:
            protocol = AdlpProtocol(
                "/pub", client, config=AdlpConfig(key_bits=512), keypair=keypool[0]
            )
            assert protocol.resolve_key("/anyone") is None
            protocol.close()
        finally:
            client.close()
            endpoint.close()

    def test_valid_traffic_unaffected(self, keypool):
        config = AdlpConfig(key_bits=512, verify_on_receive=True)
        server = LogServer()
        master = Master()
        pub_protocol = AdlpProtocol("/pub", server, config=config, keypair=keypool[0])
        sub_protocol = AdlpProtocol("/sub", server, config=config, keypair=keypool[1])
        pub_node = Node("/pub", master, protocol=pub_protocol)
        sub_node = Node("/sub", master, protocol=sub_protocol)
        try:
            received = []
            sub = sub_node.subscribe("/t", StringMsg, received.append)
            pub = pub_node.advertise("/t", StringMsg)
            assert pub.wait_for_subscribers(1)
            pub.publish(StringMsg(data="ok"))
            assert sub.wait_for_messages(1)
            assert sub_protocol.stats.invalid_signatures == 0
        finally:
            pub_node.shutdown()
            sub_node.shutdown()
