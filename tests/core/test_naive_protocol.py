import pytest

from repro.core import Direction, LogServer, NaiveProtocol, Scheme
from repro.middleware import Master, Node
from repro.middleware.msgtypes import StringMsg
from repro.util.concurrency import wait_for


@pytest.fixture()
def naive_world():
    master = Master()
    server = LogServer()
    pub_protocol = NaiveProtocol("/pub", server.submit)
    sub_protocol = NaiveProtocol("/sub", server.submit)
    pub_node = Node("/pub", master, protocol=pub_protocol)
    sub_node = Node("/sub", master, protocol=sub_protocol)
    yield master, server, pub_node, sub_node, pub_protocol, sub_protocol
    pub_node.shutdown()
    sub_node.shutdown()


class TestNaiveProtocol:
    def test_both_sides_log_definition2_entries(self, naive_world):
        _, server, pub_node, sub_node, pub_protocol, sub_protocol = naive_world
        sub = sub_node.subscribe("/t", StringMsg, lambda m: None)
        pub = pub_node.advertise("/t", StringMsg)
        pub.wait_for_subscribers(1)
        for i in range(3):
            pub.publish(StringMsg(data=f"m{i}"))
        sub.wait_for_messages(3)
        pub_protocol.flush()
        sub_protocol.flush()
        outs = server.entries(component_id="/pub", direction=Direction.OUT)
        ins = server.entries(component_id="/sub", direction=Direction.IN)
        assert len(outs) == 3 and len(ins) == 3
        for e in outs + ins:
            assert e.scheme is Scheme.NAIVE
            assert e.data  # stores the data as-is (Table III "Base")
            assert not e.own_sig and not e.peer_sig  # no crypto material

    def test_wire_payload_identical_to_plain(self, naive_world):
        # Naive logging changes what is *logged*, not what crosses the wire.
        _, server, pub_node, sub_node, pub_protocol, sub_protocol = naive_world
        got = []
        sub = sub_node.subscribe("/t", StringMsg, got.append)
        pub = pub_node.advertise("/t", StringMsg)
        pub.wait_for_subscribers(1)
        pub.publish(StringMsg(data="hello"))
        sub.wait_for_messages(1)
        assert got[0].data == "hello"

    def test_publisher_logs_once_per_publication(self, naive_world):
        master, server, pub_node, _, pub_protocol, _ = naive_world
        extra = Node("/sub2", master, protocol=NaiveProtocol("/sub2", server.submit))
        try:
            s1 = pub_node  # placeholder to keep names clear
            subs = [
                n.subscribe("/t", StringMsg, lambda m: None)
                for n in (extra,)
            ]
            pub = pub_node.advertise("/t", StringMsg)
            pub.wait_for_subscribers(1)
            pub.publish(StringMsg(data="x"))
            wait_for(lambda: subs[0].stats.received >= 1)
            pub_protocol.flush()
            outs = server.entries(component_id="/pub", direction=Direction.OUT)
            assert len(outs) == 1  # not per subscriber
        finally:
            extra.shutdown()

    def test_subscriber_entry_records_publisher(self, naive_world):
        _, server, pub_node, sub_node, pub_protocol, sub_protocol = naive_world
        sub = sub_node.subscribe("/t", StringMsg, lambda m: None)
        pub = pub_node.advertise("/t", StringMsg)
        pub.wait_for_subscribers(1)
        pub.publish(StringMsg(data="x"))
        sub.wait_for_messages(1)
        sub_protocol.flush()
        ins = server.entries(component_id="/sub")
        assert ins[0].peer_id == "/pub"
