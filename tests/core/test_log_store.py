import pytest

from repro.core.log_store import FileLogStore, InMemoryLogStore
from repro.errors import LogIntegrityError


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        s = InMemoryLogStore()
    else:
        s = FileLogStore(str(tmp_path / "log.bin"))
    yield s
    s.close()


class TestLogStoreContract:
    def test_append_returns_indices(self, store):
        assert store.append(b"a") == 0
        assert store.append(b"b") == 1
        assert len(store) == 2

    def test_records_in_order(self, store):
        for payload in (b"one", b"two", b"three"):
            store.append(payload)
        assert store.records() == [b"one", b"two", b"three"]

    def test_total_bytes(self, store):
        store.append(b"1234")
        store.append(b"56")
        assert store.total_bytes == 6

    def test_verify_clean_store(self, store):
        store.append(b"x")
        store.verify()

    def test_head_changes_per_append(self, store):
        h0 = store.head()
        store.append(b"x")
        h1 = store.head()
        assert h0 != h1


class TestTamperDetection:
    def test_memory_tamper_detected(self):
        store = InMemoryLogStore()
        for i in range(5):
            store.append(f"record {i}".encode())
        store.tamper(2, b"evil")
        with pytest.raises(LogIntegrityError):
            store.verify()

    def test_file_tamper_detected(self, tmp_path):
        path = str(tmp_path / "log.bin")
        store = FileLogStore(path)
        store.append(b"record-aa")
        store.append(b"record-bb")
        store.close()
        with open(path, "r+b") as f:
            raw = f.read()
            index = raw.index(b"record-aa")
            f.seek(index)
            f.write(b"tampered!")
        with pytest.raises(LogIntegrityError):
            FileLogStore(path)


class TestFilePersistence:
    def test_reopen_preserves_records(self, tmp_path):
        path = str(tmp_path / "log.bin")
        store = FileLogStore(path)
        store.append(b"persisted")
        head = store.head()
        store.close()
        reopened = FileLogStore(path)
        assert reopened.records() == [b"persisted"]
        assert reopened.head() == head
        assert reopened.total_bytes == len(b"persisted")
        reopened.close()

    def test_append_after_reopen_continues_chain(self, tmp_path):
        path = str(tmp_path / "log.bin")
        store = FileLogStore(path)
        store.append(b"first")
        store.close()
        reopened = FileLogStore(path)
        assert reopened.append(b"second") == 1
        reopened.verify()
        assert reopened.records() == [b"first", b"second"]
        reopened.close()

    def test_truncated_file_detected(self, tmp_path):
        path = str(tmp_path / "log.bin")
        store = FileLogStore(path)
        store.append(b"some record data")
        store.close()
        with open(path, "r+b") as f:
            f.truncate(10)
        with pytest.raises(LogIntegrityError):
            FileLogStore(path)
