"""Failure injection: the protocol under infrastructure trouble.

The paper's design requires that ADLP never becomes a single point of
failure ("any failure at the log server does not interrupt a normal
operation of the ROS nodes") and that data keeps flowing across transient
link loss ("we assume that data is eventually delivered unless connection
is permanently lost").
"""

import threading
import time

import pytest

from repro.core import AdlpConfig, AdlpProtocol, LogServer
from repro.errors import LoggingError
from repro.middleware import Master, Node
from repro.middleware.msgtypes import StringMsg
from repro.util.concurrency import wait_for


class FlakyLogServer(LogServer):
    """A log server that can be taken down and brought back."""

    def __init__(self):
        super().__init__()
        self.down = threading.Event()
        self.rejected = 0

    def submit(self, entry):
        if self.down.is_set():
            self.rejected += 1
            raise LoggingError("log server outage")
        return super().submit(entry)

    def submit_batch(self, entries):
        # An outage takes down the whole ingestion surface: group-commit
        # batches fail exactly like per-entry submissions.
        if self.down.is_set():
            self.rejected += len(entries)
            raise LoggingError("log server outage")
        return super().submit_batch(entries)


class TestLoggerOutage:
    def test_data_plane_survives_logger_outage(self, keypool, fast_config):
        """Messages keep flowing while the logger is down; entries from the
        outage window are dropped (and counted), later ones arrive."""
        server = FlakyLogServer()
        master = Master()
        pub_protocol = AdlpProtocol("/pub", server, config=fast_config, keypair=keypool[0])
        sub_protocol = AdlpProtocol("/sub", server, config=fast_config, keypair=keypool[1])
        pub_node = Node("/pub", master, protocol=pub_protocol)
        sub_node = Node("/sub", master, protocol=sub_protocol)
        try:
            received = []
            sub = sub_node.subscribe("/t", StringMsg, received.append)
            pub = pub_node.advertise("/t", StringMsg)
            assert pub.wait_for_subscribers(1)

            pub.publish(StringMsg(data="before"))
            assert sub.wait_for_messages(1)
            pub_protocol.flush()
            sub_protocol.flush()
            baseline = len(server)

            server.down.set()
            for i in range(3):
                pub.publish(StringMsg(data=f"during {i}"))
            assert sub.wait_for_messages(4)  # delivery unaffected
            pub_protocol.flush()
            sub_protocol.flush()
            assert len(server) == baseline  # nothing ingested
            assert server.rejected > 0

            server.down.clear()
            pub.publish(StringMsg(data="after"))
            assert sub.wait_for_messages(5)
            assert wait_for(lambda: len(server) >= baseline + 2, timeout=5.0)
            dropped = (
                pub_protocol.logging_thread.dropped
                + sub_protocol.logging_thread.dropped
            )
            assert dropped > 0  # the outage is visible, not silent
        finally:
            pub_node.shutdown()
            sub_node.shutdown()


class TestLinkLoss:
    def test_subscriber_reconnects_and_resumes(self, keypool, fast_config):
        """Kill the live connection; the subscriber reconnects to the same
        publisher and later publications are delivered and logged."""
        server = LogServer()
        master = Master()
        pub_protocol = AdlpProtocol("/pub", server, config=fast_config, keypair=keypool[0])
        sub_protocol = AdlpProtocol("/sub", server, config=fast_config, keypair=keypool[1])
        pub_node = Node("/pub", master, protocol=pub_protocol)
        sub_node = Node("/sub", master, protocol=sub_protocol)
        try:
            received = []
            sub = sub_node.subscribe("/t", StringMsg, received.append)
            pub = pub_node.advertise("/t", StringMsg)
            assert pub.wait_for_subscribers(1)
            pub.publish(StringMsg(data="one"))
            assert sub.wait_for_messages(1)

            # sever the link from the publisher side
            with pub._links_lock:
                link = next(iter(pub._links.values()))
            link.connection.close()
            # subscriber notices, reconnects, publisher re-accepts
            assert wait_for(lambda: pub.num_connections >= 1, timeout=5.0)
            assert sub.wait_for_connection(timeout=5.0)

            # A publication racing the dead link is lost (pub/sub has no
            # redelivery, as in ROS); eventually publications flow again.
            deadline = time.monotonic() + 10.0
            while len(received) < 2 and time.monotonic() < deadline:
                pub.publish(StringMsg(data="again"))
                time.sleep(0.1)
            assert len(received) >= 2
            pub_protocol.flush()
            sub_protocol.flush()
            # every delivered transmission is fully logged on both sides
            sub_entries = server.entries(component_id="/sub")
            assert len(sub_entries) == len(received)
            delivered_seqs = {e.seq for e in sub_entries}
            for seq in delivered_seqs:
                assert server.entries(component_id="/pub", seq=seq)
        finally:
            pub_node.shutdown()
            sub_node.shutdown()


class TestQueueOverflow:
    def test_slow_subscriber_drops_oldest_not_newest(self, keypool):
        """QoS: a backlogged link drops the oldest frames; the audit stays
        consistent because undelivered publications simply have no
        subscriber entry AND no publisher ACK entry."""
        config = AdlpConfig(key_bits=512, ack_timeout=5.0)
        server = LogServer()
        master = Master()
        pub_protocol = AdlpProtocol("/pub", server, config=config, keypair=keypool[0])
        sub_protocol = AdlpProtocol("/sub", server, config=config, keypair=keypool[1])
        pub_node = Node("/pub", master, protocol=pub_protocol)
        sub_node = Node("/sub", master, protocol=sub_protocol)
        try:
            gate = threading.Event()
            received = []

            def slow_callback(msg):
                gate.wait(10.0)
                received.append(msg.data)

            sub = sub_node.subscribe("/t", StringMsg, slow_callback)
            pub = pub_node.advertise("/t", StringMsg, queue_size=2)
            assert pub.wait_for_subscribers(1)
            for i in range(12):
                pub.publish(StringMsg(data=f"m{i}"))
            time.sleep(0.3)
            gate.set()
            wait_for(lambda: pub.stats.dropped > 0, timeout=5.0)
            assert pub.stats.dropped > 0
            # the newest message eventually arrives
            assert wait_for(lambda: "m11" in received, timeout=10.0)
        finally:
            pub_node.shutdown()
            sub_node.shutdown()
