"""Batched submission over the remote logging RPC (``OP_SUBMIT_BATCH``).

One framed round trip carries the whole batch; the server must ingest it
in order, all-or-nothing with a server-side per-entry fallback for poison
records, and a dead server must spill the whole batch instead of raising.
"""

from __future__ import annotations

import pytest

from repro.core import LogServer, LogServerEndpoint, RemoteLogger
from repro.core.entries import Direction, LogEntry, Scheme
from repro.util.concurrency import wait_for


@pytest.fixture()
def endpoint():
    server = LogServer()
    endpoint = LogServerEndpoint(server)
    yield server, endpoint
    endpoint.close()


def make_entry(i: int) -> LogEntry:
    return LogEntry(
        component_id="/a",
        topic="/t",
        type_name="std/String",
        direction=Direction.OUT,
        seq=i,
        timestamp=float(i),
        scheme=Scheme.ADLP,
        data=b"remote-%04d" % i,
        own_sig=b"\x5a" * 16,
    )


class TestRemoteSubmitBatch:
    def test_batch_reaches_server_in_order(self, endpoint):
        server, ep = endpoint
        client = RemoteLogger(ep.address)
        entries = [make_entry(i) for i in range(1, 33)]
        client.submit_batch(entries)
        assert wait_for(lambda: len(server) == 32, timeout=5.0)
        assert [e.seq for e in server.entries()] == list(range(1, 33))
        client.close()

    def test_batched_commitment_equals_per_entry(self, endpoint):
        server, ep = endpoint
        entries = [make_entry(i) for i in range(1, 21)]
        client = RemoteLogger(ep.address)
        client.submit_batch(entries)
        assert wait_for(lambda: len(server) == 20, timeout=5.0)
        client.close()
        reference = LogServer()
        for entry in entries:
            reference.submit(entry)
        ours, theirs = server.commitment(), reference.commitment()
        assert (ours.chain_head, ours.merkle_root) == (
            theirs.chain_head,
            theirs.merkle_root,
        )

    def test_single_entry_batch_uses_plain_submit_frame(self, endpoint):
        server, ep = endpoint
        client = RemoteLogger(ep.address)
        client.submit_batch([make_entry(1)])
        assert wait_for(lambda: len(server) == 1, timeout=5.0)
        client.close()

    def test_empty_batch_is_noop(self, endpoint):
        server, ep = endpoint
        client = RemoteLogger(ep.address)
        assert client.submit_batch([]) == []
        client.close()
        assert len(server) == 0

    def test_poison_record_isolated_server_side(self, endpoint):
        """A batch with one undecodable record must not take down its
        batchmates: the endpoint retries per entry and rejects only the
        poison record."""
        server, ep = endpoint
        client = RemoteLogger(ep.address)
        batch = [make_entry(1).encode(), b"\xff\xffgarbage", make_entry(2).encode()]
        client.submit_batch(batch)
        assert wait_for(lambda: len(server) == 2, timeout=5.0)
        assert [e.seq for e in server.entries()] == [1, 2]
        assert wait_for(lambda: ep.rejected == 1, timeout=5.0)
        client.close()

    def test_dead_server_spills_whole_batch(self, endpoint, keypool):
        server, ep = endpoint
        client = RemoteLogger(ep.address)
        client.register_key("/a", keypool[0].public)
        ep.close()
        entries = [make_entry(i) for i in range(1, 9)]
        client.submit_batch(entries)  # must not raise
        assert client.spilled == 8
        assert client.dropped == 0
        client.close()

    def test_spilled_batch_resent_after_recovery(self, tmp_path):
        """A spilled batch drains oldest-first in ``submit_batch_max``-sized
        slices once the server is back -- from the disk FIFO too."""
        client = RemoteLogger(
            ("tcp", "127.0.0.1", 1),  # nothing listens yet
            reconnect_backoff=0.01,
            spill_capacity=3,  # overflow the memory queue onto disk
            spill_path=str(tmp_path / "s.spill"),
            submit_batch_max=4,
        )
        entries = [make_entry(i) for i in range(1, 11)]
        client.submit_batch(entries)
        assert client.spilled == 10

        server = LogServer()
        ep = LogServerEndpoint(server)
        try:
            client._address = ep.address  # server "comes back" here
            assert wait_for(lambda: client.flush_spill(), timeout=5.0)
            assert client.spilled == 0
            assert client.retries == 10
            assert client.dropped == 0
            assert wait_for(lambda: len(server) == 10, timeout=5.0)
            assert [e.seq for e in server.entries()] == list(range(1, 11))
        finally:
            ep.close()
            client.close()
