import threading
import time

from repro.core.entries import LogEntry
from repro.core.logging_thread import LoggingThread
from repro.util.concurrency import wait_for


def make_entry(seq=1):
    return LogEntry(component_id="/a", topic="/t", seq=seq)


class TestLoggingThread:
    def test_entries_reach_submit(self):
        received = []
        thread = LoggingThread("/a", lambda e: received.append(e) or 0)
        for i in range(5):
            thread.enqueue(make_entry(i + 1))
        assert thread.flush(2.0)
        assert [e.seq for e in received] == [1, 2, 3, 4, 5]
        thread.stop()

    def test_flush_waits_for_pending(self):
        gate = threading.Event()
        received = []

        def slow_submit(entry):
            gate.wait(2.0)
            received.append(entry)
            return 0

        thread = LoggingThread("/a", slow_submit)
        thread.enqueue(make_entry())
        assert not thread.flush(0.05)  # blocked submit -> flush times out
        gate.set()
        assert thread.flush(2.0)
        assert len(received) == 1
        thread.stop()

    def test_submit_errors_counted_not_raised(self):
        def failing_submit(entry):
            raise RuntimeError("logger down")

        thread = LoggingThread("/a", failing_submit)
        thread.enqueue(make_entry())
        assert wait_for(lambda: thread.dropped == 1, timeout=2.0)
        thread.stop()

    def test_stop_flushes_by_default(self):
        received = []
        thread = LoggingThread("/a", lambda e: received.append(e) or 0)
        for i in range(20):
            thread.enqueue(make_entry(i + 1))
        thread.stop()
        assert len(received) == 20

    def test_flush_when_idle_is_immediate(self):
        thread = LoggingThread("/a", lambda e: 0)
        t0 = time.monotonic()
        assert thread.flush(1.0)
        assert time.monotonic() - t0 < 0.5
        thread.stop()
