"""Regression tests for hot-path evidence-loss bugs.

Four fixes, one theme: evidence that exists must not silently evaporate.

1. An aggregated publisher entry whose window lapsed used to wait for a
   *later* ACK to flush it; on an idle topic it waited forever.  Expiry is
   now deadline-driven off the logging thread's tick.
2. Evicting an un-ACKed publication from the pending window was invisible;
   it is now counted (``pending_evicted``) and warned about once.
3. An ACK arriving after retransmit exhaustion was discarded as stale even
   though its publication was still pending; the proven entry is now
   submitted (``late_acks_recovered``).
4. The subscriber's ACK cache was bounded by count only; with
   ``ack_returns_data`` each cached ACK embeds the payload, so it is now
   bounded by bytes as well.
"""

from __future__ import annotations

import pytest

from repro.core import AdlpConfig, AdlpProtocol, LogServer
from repro.core import adlp_protocol as adlp_module
from repro.core.adlp_protocol import _AckAggregator
from repro.core.entries import LogEntry
from repro.core.protocol import AdlpAck, message_digest
from repro.util.clock import SimulatedClock
from repro.util.concurrency import wait_for

TOPIC = "/t"


class FakeConn:
    """Scripted connection: hands out queued frames, swallows sends."""

    def __init__(self, frames=()):
        self.frames = list(frames)
        self.sent = []
        self.closed = False

    def send_frame(self, frame):
        self.sent.append(frame)

    def recv_frame(self, timeout=None):
        if self.frames:
            return self.frames.pop(0)
        return None


def subscriber_ack(keypool, seq: int, payload: bytes) -> AdlpAck:
    digest = message_digest(seq, payload)
    return AdlpAck(
        seq=seq, data_hash=digest, signature=keypool[1].private.sign_digest(digest)
    )


class TestAggregatorDeadlineFlush:
    def test_flush_expired_uses_injected_clock(self):
        clock = SimulatedClock()
        flushed = []
        agg = _AckAggregator(window=5.0, flush=flushed.append, now=clock.now)
        agg.add(LogEntry(component_id="/p", topic=TOPIC, seq=1), "/s", b"h", b"sig")
        agg.flush_expired()
        assert flushed == []  # window not lapsed: still buffering
        clock.advance(5.0)
        agg.flush_expired()
        assert len(flushed) == 1
        assert flushed[0].aggregated
        agg.flush_expired()
        assert len(flushed) == 1  # flushing is not repeated

    def test_idle_topic_flushes_without_later_ack(self, keypool):
        """The regression: the last publication's aggregated entry used to
        sit in the buffer until another ACK arrived.  The logging thread's
        tick must flush it once the window lapses -- with no further
        protocol activity at all."""
        clock = SimulatedClock()
        server = LogServer()
        config = AdlpConfig(
            key_bits=512,
            aggregate_publisher_entries=True,
            aggregation_window=5.0,
        )
        protocol = AdlpProtocol(
            "/pub", server, config=config, keypair=keypool[0], clock=clock
        )
        try:
            pub_proto = protocol.publisher_protocol(TOPIC, "std/String")
            payload = b"last message"
            pub_proto.make_frame(1, payload)
            pub_proto._log_publication(
                1, "/sub0", ack=subscriber_ack(keypool, 1, payload)
            )
            # The window has not lapsed and no later ACK will ever arrive.
            assert protocol.flush(2.0)
            assert len(server) == 0
            clock.advance(6.0)
            # No protocol activity: only the logging thread's wakeup tick
            # can flush the buffer now.
            assert wait_for(lambda: len(server) == 1, timeout=3.0)
            entry = server.entries()[0]
            assert entry.aggregated
            assert entry.ack_peer_ids == ["/sub0"]
        finally:
            protocol.close()

    def test_close_still_flushes_unexpired_buffers(self, keypool):
        clock = SimulatedClock()
        server = LogServer()
        config = AdlpConfig(
            key_bits=512,
            aggregate_publisher_entries=True,
            aggregation_window=60.0,
        )
        protocol = AdlpProtocol(
            "/pub", server, config=config, keypair=keypool[0], clock=clock
        )
        try:
            pub_proto = protocol.publisher_protocol(TOPIC, "std/String")
            payload = b"m"
            pub_proto.make_frame(1, payload)
            pub_proto._log_publication(
                1, "/sub0", ack=subscriber_ack(keypool, 1, payload)
            )
            pub_proto.close()  # explicit close flushes regardless of window
            assert protocol.flush(2.0)
            assert len(server) == 1
        finally:
            protocol.close()


class TestPendingEvictionCounted:
    def test_eviction_bumps_counter(self, keypool, monkeypatch):
        monkeypatch.setattr(adlp_module, "_PENDING_CAPACITY", 4)
        server = LogServer()
        protocol = AdlpProtocol(
            "/pub", server, config=AdlpConfig(key_bits=512), keypair=keypool[0]
        )
        try:
            pub_proto = protocol.publisher_protocol(TOPIC, "std/String")
            for seq in range(1, 5):
                pub_proto.make_frame(seq, b"m%d" % seq)
            assert protocol.stats.pending_evicted == 0
            for seq in range(5, 8):
                pub_proto.make_frame(seq, b"m%d" % seq)
            assert protocol.stats.pending_evicted == 3
            assert "pending_evicted" in protocol.stats.as_dict()
        finally:
            protocol.close()

    def test_eviction_warns_once(self, keypool, monkeypatch, caplog):
        monkeypatch.setattr(adlp_module, "_PENDING_CAPACITY", 2)
        server = LogServer()
        protocol = AdlpProtocol(
            "/pub", server, config=AdlpConfig(key_bits=512), keypair=keypool[0]
        )
        try:
            pub_proto = protocol.publisher_protocol(TOPIC, "std/String")
            with caplog.at_level("WARNING", logger="repro.core.adlp_protocol"):
                for seq in range(1, 7):
                    pub_proto.make_frame(seq, b"x")
            warnings = [
                r for r in caplog.records if "evicted an un-ACKed" in r.message
            ]
            assert len(warnings) == 1  # one warning, not one per eviction
            assert protocol.stats.pending_evicted == 4
        finally:
            protocol.close()

    def test_evicted_ack_cannot_be_logged(self, keypool, monkeypatch):
        """The loss the counter makes visible: an ACK for an evicted seq
        produces no entry (there is nothing to log it against)."""
        monkeypatch.setattr(adlp_module, "_PENDING_CAPACITY", 1)
        server = LogServer()
        protocol = AdlpProtocol(
            "/pub", server, config=AdlpConfig(key_bits=512), keypair=keypool[0]
        )
        try:
            pub_proto = protocol.publisher_protocol(TOPIC, "std/String")
            pub_proto.make_frame(1, b"one")
            pub_proto.make_frame(2, b"two")  # evicts seq 1
            pub_proto._log_publication(1, "/sub", subscriber_ack(keypool, 1, b"one"))
            assert protocol.flush(2.0)
            assert len(server) == 0
            assert protocol.stats.pending_evicted == 1
        finally:
            protocol.close()


class TestLateAckRecovered:
    def test_late_ack_submits_proven_entry(self, keypool):
        server = LogServer()
        protocol = AdlpProtocol(
            "/pub", server, config=AdlpConfig(key_bits=512), keypair=keypool[0]
        )
        try:
            pub_proto = protocol.publisher_protocol(TOPIC, "std/String")
            pub_proto.make_frame(1, b"one")
            pub_proto.make_frame(2, b"two")
            ack1 = subscriber_ack(keypool, 1, b"one")
            ack2 = subscriber_ack(keypool, 2, b"two")
            conn = FakeConn([ack1.encode(), ack2.encode()])
            # Awaiting seq 2, the late ACK for the still-pending seq 1
            # arrives first: it must be recovered, not discarded.
            got = pub_proto._await_ack("/sub", conn, 2, timeout=1.0)
            assert got is not None and got.seq == 2
            assert protocol.stats.late_acks_recovered == 1
            assert protocol.stats.stale_frames == 0
            assert protocol.flush(2.0)
            entries = server.entries(component_id="/pub")
            assert [e.seq for e in entries] == [1]
            # The recovered entry is *proven*: it carries the subscriber's
            # signature over the acknowledged hash.
            assert entries[0].peer_id == "/sub"
            assert entries[0].peer_hash == message_digest(1, b"one")
            assert keypool[1].public.verify_digest(
                entries[0].peer_hash, entries[0].peer_sig
            )
        finally:
            protocol.close()

    def test_entry_stays_pending_for_other_links(self, keypool):
        """Recovery must not pop the publication: another subscriber link
        may still deliver (or recover) its own ACK for the same seq."""
        server = LogServer()
        protocol = AdlpProtocol(
            "/pub", server, config=AdlpConfig(key_bits=512), keypair=keypool[0]
        )
        try:
            pub_proto = protocol.publisher_protocol(TOPIC, "std/String")
            pub_proto.make_frame(1, b"one")
            pub_proto.make_frame(2, b"two")
            ack1 = subscriber_ack(keypool, 1, b"one")
            conn_a = FakeConn([ack1.encode(), subscriber_ack(keypool, 2, b"two").encode()])
            pub_proto._await_ack("/subA", conn_a, 2, timeout=1.0)
            conn_b = FakeConn([ack1.encode(), subscriber_ack(keypool, 2, b"two").encode()])
            pub_proto._await_ack("/subB", conn_b, 2, timeout=1.0)
            assert protocol.stats.late_acks_recovered == 2
            assert protocol.flush(2.0)
            peers = sorted(
                e.peer_id for e in server.entries(component_id="/pub", seq=1)
            )
            assert peers == ["/subA", "/subB"]
        finally:
            protocol.close()

    def test_truly_stale_ack_still_dropped(self, keypool):
        server = LogServer()
        protocol = AdlpProtocol(
            "/pub", server, config=AdlpConfig(key_bits=512), keypair=keypool[0]
        )
        try:
            pub_proto = protocol.publisher_protocol(TOPIC, "std/String")
            pub_proto.make_frame(2, b"two")
            # seq 99 was never published (not in the pending window).
            ghost = subscriber_ack(keypool, 99, b"zzz")
            conn = FakeConn(
                [ghost.encode(), subscriber_ack(keypool, 2, b"two").encode()]
            )
            got = pub_proto._await_ack("/sub", conn, 2, timeout=1.0)
            assert got is not None and got.seq == 2
            assert protocol.stats.stale_frames == 1
            assert protocol.stats.late_acks_recovered == 0
            assert protocol.flush(2.0)
            assert len(server) == 0
        finally:
            protocol.close()


class TestAckCacheByteBound:
    def test_cache_bounded_by_bytes(self, keypool, monkeypatch):
        monkeypatch.setattr(adlp_module, "_ACK_CACHE_MAX_BYTES", 1000)
        server = LogServer()
        protocol = AdlpProtocol(
            "/sub",
            server,
            config=AdlpConfig(key_bits=512, ack_returns_data=True),
            keypair=keypool[0],
        )
        try:
            sub_proto = protocol.subscriber_protocol(TOPIC, "std/String")
            raw = b"x" * 400
            for seq in range(1, 11):
                sub_proto._remember_ack(seq, raw)
            with sub_proto._ack_cache_lock:
                total = sum(len(v) for v in sub_proto._ack_cache.values())
                count = len(sub_proto._ack_cache)
                newest = next(reversed(sub_proto._ack_cache))
            assert total <= 1000
            assert count == 2  # 2 * 400 <= 1000 < 3 * 400
            assert newest == 10  # the newest ACK always survives
        finally:
            protocol.close()

    def test_single_oversized_ack_survives(self, keypool, monkeypatch):
        """The newest entry is kept even when it alone busts the byte cap:
        it is the ACK a retransmit will ask for."""
        monkeypatch.setattr(adlp_module, "_ACK_CACHE_MAX_BYTES", 100)
        server = LogServer()
        protocol = AdlpProtocol(
            "/sub", server, config=AdlpConfig(key_bits=512), keypair=keypool[0]
        )
        try:
            sub_proto = protocol.subscriber_protocol(TOPIC, "std/String")
            sub_proto._remember_ack(1, b"a" * 40)
            sub_proto._remember_ack(2, b"b" * 500)
            with sub_proto._ack_cache_lock:
                assert list(sub_proto._ack_cache) == [2]
        finally:
            protocol.close()

    def test_replacing_same_seq_does_not_leak_accounting(self, keypool):
        server = LogServer()
        protocol = AdlpProtocol(
            "/sub", server, config=AdlpConfig(key_bits=512), keypair=keypool[0]
        )
        try:
            sub_proto = protocol.subscriber_protocol(TOPIC, "std/String")
            for _ in range(50):
                sub_proto._remember_ack(7, b"y" * 123)
            with sub_proto._ack_cache_lock:
                assert sub_proto._ack_cache_bytes == 123
                assert len(sub_proto._ack_cache) == 1
        finally:
            protocol.close()

    def test_count_cap_still_applies(self, keypool, monkeypatch):
        monkeypatch.setattr(adlp_module, "_ACK_CACHE_CAPACITY", 5)
        server = LogServer()
        protocol = AdlpProtocol(
            "/sub", server, config=AdlpConfig(key_bits=512), keypair=keypool[0]
        )
        try:
            sub_proto = protocol.subscriber_protocol(TOPIC, "std/String")
            for seq in range(1, 20):
                sub_proto._remember_ack(seq, b"tiny")
            with sub_proto._ack_cache_lock:
                assert len(sub_proto._ack_cache) == 5
                assert list(sub_proto._ack_cache) == [15, 16, 17, 18, 19]
        finally:
            protocol.close()
