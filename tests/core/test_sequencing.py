from repro.core.sequencing import SequenceTracker


class TestSequenceTracker:
    def test_monotone_sequence_accepted(self):
        tracker = SequenceTracker()
        assert all(tracker.accept(i) for i in range(1, 6))
        assert tracker.stats.accepted == 5
        assert tracker.stats.stale == 0
        assert tracker.last == 5

    def test_replay_rejected(self):
        tracker = SequenceTracker()
        tracker.accept(3)
        assert not tracker.accept(3)
        assert not tracker.accept(2)
        assert tracker.stats.stale == 2

    def test_gap_counting(self):
        tracker = SequenceTracker()
        tracker.accept(1)
        tracker.accept(5)  # 2, 3, 4 skipped
        assert tracker.stats.gaps == 3

    def test_first_accept_counts_no_gap(self):
        tracker = SequenceTracker()
        tracker.accept(10)
        assert tracker.stats.gaps == 0

    def test_fresh_after_stale(self):
        tracker = SequenceTracker()
        tracker.accept(5)
        tracker.accept(2)
        assert tracker.accept(6)
