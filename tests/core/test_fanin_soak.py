"""Fleet-scale fan-in soak: 1000+ concurrent clients against ONE
event-loop endpoint, every submission acknowledged, zero acked-evidence
loss, and a clean store audit afterwards.

Deselected from tier-1 (see pyproject's addopts); run with
``pytest -m soak tests/core/test_fanin_soak.py``.
"""

import threading

import pytest

from repro.core import LogServer, LogServerEndpoint, RemoteLogger
from repro.core.entries import LogEntry, Scheme

pytestmark = pytest.mark.soak

CLIENTS = 1000
ENTRIES_PER_CLIENT = 3


def _entries(client_index: int):
    return [
        LogEntry(
            component_id=f"/node{client_index}",
            topic=f"/t{client_index % 32}",
            seq=seq,
            scheme=Scheme.ADLP,
            data=b"x" * 64,
        )
        for seq in range(1, ENTRIES_PER_CLIENT + 1)
    ]


class TestFanInSoak:
    def test_thousand_client_fan_in_no_acked_loss(self):
        server = LogServer()
        endpoint = LogServerEndpoint(server)
        peak = {"connections": 0}

        def sample_peak() -> None:
            peak["connections"] = len(endpoint._connections)

        # Every client connects, then the barrier's action samples the
        # endpoint's live connection count while ALL of them are open at
        # once -- the many-thousand-connection fan-in claim, measured.
        connected = threading.Barrier(CLIENTS, action=sample_peak)
        acked = [0] * CLIENTS
        errors = []

        def run_client(index: int) -> None:
            client = RemoteLogger(endpoint.address)
            try:
                client.health(timeout=30.0)  # establish the connection
                connected.wait(timeout=180.0)
                count = client.submit_batch_sync(
                    _entries(index), timeout=120.0
                )
                assert count > 0
                acked[index] = ENTRIES_PER_CLIENT
                stats = client.stats()
                assert stats["dropped"] == 0
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((index, exc))
            finally:
                client.close()

        threads = [
            threading.Thread(target=run_client, args=(i,), daemon=True)
            for i in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300.0)
        assert not any(thread.is_alive() for thread in threads)
        assert not errors, errors[:5]
        assert peak["connections"] >= CLIENTS
        # Zero acked-evidence loss: every acknowledged entry is in the log.
        assert sum(acked) == CLIENTS * ENTRIES_PER_CLIENT
        assert len(server) == CLIENTS * ENTRIES_PER_CLIENT
        # Clean audit: the store's hash chain and Merkle frontier check
        # out over the full fan-in ingest.
        server.verify_integrity()
        commitment = server.commitment()
        assert commitment.entries == CLIENTS * ENTRIES_PER_CLIENT
        endpoint.close()
