import pytest

from repro.core.policy import AdlpConfig


class TestAdlpConfig:
    def test_paper_defaults(self):
        config = AdlpConfig()
        assert config.key_bits == 1024  # the paper's RSA-1024
        assert config.subscriber_stores_hash  # h(D) by default
        assert config.require_ack  # withhold-until-ACK on
        assert not config.aggregate_publisher_entries

    def test_immutable(self):
        config = AdlpConfig()
        with pytest.raises(Exception):
            config.key_bits = 512

    def test_rejects_tiny_keys(self):
        with pytest.raises(ValueError):
            AdlpConfig(key_bits=64)

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            AdlpConfig(ack_timeout=0)

    def test_rejects_negative_window(self):
        with pytest.raises(ValueError):
            AdlpConfig(aggregation_window=-0.1)
