import pytest

from repro.core.policy import AdlpConfig


class TestAdlpConfig:
    def test_paper_defaults(self):
        config = AdlpConfig()
        assert config.key_bits == 1024  # the paper's RSA-1024
        assert config.subscriber_stores_hash  # h(D) by default
        assert config.require_ack  # withhold-until-ACK on
        assert not config.aggregate_publisher_entries

    def test_immutable(self):
        config = AdlpConfig()
        with pytest.raises(Exception):
            config.key_bits = 512

    def test_rejects_tiny_keys(self):
        with pytest.raises(ValueError):
            AdlpConfig(key_bits=64)

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            AdlpConfig(ack_timeout=0)

    def test_rejects_negative_window(self):
        with pytest.raises(ValueError):
            AdlpConfig(aggregation_window=-0.1)


class TestReplicationConfig:
    def test_defaults(self):
        from repro.core.policy import ReplicationConfig

        config = ReplicationConfig()
        assert config.replicas == ()
        assert config.quorum is None
        assert config.breaker_failure_threshold == 3
        assert config.breaker_reset_timeout == 0.5
        assert config.breaker_max_reset_timeout == 30.0
        assert config.breaker_jitter == 0.2
        assert config.health_timeout == 2.0
        assert config.probe_interval == 1.0
        assert config.fetch_batch == 1024

    def test_frozen(self):
        from dataclasses import FrozenInstanceError

        from repro.core.policy import ReplicationConfig

        config = ReplicationConfig()
        with pytest.raises(FrozenInstanceError):
            config.quorum = 5

    def test_quorum_for_derives_majority(self):
        from repro.core.policy import ReplicationConfig

        config = ReplicationConfig()
        assert config.quorum_for(1) == 1
        assert config.quorum_for(2) == 2
        assert config.quorum_for(3) == 2
        assert config.quorum_for(4) == 3
        assert config.quorum_for(5) == 3

    def test_quorum_for_explicit_override(self):
        from repro.core.policy import ReplicationConfig

        assert ReplicationConfig(quorum=1).quorum_for(5) == 1
        assert ReplicationConfig(quorum=5).quorum_for(5) == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"quorum": 0},
            {"breaker_failure_threshold": 0},
            {"breaker_reset_timeout": 0},
            {"breaker_reset_timeout": -1.0},
            {"breaker_max_reset_timeout": 0.1},  # below reset_timeout
            {"breaker_jitter": -0.1},
            {"breaker_jitter": 1.5},
            {"health_timeout": 0},
            {"probe_interval": 0},
            {"fetch_batch": 0},
        ],
    )
    def test_rejects_invalid_values(self, kwargs):
        from repro.core.policy import ReplicationConfig

        with pytest.raises(ValueError):
            ReplicationConfig(**kwargs)
