import pytest

from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.log_server import LogServer
from repro.errors import LoggingError, LogIntegrityError, UnknownComponentError


def entry(component="/a", topic="/t", direction=Direction.OUT, seq=1, data=b"d"):
    return LogEntry(
        component_id=component,
        topic=topic,
        type_name="std/String",
        direction=direction,
        seq=seq,
        scheme=Scheme.ADLP,
        data=data,
    )


class TestIngestion:
    def test_submit_decoded_entry(self):
        server = LogServer()
        index = server.submit(entry())
        assert index == 0
        assert len(server) == 1

    def test_submit_encoded_entry(self):
        server = LogServer()
        server.submit(entry(component="/remote").encode())
        assert server.entries()[0].component_id == "/remote"

    def test_undecodable_bytes_rejected(self):
        with pytest.raises(LoggingError):
            LogServer().submit(b"\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff")

    def test_total_bytes_counts_encoded_size(self):
        server = LogServer()
        e = entry()
        server.submit(e)
        assert server.total_bytes == len(e.encode())

    def test_bytes_by_component(self):
        server = LogServer()
        server.submit(entry(component="/a"))
        server.submit(entry(component="/a"))
        server.submit(entry(component="/b"))
        per = server.bytes_by_component()
        assert set(per) == {"/a", "/b"}
        assert per["/a"] == 2 * per["/b"]


class TestQueries:
    def test_filter_by_component_topic_direction_seq(self):
        server = LogServer()
        server.submit(entry(component="/a", topic="/t1", direction=Direction.OUT, seq=1))
        server.submit(entry(component="/b", topic="/t1", direction=Direction.IN, seq=1))
        server.submit(entry(component="/a", topic="/t2", direction=Direction.OUT, seq=2))
        assert len(server.entries(component_id="/a")) == 2
        assert len(server.entries(topic="/t1")) == 2
        assert len(server.entries(direction=Direction.IN)) == 1
        assert len(server.entries(seq=2)) == 1
        assert len(server.entries(component_id="/a", topic="/t2")) == 1

    def test_entries_in_ingestion_order(self):
        server = LogServer()
        for i in range(5):
            server.submit(entry(seq=i + 1))
        assert [e.seq for e in server.entries()] == [1, 2, 3, 4, 5]


class TestKeys:
    def test_register_and_fetch(self, keypool):
        server = LogServer()
        server.register_key("/a", keypool[0].public)
        assert server.public_key("/a") == keypool[0].public
        assert server.components() == ["/a"]

    def test_register_serialized_key(self, keypool):
        server = LogServer()
        server.register_key("/a", keypool[0].public.to_bytes())
        assert server.public_key("/a") == keypool[0].public

    def test_unknown_component(self):
        with pytest.raises(UnknownComponentError):
            LogServer().public_key("/ghost")


class TestIntegrity:
    def test_verify_clean(self):
        server = LogServer()
        server.submit(entry())
        server.verify_integrity()

    def test_tamper_detected(self):
        server = LogServer()
        server.submit(entry())
        server.submit(entry(seq=2))
        server.store.tamper(0, b"evil")
        with pytest.raises(LogIntegrityError):
            server.verify_integrity()

    def test_merkle_inclusion_proofs(self):
        server = LogServer()
        entries = [entry(seq=i + 1) for i in range(7)]
        for e in entries:
            server.submit(e)
        root = server.merkle_root()
        for i, e in enumerate(entries):
            assert server.prove_inclusion(i).verify(e.encode(), root)

    def test_merkle_root_changes_with_ingestion(self):
        server = LogServer()
        r0 = server.merkle_root()
        server.submit(entry())
        assert server.merkle_root() != r0


class TestCheckpointConcurrency:
    def test_checkpoint_during_live_submits_does_not_deadlock(self, tmp_path):
        """Regression: ``LogServer.checkpoint`` used to enter the durable
        store's lock first, while ``submit`` holds the server lock and then
        enters the store -- a concurrent external checkpoint (the CLI, a
        supervisor, an endpoint draining fire-and-forget frames) and a live
        submitter could deadlock on the inverted order."""
        import threading

        from repro.storage import DurableLogStore

        server = LogServer(
            store=DurableLogStore(str(tmp_path / "store"), fsync="never")
        )
        stop = threading.Event()
        errors = []

        def submitter():
            seq = 1
            while not stop.is_set():
                try:
                    server.submit(entry(seq=seq))
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return
                seq += 1

        def checkpointer():
            for _ in range(50):
                server.checkpoint()

        threads = [
            threading.Thread(target=submitter, daemon=True),
            threading.Thread(target=checkpointer, daemon=True),
        ]
        for thread in threads:
            thread.start()
        threads[1].join(timeout=60)  # wedges forever on the inverted order
        stop.set()
        threads[0].join(timeout=30)
        assert not any(t.is_alive() for t in threads), (
            "checkpoint deadlocked against a live submitter"
        )
        assert not errors
        server.verify_integrity()
        server.close()
