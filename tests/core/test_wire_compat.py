"""Envelope compatibility across protocol versions.

The v2 correlation envelope added ``corr_id`` to both wire messages.
Old peers must keep working in both directions:

- old client / new server: frames without ``corr_id`` are answered in
  FIFO order with ``corr_id=0`` echoed, which old response schemas skip
  as an unknown field;
- new client / old server: replies carry no ``corr_id``, so the client
  falls back to FIFO matching -- and a timeout drops the connection
  (exactly the pre-envelope behavior), because an uncorrelated late
  reply could otherwise be matched to the wrong exchange.
"""

import threading
from collections import deque

import pytest

from repro.core import LogServer, LogServerEndpoint, RemoteLogger
from repro.core.entries import LogEntry, Scheme
from repro.core.remote import (
    OP_HEALTH,
    OP_REGISTER_KEY,
    OP_SUBMIT,
    OP_SUBMIT_BATCH,
    LoggerResponse,
    RemoteUnavailable,
)
from repro.middleware.transport.base import ConnectionClosed, Transport
from repro.middleware.transport.tcp import TcpTransport
from repro.serialization import (
    WireMessage,
    boolean,
    bytes_,
    repeated,
    string,
    uint64,
)


class OldLoggerRequest(WireMessage):
    """The pre-envelope request schema: same tags, no ``corr_id`` (14).
    Encoding one of these is byte-identical to what a pre-pipelining
    client puts on the wire."""

    op = uint64(1)
    component_id = string(2)
    key_bytes = bytes_(3)
    entry_bytes = bytes_(4)
    start = uint64(5)
    count = uint64(6)
    entry_batch = repeated(bytes_(7))
    shard = uint64(8)
    sync = boolean(9)
    deadline_ms = uint64(10)


class OldLoggerResponse(WireMessage):
    """The pre-envelope response schema: no ``corr_id`` (21).  Decoding a
    new server's reply with this schema exercises the unknown-field skip
    an old client depends on."""

    ok = boolean(1)
    error = string(2)
    entries = uint64(3)
    chain_head = bytes_(4)
    merkle_root = bytes_(5)
    total_bytes = uint64(6)
    records = repeated(bytes_(7))
    shards = uint64(10)
    code = uint64(12)


def _entry(seq: int) -> LogEntry:
    return LogEntry(
        component_id="/a", topic="/t", seq=seq, scheme=Scheme.ADLP
    )


class TestOldClientNewServer:
    @pytest.fixture()
    def endpoint(self):
        server = LogServer()
        endpoint = LogServerEndpoint(server)
        yield server, endpoint
        endpoint.close()

    def test_uncorrelated_frames_answered_fifo_with_zero_echo(self, endpoint):
        server, ep = endpoint
        conn = TcpTransport().connect(ep.address)
        try:
            conn.send_frame(OldLoggerRequest(op=OP_HEALTH).encode())
            frame = conn.recv_frame(timeout=5.0)
            old_view = OldLoggerResponse.decode(frame)
            assert old_view.ok  # corr_id=21 skipped as unknown
            assert LoggerResponse.decode(frame).corr_id == 0

            # Two pipelined old-style sync submits: replies come back in
            # FIFO order (the only order an old client can match on).
            conn.send_frame(
                OldLoggerRequest(
                    op=OP_SUBMIT, entry_bytes=_entry(1).encode(), sync=True
                ).encode()
            )
            conn.send_frame(
                OldLoggerRequest(
                    op=OP_SUBMIT, entry_bytes=_entry(2).encode(), sync=True
                ).encode()
            )
            first = OldLoggerResponse.decode(conn.recv_frame(timeout=5.0))
            second = OldLoggerResponse.decode(conn.recv_frame(timeout=5.0))
            assert first.ok and second.ok
            assert (int(first.entries), int(second.entries)) == (1, 2)
            assert len(server) == 2
        finally:
            conn.close()

    def test_old_style_registration_and_batch(self, endpoint, keypool):
        server, ep = endpoint
        conn = TcpTransport().connect(ep.address)
        try:
            conn.send_frame(
                OldLoggerRequest(
                    op=OP_REGISTER_KEY,
                    component_id="/a",
                    key_bytes=keypool[0].public.to_bytes(),
                ).encode()
            )
            reply = OldLoggerResponse.decode(conn.recv_frame(timeout=5.0))
            assert reply.ok
            assert server.public_key("/a") == keypool[0].public

            batch = [_entry(i).encode() for i in range(1, 4)]
            conn.send_frame(
                OldLoggerRequest(
                    op=OP_SUBMIT_BATCH, entry_batch=batch, sync=True
                ).encode()
            )
            reply = OldLoggerResponse.decode(conn.recv_frame(timeout=5.0))
            assert reply.ok
            assert int(reply.entries) == 3
        finally:
            conn.close()


class _CountingTransport(Transport):
    def __init__(self):
        self._inner = TcpTransport()
        self.connects = 0

    def connect(self, address):
        self.connects += 1
        return self._inner.connect(address)


class _OldServer:
    """A pre-envelope log server: decodes with the old schema (so the
    request's ``corr_id`` is invisible), answers strictly in FIFO order
    with old-schema responses (no ``corr_id``).  ``script`` behaviors:
    "reply" answers, "park" swallows one request (forcing a client
    timeout)."""

    def __init__(self):
        self._transport = TcpTransport()
        self.listener = self._transport.listen()
        self.script = deque()
        self.accepted = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    @property
    def address(self):
        return self.listener.address

    def _serve(self) -> None:
        while not self._stop.is_set():
            conn = self.listener.accept(timeout=0.2)
            if conn is None:
                continue
            self.accepted += 1
            entries = 0
            while not self._stop.is_set():
                try:
                    frame = conn.recv_frame(timeout=0.1)
                except ConnectionClosed:
                    break
                if frame is None:
                    continue
                request = OldLoggerRequest.decode(frame)
                if self.script and self.script.popleft() == "park":
                    continue  # never answered: the client must time out
                if int(request.op) == OP_SUBMIT_BATCH and request.sync:
                    entries += len(list(request.entry_batch))
                conn.send_frame(
                    OldLoggerResponse(ok=True, entries=entries).encode()
                )
            conn.close()

    def close(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        self.listener.close()


class TestNewClientOldServer:
    def test_fifo_fallback_matches_replies_in_order(self):
        server = _OldServer()
        transport = _CountingTransport()
        client = RemoteLogger(server.address, transport=transport)
        try:
            client.health(timeout=5.0)
            assert client.submit_batch_sync(
                [_entry(i) for i in range(1, 4)], timeout=5.0
            ) == 3
            assert int(client.health(timeout=5.0).entries) == 3
            assert transport.connects == 1
            assert client.stats()["late_replies_discarded"] == 0
        finally:
            client.close()
            server.close()

    def test_timeout_against_old_server_drops_connection(self):
        """Without correlation ids a late reply would FIFO-match the NEXT
        exchange, so a timeout must drop the connection -- the exact
        pre-envelope discipline, preserved for old servers only."""
        server = _OldServer()
        transport = _CountingTransport()
        client = RemoteLogger(
            server.address, transport=transport, reconnect_backoff=0.001
        )
        try:
            client.health(timeout=5.0)  # replies carry no corr id
            server.script.append("park")
            with pytest.raises(RemoteUnavailable):
                client.health(timeout=0.3)
            # The uncorrelated connection was dropped; the next RPC runs
            # on a fresh one and is answered cleanly.
            client.health(timeout=5.0)
            assert transport.connects == 2
            assert server.accepted == 2
        finally:
            client.close()
            server.close()
