import pytest

from repro.core.protocol import AdlpAck, AdlpMessage, message_digest
from repro.crypto.hashing import data_digest
from repro.errors import ProtocolError


class TestMessageDigest:
    def test_matches_crypto_layer(self):
        assert message_digest(3, b"d") == data_digest(3, b"d")

    def test_seq_sensitivity(self):
        assert message_digest(1, b"d") != message_digest(2, b"d")


class TestAdlpMessage:
    def test_roundtrip(self):
        msg = AdlpMessage(seq=9, payload=b"data", signature=b"s" * 128)
        parsed = AdlpMessage.parse(msg.encode())
        assert (parsed.seq, parsed.payload, parsed.signature) == (
            9,
            b"data",
            b"s" * 128,
        )

    def test_missing_signature_rejected(self):
        raw = AdlpMessage(seq=1, payload=b"d").encode()
        with pytest.raises(ProtocolError):
            AdlpMessage.parse(raw)

    def test_garbage_rejected(self):
        with pytest.raises(ProtocolError):
            AdlpMessage.parse(b"\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff")

    def test_envelope_overhead_close_to_paper(self, keypair_1024):
        # Paper: message size = |D| + 4 (preamble) + 128 (signature).  Our
        # envelope adds the 128-byte signature plus a few tag/length bytes.
        payload = b"p" * 8705
        digest = message_digest(1, payload)
        sig = keypair_1024.private.sign_digest(digest)
        raw = AdlpMessage(seq=1, payload=payload, signature=sig).encode()
        overhead = len(raw) - len(payload)
        assert 128 <= overhead <= 128 + 16


class TestAdlpAck:
    def test_roundtrip_hash_form(self):
        digest = message_digest(2, b"data")
        ack = AdlpAck(seq=2, data_hash=digest, signature=b"s" * 128)
        parsed = AdlpAck.parse(ack.encode())
        assert parsed.acknowledged_hash() == digest

    def test_roundtrip_data_form(self):
        # Section IV-A: subscriber may return the data itself when small.
        ack = AdlpAck(seq=2, signature=b"s" * 128, returns_data=True, payload=b"data")
        parsed = AdlpAck.parse(ack.encode())
        assert parsed.acknowledged_hash() == message_digest(2, b"data")

    def test_no_commitment_rejected(self):
        raw = AdlpAck(seq=1, signature=b"s").encode()
        # has signature but neither hash nor data
        with pytest.raises(ProtocolError):
            AdlpAck.parse(raw)

    def test_missing_signature_rejected(self):
        raw = AdlpAck(seq=1, data_hash=b"h" * 32).encode()
        with pytest.raises(ProtocolError):
            AdlpAck.parse(raw)

    def test_ack_size_close_to_paper(self, keypair_1024):
        # Paper: fixed 160-byte ACK (32-byte hash + 128-byte signature).
        digest = message_digest(1, b"payload")
        sig = keypair_1024.private.sign_digest(digest)
        raw = AdlpAck(seq=1, data_hash=digest, signature=sig).encode()
        assert 160 <= len(raw) <= 160 + 12  # plus wire tags/lengths
