"""Group-commit batched submission: equivalence, atomicity, fallback.

The invariant every test here leans on: submitting the same entries
batched or one at a time must leave the trusted logger in a *byte
identical* state -- same chain head, same Merkle root, same counters.
Batching is an optimization of the submission path, never a different
log.
"""

from __future__ import annotations

import pytest

from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.log_server import LogServer
from repro.core.log_store import InMemoryLogStore, LogStore
from repro.core.logging_thread import LoggingThread
from repro.errors import LoggingError
from repro.storage.durable_store import DurableLogStore
from repro.util.concurrency import wait_for


def make_entry(i: int, component: str = "/pub") -> LogEntry:
    return LogEntry(
        component_id=component,
        topic="/t",
        type_name="std/String",
        direction=Direction.OUT,
        seq=i,
        timestamp=float(i),
        scheme=Scheme.ADLP,
        data=b"payload-%04d" % i,
        own_sig=b"\x5a" * 16,
    )


def commitment_tuple(server: LogServer):
    c = server.commitment()
    return (c.entries, c.chain_head, c.merkle_root)


class TestLogStoreAppendBatch:
    def test_in_memory_batch_equals_loop(self):
        records = [b"r%d" % i for i in range(10)]
        a, b = InMemoryLogStore(), InMemoryLogStore()
        indices = a.append_batch(records)
        for record in records:
            b.append(record)
        assert indices == list(range(10))
        assert a.records() == b.records()
        assert a.head() == b.head()

    def test_base_class_default_loops(self):
        class Minimal(LogStore):
            def __init__(self):
                super().__init__()
                self.rows = []

            def append(self, record):
                self.rows.append(record)
                return len(self.rows) - 1

            def records(self):
                return list(self.rows)

            def __len__(self):
                return len(self.rows)

        store = Minimal()
        assert store.append_batch([b"a", b"b"]) == [0, 1]
        assert store.rows == [b"a", b"b"]

    def test_durable_batch_equals_loop(self, tmp_path):
        records = [b"record-%04d" % i for i in range(25)]
        batched = DurableLogStore(str(tmp_path / "batched"), fsync="always")
        looped = DurableLogStore(str(tmp_path / "looped"), fsync="always")
        indices = batched.append_batch(records)
        for record in records:
            looped.append(record)
        assert indices == list(range(25))
        assert batched.head() == looped.head()
        assert batched.merkle_root() == looped.merkle_root()
        assert batched.records() == looped.records()
        batched.verify()
        batched.close()
        looped.close()

    def test_durable_batch_survives_reopen(self, tmp_path):
        records = [b"record-%04d" % i for i in range(12)]
        store = DurableLogStore(str(tmp_path / "s"), fsync="always")
        store.append_batch(records)
        head, root = store.head(), store.merkle_root()
        store.close()
        reopened = DurableLogStore(str(tmp_path / "s"), fsync="always")
        assert len(reopened) == 12
        assert reopened.head() == head
        assert reopened.merkle_root() == root
        reopened.close()

    def test_empty_batch_is_noop(self, tmp_path):
        store = DurableLogStore(str(tmp_path / "s"))
        assert store.append_batch([]) == []
        assert len(store) == 0
        store.close()


class TestLogServerSubmitBatch:
    def test_batched_commitment_identical_to_per_entry(self):
        entries = [make_entry(i) for i in range(1, 21)]
        batched, looped = LogServer(), LogServer()
        indices = batched.submit_batch(entries)
        for entry in entries:
            looped.submit(entry)
        assert indices == list(range(20))
        assert commitment_tuple(batched) == commitment_tuple(looped)
        assert batched.total_bytes == looped.total_bytes
        assert batched.bytes_by_component() == looped.bytes_by_component()

    def test_accepts_encoded_records(self):
        entries = [make_entry(i) for i in range(1, 6)]
        a, b = LogServer(), LogServer()
        a.submit_batch([e.encode() for e in entries])
        b.submit_batch(entries)
        assert commitment_tuple(a) == commitment_tuple(b)

    def test_empty_batch(self):
        server = LogServer()
        assert server.submit_batch([]) == []
        assert len(server) == 0

    def test_undecodable_record_rejects_whole_batch(self):
        server = LogServer()
        batch = [make_entry(1), b"\xff\xffgarbage", make_entry(2)]
        before = commitment_tuple(server)
        with pytest.raises(LoggingError):
            server.submit_batch(batch)
        # All-or-nothing: nothing from the batch landed.
        assert commitment_tuple(server) == before
        assert len(server) == 0
        assert server.rejected_submissions == 1

    def test_store_failure_rolls_back_derived_state(self):
        class ExplodingStore(InMemoryLogStore):
            def __init__(self, explode_after: int):
                super().__init__()
                self._explode_after = explode_after

            def append_batch(self, records):
                # Non-atomic store: commits a prefix, then dies.
                for record in records[: self._explode_after]:
                    self.append(record)
                raise IOError("disk died mid-batch")

        store = ExplodingStore(explode_after=2)
        server = LogServer(store)
        entries = [make_entry(i) for i in range(1, 6)]
        with pytest.raises(IOError):
            server.submit_batch(entries)
        # Derived state rolled back to exactly the landed prefix, so the
        # server still equals a per-entry run over that prefix.
        reference = LogServer()
        for entry in entries[:2]:
            reference.submit(entry)
        assert commitment_tuple(server) == commitment_tuple(reference)
        assert server.bytes_by_component() == reference.bytes_by_component()
        server.verify_integrity()

    def test_observers_see_batch_in_submission_order(self):
        server = LogServer()
        seen = []
        server.add_observer(lambda e: seen.append(e.seq))
        server.submit_batch([make_entry(i) for i in range(1, 6)])
        assert seen == [1, 2, 3, 4, 5]

    def test_batch_interleaved_with_singles(self):
        entries = [make_entry(i) for i in range(1, 16)]
        mixed, looped = LogServer(), LogServer()
        mixed.submit(entries[0])
        mixed.submit_batch(entries[1:8])
        mixed.submit(entries[8])
        mixed.submit_batch(entries[9:])
        for entry in entries:
            looped.submit(entry)
        assert commitment_tuple(mixed) == commitment_tuple(looped)


class TestPropertyBatchedEqualsPerEntry:
    def test_random_batch_splits_commitment_identical(self, rng):
        """Any partition of a random entry stream into batches yields the
        same commitment as per-entry submission (seeded via PYTEST_SEED)."""
        entries = [
            LogEntry(
                component_id=rng.choice(["/pub", "/sub0", "/sub1"]),
                topic=rng.choice(["/t", "/u"]),
                type_name="std/String",
                direction=rng.choice([Direction.OUT, Direction.IN]),
                seq=i,
                timestamp=float(i),
                scheme=Scheme.ADLP,
                data=bytes(rng.getrandbits(8) for _ in range(rng.randrange(0, 80))),
                own_sig=bytes(rng.getrandbits(8) for _ in range(16)),
            )
            for i in range(1, 101)
        ]
        looped = LogServer()
        for entry in entries:
            looped.submit(entry)
        for _ in range(5):
            batched = LogServer()
            i = 0
            while i < len(entries):
                size = rng.randrange(1, 17)
                batched.submit_batch(entries[i : i + size])
                i += size
            assert commitment_tuple(batched) == commitment_tuple(looped)
            assert batched.total_bytes == looped.total_bytes

    def test_durable_random_splits_match(self, rng, tmp_path):
        records = [
            bytes(rng.getrandbits(8) for _ in range(rng.randrange(1, 64)))
            for _ in range(60)
        ]
        looped = DurableLogStore(str(tmp_path / "looped"), fsync="never")
        for record in records:
            looped.append(record)
        batched = DurableLogStore(str(tmp_path / "batched"), fsync="never")
        i = 0
        while i < len(records):
            size = rng.randrange(1, 9)
            batched.append_batch(records[i : i + size])
            i += size
        assert batched.head() == looped.head()
        assert batched.merkle_root() == looped.merkle_root()
        batched.close()
        looped.close()


class TestLoggingThreadBatching:
    def test_batch_max_validated(self):
        with pytest.raises(ValueError):
            LoggingThread("/a", lambda e: 0, batch_max=0)

    def test_drains_batches_through_submit_batch(self):
        server = LogServer()
        thread = LoggingThread(
            "/a",
            server.submit,
            submit_batch=server.submit_batch,
            batch_max=16,
        )
        # Stop the worker briefly? No: enqueue fast and flush; some calls
        # will batch, all must land, in order.
        entries = [make_entry(i) for i in range(1, 201)]
        for entry in entries:
            thread.enqueue(entry)
        assert thread.flush(5.0)
        thread.stop()
        assert len(server) == 200
        assert [e.seq for e in server.entries()] == list(range(1, 201))
        reference = LogServer()
        for entry in entries:
            reference.submit(entry)
        assert commitment_tuple(server) == commitment_tuple(reference)

    def test_batched_counters_move(self):
        server = LogServer()
        thread = LoggingThread(
            "/a", server.submit, submit_batch=server.submit_batch, batch_max=64
        )
        for i in range(1, 501):
            thread.enqueue(make_entry(i))
        assert thread.flush(5.0)
        thread.stop()
        assert len(server) == 500
        # The exact split depends on scheduling, but with 500 entries and a
        # 0.1 s poll some multi-entry drains are effectively certain.
        assert thread.batched > 0
        assert thread.batches > 0

    def test_poison_entry_isolated_by_fallback(self):
        server = LogServer()
        thread = LoggingThread(
            "/a", server.submit, submit_batch=server.submit_batch, batch_max=32
        )
        # Pause the worker's intake long enough to force one batch
        # containing the poison record, by enqueueing everything before the
        # first drain can finish.
        good = [make_entry(i) for i in range(1, 11)]
        for entry in good[:5]:
            thread.enqueue(entry)
        thread.enqueue(b"\xff\xffnot-an-entry")
        for entry in good[5:]:
            thread.enqueue(entry)
        assert thread.flush(5.0)
        thread.stop()
        # The ten good entries all landed exactly once; the poison record
        # was dropped alone, not with its batchmates.
        assert [e.seq for e in server.entries()] == list(range(1, 11))
        assert thread.dropped == 1

    def test_tick_runs_on_idle_and_after_drains(self):
        ticks = []
        thread = LoggingThread(
            "/a", lambda e: 0, tick=lambda: ticks.append(1), batch_max=4
        )
        thread.enqueue(make_entry(1))
        assert thread.flush(2.0)
        assert wait_for(lambda: len(ticks) >= 2, timeout=2.0)
        thread.stop()

    def test_tick_errors_do_not_kill_worker(self):
        def bad_tick():
            raise RuntimeError("maintenance trouble")

        server = LogServer()
        thread = LoggingThread("/a", server.submit, tick=bad_tick)
        thread.enqueue(make_entry(1))
        assert thread.flush(2.0)
        thread.enqueue(make_entry(2))
        assert thread.flush(2.0)
        thread.stop()
        assert len(server) == 2
