"""The remote log server: registration, submission, failure tolerance."""

import pytest

from repro.core import (
    AdlpConfig,
    AdlpProtocol,
    Direction,
    LogServer,
    LogServerEndpoint,
    RemoteLogger,
)
from repro.core.entries import LogEntry, Scheme
from repro.errors import LoggingError
from repro.middleware import Master, Node
from repro.middleware.msgtypes import StringMsg
from repro.util.concurrency import wait_for


@pytest.fixture()
def endpoint():
    server = LogServer()
    endpoint = LogServerEndpoint(server)
    yield server, endpoint
    endpoint.close()


class TestRemoteLogger:
    def test_key_registration_roundtrip(self, endpoint, keypool):
        server, ep = endpoint
        client = RemoteLogger(ep.address)
        client.register_key("/a", keypool[0].public)
        assert server.public_key("/a") == keypool[0].public
        client.close()

    def test_conflicting_key_rejected_remotely(self, endpoint, keypool):
        _, ep = endpoint
        client = RemoteLogger(ep.address)
        client.register_key("/a", keypool[0].public)
        with pytest.raises(LoggingError):
            client.register_key("/a", keypool[1].public)
        client.close()

    def test_submit_reaches_server(self, endpoint):
        server, ep = endpoint
        client = RemoteLogger(ep.address)
        entry = LogEntry(
            component_id="/a",
            topic="/t",
            type_name="std/String",
            direction=Direction.OUT,
            seq=1,
            scheme=Scheme.ADLP,
            data=b"remote",
        )
        client.submit(entry)
        assert wait_for(lambda: len(server) == 1, timeout=2.0)
        assert server.entries()[0].data == b"remote"
        client.close()

    def test_unreachable_server_fails_registration(self, keypool):
        client = RemoteLogger(("tcp", "127.0.0.1", 1))  # nothing listens
        with pytest.raises(LoggingError):
            client.register_key("/a", keypool[0].public)
        client.close()

    def test_submit_tolerates_dead_server(self, endpoint, keypool):
        """The paper's no-single-point-of-failure property: once running,
        a logger failure must not raise into the component.  Entries from
        the outage are parked in the spill queue, not silently lost."""
        server, ep = endpoint
        client = RemoteLogger(ep.address)
        client.register_key("/a", keypool[0].public)
        ep.close()
        entry = LogEntry(component_id="/a", topic="/t", seq=1)
        for _ in range(3):
            client.submit(entry)  # must not raise
        assert client.spilled >= 1
        assert client.dropped == 0  # parked, not lost
        client.close()

    def test_spilled_entries_resent_after_recovery(self, keypool):
        """Entries spilled while the server is down are re-sent (oldest
        first) once it comes back."""
        client = RemoteLogger(("tcp", "127.0.0.1", 1), reconnect_backoff=0.01)
        entries = [
            LogEntry(component_id="/a", topic="/t", seq=i, scheme=Scheme.ADLP)
            for i in range(1, 4)
        ]
        for entry in entries:
            client.submit(entry)  # nothing listens yet: all spill
        assert client.spilled == 3

        server = LogServer()
        ep = LogServerEndpoint(server)
        try:
            client._address = ep.address  # server "comes back" here
            wait_for(lambda: client.flush_spill(), timeout=5.0)
            assert client.spilled == 0
            assert client.retries == 3
            assert client.dropped == 0
            assert wait_for(lambda: len(server) == 3, timeout=5.0)
            assert [e.seq for e in server.entries()] == [1, 2, 3]
        finally:
            ep.close()
            client.close()

    def test_spill_queue_is_bounded(self):
        """Overflowing the spill queue evicts the oldest entry and counts
        it as dropped -- bounded memory, visible loss."""
        client = RemoteLogger(
            ("tcp", "127.0.0.1", 1), spill_capacity=5, reconnect_backoff=10.0
        )
        for i in range(8):
            client.submit(LogEntry(component_id="/a", topic="/t", seq=i))
        assert client.spilled == 5
        assert client.dropped == 3
        client.close()

    def test_overflow_spills_to_disk_when_configured(self, tmp_path):
        """With a ``spill_path`` the bounded memory queue overflows to disk
        instead of dropping: evidence survives arbitrarily long outages."""
        client = RemoteLogger(
            ("tcp", "127.0.0.1", 1),
            spill_capacity=5,
            reconnect_backoff=10.0,
            spill_path=str(tmp_path / "spill.dat"),
        )
        for i in range(8):
            client.submit(LogEntry(component_id="/a", topic="/t", seq=i))
        assert client.spilled == 8  # memory (5) + disk (3)
        assert client.spilled_to_disk == 3
        assert client.dropped == 0
        stats = client.stats()
        assert stats["spilled"] == 8
        assert stats["spilled_to_disk"] == 3
        assert stats["dropped"] == 0
        client.close()

    def test_overflow_warning_fires_once(self, tmp_path, caplog):
        client = RemoteLogger(
            ("tcp", "127.0.0.1", 1),
            spill_capacity=2,
            reconnect_backoff=10.0,
            spill_path=str(tmp_path / "spill.dat"),
        )
        with caplog.at_level("WARNING", logger="repro.core.remote"):
            for i in range(10):
                client.submit(LogEntry(component_id="/a", topic="/t", seq=i))
        warnings = [
            r for r in caplog.records if "spill queue" in r.getMessage()
        ]
        assert len(warnings) == 1
        client.close()

    def test_disk_spilled_entries_resent_oldest_first(self, tmp_path):
        """Disk holds the *older* entries, so recovery drains disk before
        the memory queue: server-side order stays 1..n."""
        client = RemoteLogger(
            ("tcp", "127.0.0.1", 1),
            spill_capacity=3,
            reconnect_backoff=0.01,
            spill_path=str(tmp_path / "spill.dat"),
        )
        for i in range(1, 8):
            client.submit(
                LogEntry(component_id="/a", topic="/t", seq=i, scheme=Scheme.ADLP)
            )
        assert client.spilled_to_disk == 4
        server = LogServer()
        ep = LogServerEndpoint(server)
        try:
            client._address = ep.address
            wait_for(lambda: client.flush_spill(), timeout=5.0)
            assert client.spilled == 0
            assert client.dropped == 0
            assert wait_for(lambda: len(server) == 7, timeout=5.0)
            assert [e.seq for e in server.entries()] == list(range(1, 8))
        finally:
            ep.close()
            client.close()

    def test_disk_spill_survives_client_restart(self, tmp_path):
        """A crashed-and-restarted component re-sends what its predecessor
        spilled to disk -- the outage evidence is not tied to the process."""
        path = str(tmp_path / "spill.dat")
        client = RemoteLogger(
            ("tcp", "127.0.0.1", 1),
            spill_capacity=2,
            reconnect_backoff=10.0,
            spill_path=path,
        )
        for i in range(1, 6):
            client.submit(
                LogEntry(component_id="/a", topic="/t", seq=i, scheme=Scheme.ADLP)
            )
        assert client.spilled_to_disk == 3
        client.close()  # drain-then-stop: the memory queue parks on disk too
        assert client.spilled_to_disk == 5
        assert client.dropped == 0

        server = LogServer()
        ep = LogServerEndpoint(server)
        reborn = RemoteLogger(
            ep.address, reconnect_backoff=0.01, spill_path=path
        )
        try:
            assert reborn.spilled == 5  # the disk backlog is still pending
            wait_for(lambda: reborn.flush_spill(), timeout=5.0)
            assert wait_for(lambda: len(server) == 5, timeout=5.0)
            assert [e.seq for e in server.entries()] == [1, 2, 3, 4, 5]
        finally:
            ep.close()
            reborn.close()

    def test_malformed_frames_do_not_kill_server(self, endpoint, keypool):
        server, ep = endpoint
        from repro.middleware.transport.tcp import TcpTransport

        raw = TcpTransport().connect(ep.address)
        raw.send_frame(b"\xff\xfe\xfd")  # garbage
        raw.close()
        client = RemoteLogger(ep.address)
        client.register_key("/a", keypool[0].public)  # server still alive
        client.close()


class TestAdlpOverRemoteLogger:
    def test_full_protocol_with_remote_logging(self, endpoint, keypool, fast_config):
        """ADLP nodes pointed at a socket logger, end to end."""
        server, ep = endpoint
        master = Master()
        pub_logger = RemoteLogger(ep.address)
        sub_logger = RemoteLogger(ep.address)
        pub_protocol = AdlpProtocol(
            "/pub", pub_logger, config=fast_config, keypair=keypool[0]
        )
        sub_protocol = AdlpProtocol(
            "/sub", sub_logger, config=fast_config, keypair=keypool[1]
        )
        pub_node = Node("/pub", master, protocol=pub_protocol)
        sub_node = Node("/sub", master, protocol=sub_protocol)
        try:
            sub = sub_node.subscribe("/t", StringMsg, lambda m: None)
            pub = pub_node.advertise("/t", StringMsg)
            assert pub.wait_for_subscribers(1)
            for i in range(3):
                pub.publish(StringMsg(data=f"m{i}"))
            assert sub.wait_for_messages(3)
            assert wait_for(lambda: len(server) >= 6, timeout=5.0)
        finally:
            pub_node.shutdown()
            sub_node.shutdown()
            pub_logger.close()
            sub_logger.close()
        # the server-side audit works exactly as with a local logger
        from repro.audit import Auditor, Topology

        topology = Topology(publisher_of={"/t": "/pub"})
        report = Auditor.for_server(server, topology).audit_server(server)
        assert report.flagged_components() == []
        assert len(report.valid_entries()) == 6

    def test_protocol_stats_dict_surfaces_loss_counters(
        self, endpoint, keypool, fast_config
    ):
        """``protocol.stats()`` merges the protocol counters with the
        logging thread's and remote logger's loss counters, so one dict
        answers both 'how chatty' and 'how lossy'."""
        _, ep = endpoint
        logger = RemoteLogger(ep.address)
        protocol = AdlpProtocol(
            "/pub", logger, config=fast_config, keypair=keypool[0]
        )
        try:
            stats = protocol.stats()
            for key in ("retransmits", "signatures", "dropped", "spilled",
                        "spilled_to_disk", "spill_retries"):
                assert key in stats, key
            assert stats["dropped"] == 0
            # attribute access still works for existing call sites
            assert protocol.stats.retransmits == 0
        finally:
            protocol.close()
            logger.close()


class TestLoggerRpcSurface:
    """The replication-facing RPCs: HEALTH, FETCH, KEYS."""

    def test_health_mirrors_server_commitment(self, endpoint):
        server, ep = endpoint
        client = RemoteLogger(ep.address)
        for i in range(5):
            client.submit(LogEntry(component_id="/a", topic="/t", seq=i,
                                   scheme=Scheme.ADLP, data=b"x" * i))
        assert wait_for(lambda: len(server) == 5)
        health = client.health()
        assert health == server.commitment()
        assert health.entries == 5
        assert health.total_bytes == server.total_bytes
        client.close()

    def test_fetch_records_returns_exact_raw_bytes(self, endpoint):
        server, ep = endpoint
        client = RemoteLogger(ep.address)
        records = [
            LogEntry(component_id="/a", topic="/t", seq=i,
                     scheme=Scheme.ADLP).encode()
            for i in range(6)
        ]
        for record in records:
            client.submit(record)
        assert wait_for(lambda: len(server) == 6)
        assert client.fetch_records(0, 100) == records
        assert client.fetch_records(4, 2) == records[4:]
        assert client.fetch_records(6, 10) == []  # past the end: empty
        client.close()

    def test_fetch_keys_roundtrip(self, endpoint, keypool):
        server, ep = endpoint
        client = RemoteLogger(ep.address)
        client.register_key("/a", keypool[0].public)
        client.register_key("/b", keypool[1].public)
        keys = client.fetch_keys()
        assert sorted(keys) == ["/a", "/b"]
        assert keys["/a"] == keypool[0].public.to_bytes()
        client.close()

    def test_rpc_against_dead_server_raises_logging_error(self):
        client = RemoteLogger(("tcp", "127.0.0.1", 1))
        with pytest.raises(LoggingError):
            client.health(timeout=0.5)
        with pytest.raises(LoggingError):
            client.fetch_records(0, 1, timeout=0.5)
        client.close()

    def test_discard_spill_counts_and_clears(self):
        client = RemoteLogger(("tcp", "127.0.0.1", 1), reconnect_backoff=10.0)
        for i in range(4):
            client.submit(LogEntry(component_id="/a", topic="/t", seq=i))
        assert client.spilled == 4
        assert client.discard_spill() == 4
        assert client.spilled == 0
        client.close()


class TestConcurrentClients:
    def test_many_clients_with_disconnects_lose_nothing(self, endpoint):
        """Several components log through one endpoint concurrently, each
        suffering a forced mid-stream disconnect.  Every entry arrives,
        per-component counts are exact, and the server's total_bytes
        equals the sum of what the clients actually encoded."""
        import threading

        server, ep = endpoint
        clients_n, per_client = 5, 40
        sent_bytes = [0] * clients_n
        failures = []

        def worker(k):
            try:
                client = RemoteLogger(ep.address, reconnect_backoff=0.001)
                for i in range(per_client):
                    record = LogEntry(
                        component_id="/c%d" % k, topic="/t", seq=i,
                        scheme=Scheme.ADLP, data=b"p" * (k + 1),
                    ).encode()
                    sent_bytes[k] += len(record)
                    client.submit(record)
                    if i == per_client // 2:
                        # yank the connection mid-stream: the stub must
                        # reconnect and drain its spill transparently
                        with client._lock:
                            if client._connection is not None:
                                client._connection.close()
                assert wait_for(lambda: client.flush_spill(), timeout=10.0)
                assert client.dropped == 0
                client.close()
            except Exception as exc:  # surfaces in the main thread
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(clients_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert failures == []
        total = clients_n * per_client
        assert wait_for(lambda: len(server) == total, timeout=10.0)
        for k in range(clients_n):
            component = server.entries(component_id="/c%d" % k)
            assert len(component) == per_client
            assert sorted(e.seq for e in component) == list(range(per_client))
        by_component = server.bytes_by_component()
        for k in range(clients_n):
            assert by_component["/c%d" % k] == sent_bytes[k]
        assert server.total_bytes == sum(sent_bytes)


class TestIdleReaping:
    def test_idle_connection_reaped_and_client_recovers(self):
        server = LogServer()
        ep = LogServerEndpoint(server, idle_timeout=0.15)
        try:
            client = RemoteLogger(ep.address, reconnect_backoff=0.001)
            client.submit(LogEntry(component_id="/a", topic="/t", seq=0,
                                   scheme=Scheme.ADLP))
            assert wait_for(lambda: len(server) == 1)
            # go quiet past the idle window: the endpoint reaps the socket
            assert wait_for(lambda: ep.reaped >= 1, timeout=5.0)
            # the component just reconnects on its next submit
            client.submit(LogEntry(component_id="/a", topic="/t", seq=1,
                                   scheme=Scheme.ADLP))
            assert wait_for(lambda: len(server) == 2, timeout=5.0)
            client.close()
        finally:
            ep.close()

    def test_no_reaping_by_default(self):
        """Reaping is opt-in: a standalone logger with sporadic traffic
        must never race a reap against a client's fire-and-forget send
        (the reap window would silently discard the entry)."""
        server = LogServer()
        ep = LogServerEndpoint(server)
        try:
            assert ep._idle_timeout is None
            client = RemoteLogger(ep.address)
            client.submit(LogEntry(component_id="/a", topic="/t", seq=0,
                                   scheme=Scheme.ADLP))
            assert wait_for(lambda: len(server) == 1)
            import time as _time

            _time.sleep(0.4)
            assert ep.reaped == 0
            client.close()
        finally:
            ep.close()


class TestRpcTimeout:
    def test_late_response_is_not_decoded_as_next_reply(self):
        """An RPC that times out must abandon its connection: responses
        carry no correlation ids, so a late reply left queued on the
        socket would otherwise be decoded as the NEXT rpc's answer."""
        import threading
        import time as _time

        from repro.core.remote import LoggerResponse
        from repro.middleware.transport.tcp import TcpTransport

        transport = TcpTransport()
        listener = transport.listen()

        def serve():
            # First connection: stall past the client's deadline, then
            # deliver a poisoned late reply.
            conn = listener.accept(timeout=5.0)
            assert conn.recv_frame(timeout=5.0) is not None
            _time.sleep(0.4)
            try:
                conn.send_frame(
                    LoggerResponse(
                        ok=True, entries=999, chain_head=b"stale",
                        merkle_root=b"stale", total_bytes=0,
                    ).encode()
                )
            except Exception:
                pass  # the client may already have hung up on us
            # Second connection: answer promptly and correctly.
            conn2 = listener.accept(timeout=5.0)
            if conn2 is not None:
                assert conn2.recv_frame(timeout=5.0) is not None
                conn2.send_frame(
                    LoggerResponse(
                        ok=True, entries=7, chain_head=b"fresh",
                        merkle_root=b"fresh", total_bytes=42,
                    ).encode()
                )

        thread = threading.Thread(target=serve)
        thread.start()
        client = RemoteLogger(listener.address, reconnect_backoff=0.001)
        try:
            with pytest.raises(LoggingError, match="did not answer"):
                client.health(timeout=0.1)
            _time.sleep(0.5)  # let the late reply land on the old socket
            health = client.health(timeout=5.0)
            assert health.entries == 7
            assert health.chain_head == b"fresh"
        finally:
            thread.join(timeout=5.0)
            client.close()
            listener.close()


class TestCloseDrains:
    def test_close_parks_memory_spill_on_disk(self, tmp_path):
        """A clean shutdown with no reachable server must not discard the
        memory spill queue: it is flushed to the disk FIFO for the next
        incarnation of the component."""
        path = str(tmp_path / "spill.dat")
        client = RemoteLogger(
            ("tcp", "127.0.0.1", 1), reconnect_backoff=10.0, spill_path=path
        )
        for i in range(1, 5):
            client.submit(
                LogEntry(component_id="/a", topic="/t", seq=i, scheme=Scheme.ADLP)
            )
        assert client.spilled == 4  # all in memory so far
        client.close()
        assert client.spilled_to_disk == 4
        assert client.dropped == 0

        server = LogServer()
        ep = LogServerEndpoint(server)
        reborn = RemoteLogger(ep.address, reconnect_backoff=0.001, spill_path=path)
        try:
            assert reborn.spilled == 4
            assert wait_for(lambda: reborn.flush_spill(), timeout=5.0)
            assert wait_for(lambda: len(server) == 4)
            assert [e.seq for e in server.entries()] == [1, 2, 3, 4]
        finally:
            ep.close()
            reborn.close()

    def test_close_drains_pending_spill_over_live_connection(self, endpoint):
        """With the server reachable, ``close`` re-sends queued entries
        before releasing the socket -- a clean shutdown loses nothing."""
        server, ep = endpoint
        client = RemoteLogger(ep.address)
        client.submit(
            LogEntry(component_id="/a", topic="/t", seq=0, scheme=Scheme.ADLP)
        )
        assert wait_for(lambda: len(server) == 1)
        # park two entries in the spill queue behind the live connection
        with client._lock:
            for i in (1, 2):
                client._spill.append(
                    LogEntry(
                        component_id="/a", topic="/t", seq=i, scheme=Scheme.ADLP
                    ).encode()
                )
        client.close()
        assert wait_for(lambda: len(server) == 3, timeout=5.0)
        assert [e.seq for e in server.entries()] == [0, 1, 2]
