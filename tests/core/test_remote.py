"""The remote log server: registration, submission, failure tolerance."""

import pytest

from repro.core import (
    AdlpConfig,
    AdlpProtocol,
    Direction,
    LogServer,
    LogServerEndpoint,
    RemoteLogger,
)
from repro.core.entries import LogEntry, Scheme
from repro.errors import LoggingError
from repro.middleware import Master, Node
from repro.middleware.msgtypes import StringMsg
from repro.util.concurrency import wait_for


@pytest.fixture()
def endpoint():
    server = LogServer()
    endpoint = LogServerEndpoint(server)
    yield server, endpoint
    endpoint.close()


class TestRemoteLogger:
    def test_key_registration_roundtrip(self, endpoint, keypool):
        server, ep = endpoint
        client = RemoteLogger(ep.address)
        client.register_key("/a", keypool[0].public)
        assert server.public_key("/a") == keypool[0].public
        client.close()

    def test_conflicting_key_rejected_remotely(self, endpoint, keypool):
        _, ep = endpoint
        client = RemoteLogger(ep.address)
        client.register_key("/a", keypool[0].public)
        with pytest.raises(LoggingError):
            client.register_key("/a", keypool[1].public)
        client.close()

    def test_submit_reaches_server(self, endpoint):
        server, ep = endpoint
        client = RemoteLogger(ep.address)
        entry = LogEntry(
            component_id="/a",
            topic="/t",
            type_name="std/String",
            direction=Direction.OUT,
            seq=1,
            scheme=Scheme.ADLP,
            data=b"remote",
        )
        client.submit(entry)
        assert wait_for(lambda: len(server) == 1, timeout=2.0)
        assert server.entries()[0].data == b"remote"
        client.close()

    def test_unreachable_server_fails_registration(self, keypool):
        client = RemoteLogger(("tcp", "127.0.0.1", 1))  # nothing listens
        with pytest.raises(LoggingError):
            client.register_key("/a", keypool[0].public)
        client.close()

    def test_submit_tolerates_dead_server(self, endpoint, keypool):
        """The paper's no-single-point-of-failure property: once running,
        a logger failure must not raise into the component.  Entries from
        the outage are parked in the spill queue, not silently lost."""
        server, ep = endpoint
        client = RemoteLogger(ep.address)
        client.register_key("/a", keypool[0].public)
        ep.close()
        entry = LogEntry(component_id="/a", topic="/t", seq=1)
        for _ in range(3):
            client.submit(entry)  # must not raise
        assert client.spilled >= 1
        assert client.dropped == 0  # parked, not lost
        client.close()

    def test_spilled_entries_resent_after_recovery(self, keypool):
        """Entries spilled while the server is down are re-sent (oldest
        first) once it comes back."""
        client = RemoteLogger(("tcp", "127.0.0.1", 1), reconnect_backoff=0.01)
        entries = [
            LogEntry(component_id="/a", topic="/t", seq=i, scheme=Scheme.ADLP)
            for i in range(1, 4)
        ]
        for entry in entries:
            client.submit(entry)  # nothing listens yet: all spill
        assert client.spilled == 3

        server = LogServer()
        ep = LogServerEndpoint(server)
        try:
            client._address = ep.address  # server "comes back" here
            wait_for(lambda: client.flush_spill(), timeout=5.0)
            assert client.spilled == 0
            assert client.retries == 3
            assert client.dropped == 0
            assert wait_for(lambda: len(server) == 3, timeout=5.0)
            assert [e.seq for e in server.entries()] == [1, 2, 3]
        finally:
            ep.close()
            client.close()

    def test_spill_queue_is_bounded(self):
        """Overflowing the spill queue evicts the oldest entry and counts
        it as dropped -- bounded memory, visible loss."""
        client = RemoteLogger(
            ("tcp", "127.0.0.1", 1), spill_capacity=5, reconnect_backoff=10.0
        )
        for i in range(8):
            client.submit(LogEntry(component_id="/a", topic="/t", seq=i))
        assert client.spilled == 5
        assert client.dropped == 3
        client.close()

    def test_malformed_frames_do_not_kill_server(self, endpoint, keypool):
        server, ep = endpoint
        from repro.middleware.transport.tcp import TcpTransport

        raw = TcpTransport().connect(ep.address)
        raw.send_frame(b"\xff\xfe\xfd")  # garbage
        raw.close()
        client = RemoteLogger(ep.address)
        client.register_key("/a", keypool[0].public)  # server still alive
        client.close()


class TestAdlpOverRemoteLogger:
    def test_full_protocol_with_remote_logging(self, endpoint, keypool, fast_config):
        """ADLP nodes pointed at a socket logger, end to end."""
        server, ep = endpoint
        master = Master()
        pub_logger = RemoteLogger(ep.address)
        sub_logger = RemoteLogger(ep.address)
        pub_protocol = AdlpProtocol(
            "/pub", pub_logger, config=fast_config, keypair=keypool[0]
        )
        sub_protocol = AdlpProtocol(
            "/sub", sub_logger, config=fast_config, keypair=keypool[1]
        )
        pub_node = Node("/pub", master, protocol=pub_protocol)
        sub_node = Node("/sub", master, protocol=sub_protocol)
        try:
            sub = sub_node.subscribe("/t", StringMsg, lambda m: None)
            pub = pub_node.advertise("/t", StringMsg)
            assert pub.wait_for_subscribers(1)
            for i in range(3):
                pub.publish(StringMsg(data=f"m{i}"))
            assert sub.wait_for_messages(3)
            assert wait_for(lambda: len(server) >= 6, timeout=5.0)
        finally:
            pub_node.shutdown()
            sub_node.shutdown()
            pub_logger.close()
            sub_logger.close()
        # the server-side audit works exactly as with a local logger
        from repro.audit import Auditor, Topology

        topology = Topology(publisher_of={"/t": "/pub"})
        report = Auditor.for_server(server, topology).audit_server(server)
        assert report.flagged_components() == []
        assert len(report.valid_entries()) == 6
