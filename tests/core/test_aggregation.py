"""Tests for the aggregated-logging extension (paper Section VI-E)."""

import time

import pytest

from repro.core import AdlpConfig, AdlpProtocol, Direction, LogServer
from repro.middleware import Master, Node
from repro.middleware.msgtypes import StringMsg
from repro.util.concurrency import wait_for

TOPIC = "/t"


@pytest.fixture()
def aggregated_world(keypool):
    config = AdlpConfig(
        key_bits=512,
        aggregate_publisher_entries=True,
        aggregation_window=0.05,
        ack_timeout=2.0,
    )
    master = Master()
    server = LogServer()
    pub_protocol = AdlpProtocol("/pub", server, config=config, keypair=keypool[0])
    pub_node = Node("/pub", master, protocol=pub_protocol)
    sub_nodes = []
    for i in range(3):
        protocol = AdlpProtocol(
            f"/sub{i}", server, config=AdlpConfig(key_bits=512), keypair=keypool[1 + i]
        )
        node = Node(f"/sub{i}", master, protocol=protocol)
        node.subscribe(TOPIC, StringMsg, lambda m: None)
        sub_nodes.append(node)
    yield master, server, pub_node, sub_nodes, pub_protocol
    pub_node.shutdown()
    for node in sub_nodes:
        node.shutdown()


class TestAggregatedLogging:
    def test_one_entry_per_publication(self, aggregated_world):
        _, server, pub_node, _, pub_protocol = aggregated_world
        pub = pub_node.advertise(TOPIC, StringMsg)
        assert pub.wait_for_subscribers(3)
        for i in range(4):
            pub.publish(StringMsg(data=f"m{i}"))
        assert wait_for(lambda: pub_protocol.stats.acks_received >= 12, timeout=5.0)
        # force window expiry and flush
        time.sleep(0.1)
        pub.publish(StringMsg(data="flush"))
        wait_for(lambda: pub_protocol.stats.acks_received >= 15, timeout=5.0)
        pub_node.shutdown()
        pub_protocol.flush()
        outs = server.entries(component_id="/pub", direction=Direction.OUT)
        aggregated = [e for e in outs if e.aggregated]
        # 4(+1 flush) publications -> one entry each, NOT one per subscriber
        assert 4 <= len(outs) <= 5
        for entry in aggregated:
            assert len(entry.ack_peer_ids) == len(entry.ack_peer_sigs)
            assert len(entry.ack_peer_ids) >= 1

    def test_aggregated_entry_collects_all_subscribers(self, aggregated_world):
        _, server, pub_node, _, pub_protocol = aggregated_world
        pub = pub_node.advertise(TOPIC, StringMsg)
        assert pub.wait_for_subscribers(3)
        pub.publish(StringMsg(data="only"))
        assert wait_for(lambda: pub_protocol.stats.acks_received >= 3, timeout=5.0)
        pub_node.shutdown()  # triggers aggregator flush
        pub_protocol.flush()
        outs = server.entries(component_id="/pub", direction=Direction.OUT)
        assert len(outs) == 1
        entry = outs[0]
        assert entry.aggregated
        assert sorted(entry.ack_peer_ids) == ["/sub0", "/sub1", "/sub2"]

    def test_aggregation_reduces_log_bytes(self, keypool):
        """The extension's whole point: less log volume for fan-out."""

        def run(aggregate):
            config = AdlpConfig(
                key_bits=512,
                aggregate_publisher_entries=aggregate,
                aggregation_window=0.05,
            )
            master = Master()
            server = LogServer()
            pub_protocol = AdlpProtocol("/pub", server, config=config, keypair=keypool[0])
            pub_node = Node("/pub", master, protocol=pub_protocol)
            nodes = [pub_node]
            for i in range(3):
                protocol = AdlpProtocol(
                    f"/sub{i}",
                    server,
                    config=AdlpConfig(key_bits=512),
                    keypair=keypool[1 + i],
                )
                node = Node(f"/sub{i}", master, protocol=protocol)
                node.subscribe(TOPIC, StringMsg, lambda m: None)
                nodes.append(node)
            pub = pub_node.advertise(TOPIC, StringMsg)
            pub.wait_for_subscribers(3)
            payload = "x" * 2000
            for i in range(5):
                pub.publish(StringMsg(data=payload))
            wait_for(lambda: pub_protocol.stats.acks_received >= 15, timeout=5.0)
            for node in nodes:
                node.shutdown()
            pub_protocol.flush()
            pub_bytes = sum(
                e.encoded_size()
                for e in server.entries(component_id="/pub", direction=Direction.OUT)
            )
            return pub_bytes

        assert run(aggregate=True) < run(aggregate=False)
