"""ReplicatedLogger: quorum fan-out, breakers, failover, divergence.

The centerpiece is the deterministic failover scenario of the issue: a
3-replica set under a live ADLP publish-subscribe pair loses one replica
mid-publish, keeps a durable quorum, quarantines the dead replica, and
readmits it -- commitment-identical -- after anti-entropy catch-up, with
the final replica-set audit showing zero false verdicts.
"""

import time

import pytest

from repro.audit import audit_replica_set
from repro.core import AdlpProtocol, LogServer, LogServerEndpoint, RemoteLogger
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.policy import ReplicationConfig
from repro.errors import LoggingError
from repro.middleware import Master, Node
from repro.middleware.msgtypes import StringMsg
from repro.replication import BreakerState, ReplicatedLogger
from repro.util.concurrency import wait_for

FAST = ReplicationConfig(
    breaker_failure_threshold=2,
    breaker_reset_timeout=0.05,
    breaker_max_reset_timeout=0.2,
    health_timeout=2.0,
)


def entry(seq, component="/p"):
    return LogEntry(
        component_id=component,
        topic="/t",
        type_name="std/String",
        direction=Direction.OUT,
        seq=seq,
        scheme=Scheme.ADLP,
        data=b"payload-%04d" % seq,
    )


@pytest.fixture()
def replica_set():
    servers = [LogServer() for _ in range(3)]
    endpoints = [LogServerEndpoint(s) for s in servers]
    yield servers, endpoints
    for endpoint in endpoints:
        endpoint.close()


@pytest.fixture()
def rlogger(replica_set):
    _, endpoints = replica_set
    rlogger = ReplicatedLogger([e.address for e in endpoints], config=FAST)
    yield rlogger
    rlogger.close()


class TestFanOut:
    def test_submit_reaches_every_replica(self, replica_set, rlogger):
        servers, _ = replica_set
        for i in range(5):
            rlogger.submit(entry(i))
        assert wait_for(lambda: all(len(s) == 5 for s in servers))
        roots = {s.merkle_root() for s in servers}
        assert len(roots) == 1  # identical order everywhere

    def test_register_key_fans_to_all(self, replica_set, rlogger, keypool):
        servers, _ = replica_set
        rlogger.register_key("/p", keypool[0].public)
        for server in servers:
            assert server.public_key("/p") == keypool[0].public

    def test_register_key_needs_quorum(self, replica_set, keypool):
        _, endpoints = replica_set
        endpoints[0].close()
        endpoints[1].close()
        rlogger = ReplicatedLogger([e.address for e in endpoints], config=FAST)
        try:
            with pytest.raises(LoggingError, match="quorum"):
                rlogger.register_key("/p", keypool[0].public)
        finally:
            rlogger.close()

    def test_quorum_accounting(self, replica_set, rlogger):
        servers, endpoints = replica_set
        rlogger.submit(entry(0))
        assert rlogger.quorum_status()["quorum_met"]
        endpoints[2].close()
        # two failed submits trip replica 2's breaker; quorum of 2 holds
        for i in range(1, 6):
            rlogger.submit(entry(i))
            time.sleep(0.01)
        status = rlogger.quorum_status()
        assert status["quorum"] == 2
        assert status["breakers_closed"] == 2
        assert status["quorum_met"]
        stats = rlogger.stats()
        assert stats["quorum_submits"] >= 1
        assert stats["breaker_opens"] == 1
        assert wait_for(lambda: len(servers[0]) == 6 and len(servers[1]) == 6)

    def test_entry_objects_and_raw_bytes_both_accepted(self, replica_set, rlogger):
        servers, _ = replica_set
        rlogger.submit(entry(0))
        rlogger.submit(entry(1).encode())
        assert wait_for(lambda: all(len(s) == 2 for s in servers))


class TestBreakerLifecycle:
    def test_dead_replica_trips_breaker_and_is_skipped(self, replica_set, rlogger):
        _, endpoints = replica_set
        endpoints[1].close()
        for i in range(6):
            rlogger.submit(entry(i))
            time.sleep(0.01)
        status = rlogger.statuses()[1]
        assert status.breaker == "open"
        assert status.skipped >= 1  # fan-out stopped wasting work on it

    def test_probe_readmits_only_caught_up_replicas(self, replica_set, rlogger):
        servers, endpoints = replica_set
        for i in range(8):
            rlogger.submit(entry(i))
        assert wait_for(lambda: all(len(s) == 8 for s in servers))
        endpoints[1].close()
        for i in range(8, 12):
            rlogger.submit(entry(i))
            time.sleep(0.01)
        assert rlogger.statuses()[1].breaker == "open"

        # replica 1 restarts EMPTY on a new port: alive, but far behind
        servers[1] = LogServer()
        endpoints[1] = LogServerEndpoint(servers[1])
        rlogger.reset_replica(1, endpoints[1].address)
        time.sleep(0.25)  # let the open interval expire
        rlogger.probe()
        status = rlogger.statuses()[1]
        assert status.breaker == "open"  # alive is not enough
        assert "catch_up" in status.last_error

        results = rlogger.catch_up(replica=1)
        assert results[0].ok, results
        assert rlogger.statuses()[1].breaker == "closed"
        assert servers[0].commitment() == servers[1].commitment()

    def test_total_outage_keeps_readmission_lag_check(self, replica_set, rlogger):
        """With EVERY breaker open (full outage) there is no live replica
        to reference; readmission must fall back to the best commitment
        ever observed rather than skip the lag check -- an empty rejoiner
        waved through here would fork the moment submits resume."""
        servers, endpoints = replica_set
        for i in range(6):
            rlogger.submit(entry(i))
        assert wait_for(lambda: all(len(s) == 6 for s in servers))
        rlogger.probe()  # record every replica's commitment at 6 entries
        for endpoint in endpoints:
            endpoint.close()  # total outage
        for i in range(6, 10):
            rlogger.submit(entry(i))
            time.sleep(0.01)
        assert all(s.breaker == "open" for s in rlogger.statuses())

        # replica 1 restarts EMPTY while both its peers are still down
        servers[1] = LogServer()
        endpoints[1] = LogServerEndpoint(servers[1])
        rlogger.reset_replica(1, endpoints[1].address)
        time.sleep(0.3)  # let the open intervals expire
        rlogger.probe()
        status = rlogger.statuses()[1]
        assert status.breaker == "open"  # alive is still not enough
        assert "catch_up" in status.last_error

    def test_readmitted_replica_receives_new_submits(self, replica_set, rlogger):
        servers, endpoints = replica_set
        endpoints[2].close()
        for i in range(4):
            rlogger.submit(entry(i))
            time.sleep(0.01)
        assert rlogger.statuses()[2].breaker == "open"
        servers[2] = LogServer()
        endpoints[2] = LogServerEndpoint(servers[2])
        rlogger.reset_replica(2, endpoints[2].address)
        assert rlogger.catch_up(replica=2)[0].ok
        assert rlogger.statuses()[2].breaker == "closed"
        rlogger.submit(entry(4))  # the rejoined replica is on the data path
        assert wait_for(lambda: len(servers[2]) == 5)
        assert servers[0].commitment() == servers[2].commitment()


def diverge_replica(servers, rogue=2, entries=4):
    """Feed replicas identical histories except for one record on the
    rogue: same entry count everywhere, different content -- exactly what
    a replica that substituted a record would present."""
    for i in range(entries):
        record = entry(i).encode()
        for index, server in enumerate(servers):
            if index == rogue and i == 1:
                server.submit(entry(99).encode())  # the substitution
            else:
                server.submit(record)


class TestDivergenceQuarantine:
    def test_minority_divergent_replica_is_quarantined(self, replica_set, rlogger):
        servers, _ = replica_set
        diverge_replica(servers, rogue=2)
        evidence = rlogger.probe()
        assert evidence, "divergence must surface on the next probe round"
        assert evidence[0].entries == 4
        roots = dict(evidence[0].roots)
        assert roots["replica-2"] != roots["replica-0"]  # presentable proof
        statuses = rlogger.statuses()
        assert statuses[2].breaker == "open"  # minority side quarantined
        assert statuses[0].breaker == "closed"
        assert statuses[1].breaker == "closed"
        assert rlogger.divergence()  # evidence is retained

    def test_rogue_probed_first_does_not_drag_down_the_majority(
        self, replica_set, rlogger
    ):
        """Probe order must not decide who gets quarantined.  With the
        rogue at index 0 the divergence evidence is emitted while only
        two commitments are known (a 1-vs-1 'split'); the quarantine
        decision still has to vote with the full round's healths and
        flag only the true minority."""
        servers, _ = replica_set
        diverge_replica(servers, rogue=0)
        evidence = rlogger.probe()
        assert evidence
        statuses = rlogger.statuses()
        assert statuses[0].breaker == "open"  # the rogue
        assert statuses[1].breaker == "closed"  # the honest majority
        assert statuses[2].breaker == "closed"
        assert rlogger.quorum_status()["quorum_met"]

    def test_divergent_replica_does_not_count_toward_quorum(
        self, replica_set, rlogger
    ):
        servers, _ = replica_set
        diverge_replica(servers, rogue=2)
        rlogger.probe()
        status = rlogger.quorum_status()
        assert status["breakers_closed"] == 2
        assert status["quorum_met"]  # 2/3 honest replicas still suffice


class TestEndToEndFailover:
    def test_adlp_pair_survives_replica_death_with_no_evidence_loss(
        self, replica_set, keypool, fast_config
    ):
        """The issue's acceptance scenario, deterministic flavor: a live
        ADLP publisher/subscriber pair logging through a 3-replica set
        loses one replica mid-publish.  Quorum submits continue, the
        breaker opens, catch-up restores a commitment-identical replica,
        and the replica-set audit shows every transmission valid --
        nothing false, nothing hidden."""
        servers, endpoints = replica_set
        shared = ReplicatedLogger([e.address for e in endpoints], config=FAST)
        master = Master()
        pub_protocol = AdlpProtocol(
            "/pub", shared, config=fast_config, keypair=keypool[0]
        )
        sub_protocol = AdlpProtocol(
            "/sub", shared, config=fast_config, keypair=keypool[1]
        )
        pub_node = Node("/pub", master, protocol=pub_protocol)
        sub_node = Node("/sub", master, protocol=sub_protocol)
        try:
            sub = sub_node.subscribe("/t", StringMsg, lambda m: None)
            pub = pub_node.advertise("/t", StringMsg)
            assert pub.wait_for_subscribers(1)
            for i in range(4):
                pub.publish(StringMsg(data=f"before-{i}"))
            assert sub.wait_for_messages(4)
            # 2 entries per transmission (publisher + subscriber)
            assert wait_for(lambda: len(servers[0]) >= 8)

            endpoints[1].close()  # replica 1 dies mid-run
            for i in range(4):
                pub.publish(StringMsg(data=f"during-{i}"))
                time.sleep(0.01)
            assert sub.wait_for_messages(8)
            assert wait_for(
                lambda: len(servers[0]) >= 16 and len(servers[2]) >= 16
            )
            assert wait_for(
                lambda: shared.statuses()[1].breaker == "open", timeout=2.0
            )
            assert shared.quorum_status()["quorum_met"]  # limping, durable
        finally:
            pub_node.shutdown()
            sub_node.shutdown()

        # replica 1 restarts empty on a fresh port; anti-entropy rejoin
        servers[1] = LogServer()
        endpoints[1] = LogServerEndpoint(servers[1])
        shared.reset_replica(1, endpoints[1].address)
        results = shared.catch_up(replica=1)
        assert results[0].ok, results
        assert servers[0].commitment() == servers[1].commitment()
        assert servers[0].commitment() == servers[2].commitment()
        shared.close()

        # audit the replica set as one logical logger: every replica
        # agrees and every transmission is provably accounted for
        clients = [RemoteLogger(e.address) for e in endpoints]
        try:
            audit = audit_replica_set(clients)
        finally:
            for client in clients:
                client.close()
        assert audit.divergent == []
        assert audit.unreachable == []
        assert sorted(audit.agreeing) == [0, 1, 2]
        assert audit.report.flagged_components() == []
        assert len(audit.report.valid_entries()) == len(servers[0])
        assert audit.report.hidden == []


class TestLifecycle:
    def test_background_prober_runs_and_stops(self, replica_set):
        _, endpoints = replica_set
        config = ReplicationConfig(probe_interval=0.02)
        rlogger = ReplicatedLogger([e.address for e in endpoints], config=config)
        rlogger.start_probing()
        assert wait_for(
            lambda: all(s.entries is not None for s in rlogger.statuses())
        )
        rlogger.close()
        assert rlogger._prober is None

    def test_needs_at_least_one_address(self):
        with pytest.raises(ValueError):
            ReplicatedLogger([])

    def test_addresses_from_config(self, replica_set):
        _, endpoints = replica_set
        config = ReplicationConfig(
            replicas=tuple(e.address for e in endpoints)
        )
        rlogger = ReplicatedLogger(config=config)
        assert rlogger.replica_count == 3
        assert rlogger.quorum == 2
        rlogger.close()

    def test_stats_shape_for_protocol_merge(self, replica_set, rlogger):
        stats = rlogger.stats()
        for key in (
            "replicated_submits",
            "quorum_submits",
            "degraded_submits",
            "replica_dropped",
            "replica_spilled",
            "replica_skipped",
            "breaker_opens",
        ):
            assert key in stats
