"""Cross-replica divergence detection."""

from repro.core.log_server import LogCommitment
from repro.replication import DivergenceDetector


def commit(entries, head, root, total_bytes=0):
    return LogCommitment(
        entries=entries,
        chain_head=head,
        merkle_root=root,
        total_bytes=total_bytes,
    )


class TestDivergenceDetector:
    def test_agreeing_replicas_produce_no_evidence(self):
        detector = DivergenceDetector()
        assert detector.observe("a", commit(3, b"h", b"r")) == []
        assert detector.observe("b", commit(3, b"h", b"r")) == []
        assert detector.check() == []

    def test_different_counts_are_lag_not_divergence(self):
        detector = DivergenceDetector()
        detector.observe("a", commit(5, b"h5", b"r5"))
        assert detector.observe("b", commit(3, b"h3", b"r3")) == []

    def test_conflicting_roots_at_same_count_flagged(self):
        detector = DivergenceDetector()
        detector.observe("a", commit(4, b"ha", b"ra"))
        evidence = detector.observe("b", commit(4, b"hb", b"rb"))
        assert len(evidence) == 1
        assert evidence[0].entries == 4
        assert dict(evidence[0].roots) == {"a": b"ra", "b": b"rb"}
        assert dict(evidence[0].heads) == {"a": b"ha", "b": b"hb"}
        assert sorted(evidence[0].replicas()) == ["a", "b"]

    def test_same_conflict_not_reported_twice(self):
        detector = DivergenceDetector()
        detector.observe("a", commit(4, b"ha", b"ra"))
        assert detector.observe("b", commit(4, b"hb", b"rb"))
        # a third replica weighing in on an already-flagged count is quiet
        assert detector.observe("c", commit(4, b"ha", b"ra")) == []
        assert len(detector.check()) == 1

    def test_replica_rewriting_its_own_history_flagged(self):
        detector = DivergenceDetector()
        detector.observe("a", commit(4, b"h1", b"r1"))
        evidence = detector.observe("a", commit(4, b"h2", b"r2"))
        assert len(evidence) == 1
        labels = evidence[0].replicas()
        assert "a" in labels and "a@earlier" in labels

    def test_re_reporting_identical_commitment_is_fine(self):
        detector = DivergenceDetector()
        detector.observe("a", commit(4, b"h", b"r"))
        assert detector.observe("a", commit(4, b"h", b"r")) == []

    def test_history_is_bounded(self):
        detector = DivergenceDetector(history_limit=4)
        for i in range(10):
            detector.observe("a", commit(i, b"h%d" % i, b"r%d" % i))
        # old counts aged out: a conflict at count 2 is no longer visible
        assert detector.observe("b", commit(2, b"x", b"y")) == []
        # but a conflict within the window still is
        assert detector.observe("b", commit(9, b"x", b"y"))
