"""Anti-entropy catch-up: replay, chain verification, fork refusal."""

import pytest

from repro.core import LogServer, LogServerEndpoint
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.policy import ReplicationConfig
from repro.errors import LoggingError
from repro.replication import ReplicatedLogger
from repro.util.concurrency import wait_for

FAST = ReplicationConfig(
    breaker_failure_threshold=2,
    breaker_reset_timeout=0.05,
    fetch_batch=3,  # force multi-batch replays even for small logs
)


def entry(seq):
    return LogEntry(
        component_id="/p",
        topic="/t",
        type_name="std/String",
        direction=Direction.OUT,
        seq=seq,
        scheme=Scheme.ADLP,
        data=b"payload-%04d" % seq,
    )


@pytest.fixture()
def replica_set():
    servers = [LogServer() for _ in range(3)]
    endpoints = [LogServerEndpoint(s) for s in servers]
    yield servers, endpoints
    for endpoint in endpoints:
        endpoint.close()


@pytest.fixture()
def rlogger(replica_set):
    _, endpoints = replica_set
    rlogger = ReplicatedLogger([e.address for e in endpoints], config=FAST)
    yield rlogger
    rlogger.close()


class TestCatchUp:
    def test_fresh_replica_catches_up_in_batches(self, replica_set, rlogger, keypool):
        """A replica restarting empty replays the full history (in
        fetch_batch-sized chunks) and lands commitment-identical."""
        servers, endpoints = replica_set
        rlogger.register_key("/p", keypool[0].public)
        for i in range(10):
            rlogger.submit(entry(i))
        assert wait_for(lambda: all(len(s) == 10 for s in servers))

        servers[1] = LogServer()
        endpoints[1] = LogServerEndpoint(servers[1])
        rlogger.reset_replica(1, endpoints[1].address)
        results = rlogger.catch_up(replica=1)
        assert results[0].ok
        assert results[0].replayed == 10
        assert servers[0].commitment() == servers[1].commitment()

    def test_catch_up_restores_key_registry(self, replica_set, rlogger, keypool):
        """The donor's key registry rides along, so replayed entries on
        the rejoined replica audit as valid, not UNKNOWN_COMPONENT."""
        servers, endpoints = replica_set
        rlogger.register_key("/p", keypool[0].public)
        rlogger.register_key("/q", keypool[1].public)
        for i in range(3):
            rlogger.submit(entry(i))
        assert wait_for(lambda: all(len(s) == 3 for s in servers))
        servers[2] = LogServer()
        endpoints[2] = LogServerEndpoint(servers[2])
        rlogger.reset_replica(2, endpoints[2].address)
        assert rlogger.catch_up(replica=2)[0].ok
        assert servers[2].public_key("/p") == keypool[0].public
        assert servers[2].public_key("/q") == keypool[1].public

    def test_partial_lag_replays_only_missing_suffix(self, replica_set, rlogger):
        """A replica that missed a window mid-stream gets only the suffix
        it lacks, not a full replay."""
        servers, endpoints = replica_set
        for i in range(4):
            rlogger.submit(entry(i))
        assert wait_for(lambda: all(len(s) == 4 for s in servers))
        # replica 0 sleeps through entries 4..7 (simulated by direct feed)
        for i in range(4, 8):
            record = entry(i).encode()
            servers[1].submit(record)
            servers[2].submit(record)
        results = rlogger.catch_up()  # no explicit target: finds laggards
        assert [r.replica for r in results] == [0]
        assert results[0].ok
        assert results[0].replayed == 4
        assert servers[0].commitment() == servers[1].commitment()

    def test_forked_replica_is_refused_not_overwritten(self, replica_set, rlogger):
        """A replica whose history contradicts the donor's must NOT be
        'caught up' -- replaying over a fork would bury the evidence.  The
        chain fold detects the fork and the replica stays quarantined."""
        servers, _ = replica_set
        for i in range(4):
            record = entry(i).encode()
            servers[1].submit(record)
            servers[2].submit(record)
        # replica 0: shorter AND forked (different record at index 1)
        servers[0].submit(entry(0).encode())
        servers[0].submit(entry(42).encode())
        results = rlogger.catch_up(replica=0)
        assert not results[0].ok
        assert "forked" in results[0].reason
        assert len(servers[0]) == 2  # untouched: the fork is evidence

    def test_no_reachable_replica_raises(self, replica_set):
        _, endpoints = replica_set
        for endpoint in endpoints:
            endpoint.close()
        rlogger = ReplicatedLogger([e.address for e in endpoints], config=FAST)
        try:
            with pytest.raises(LoggingError, match="no reachable"):
                rlogger.catch_up()
        finally:
            rlogger.close()

    def test_unreachable_target_reported_not_raised(self, replica_set, rlogger):
        servers, endpoints = replica_set
        for i in range(3):
            rlogger.submit(entry(i))
        assert wait_for(lambda: all(len(s) == 3 for s in servers))
        endpoints[1].close()
        results = rlogger.catch_up(replica=1)
        assert not results[0].ok

    def test_catch_up_verifies_against_live_donor_not_stale_snapshot(
        self, replica_set, rlogger
    ):
        """Live fan-out advancing the donor mid-replay must not slip past
        verification: comparing the laggard to a pre-replay snapshot would
        pass while the donor is already ahead, readmitting a still-lagging
        replica that forks on the next submit.  The freeze-and-verify step
        has to close the residual gap and rejoin commitment-identical with
        the donor's CURRENT state."""
        import time

        servers, endpoints = replica_set
        endpoints[2].close()
        for i in range(6):
            rlogger.submit(entry(i))
            time.sleep(0.01)
        assert rlogger.statuses()[2].breaker == "open"
        assert wait_for(lambda: len(servers[0]) == 6 and len(servers[1]) == 6)
        servers[2] = LogServer()
        endpoints[2] = LogServerEndpoint(servers[2])
        rlogger.reset_replica(2, endpoints[2].address)

        # Make the donor advance deterministically mid-replay: the first
        # record fetch triggers a live submit (replica 2 is quarantined,
        # so it lands only on the healthy peers).
        donor_client = rlogger._handles[0].client
        real_fetch = donor_client.fetch_records
        injected = []

        def fetch_and_advance(start, count, **kwargs):
            batch = real_fetch(start, count, **kwargs)
            if not injected:
                injected.append(True)
                rlogger.submit(entry(100))
                assert wait_for(
                    lambda: len(servers[0]) == 7 and len(servers[1]) == 7
                )
            return batch

        donor_client.fetch_records = fetch_and_advance
        results = rlogger.catch_up(replica=2)
        assert results[0].ok, results
        assert results[0].replayed == 7  # 6 from the snapshot + 1 residual
        assert len(servers[2]) == 7
        assert servers[0].commitment() == servers[2].commitment()
        assert rlogger.statuses()[2].breaker == "closed"

        # the rejoined replica tracks new submissions without forking
        rlogger.submit(entry(101))
        assert wait_for(lambda: all(len(s) == 8 for s in servers))
        assert servers[0].commitment() == servers[2].commitment()

    def test_catch_up_discards_stale_spill(self, replica_set, rlogger):
        """Entries parked in a dead replica's client-side spill queue are
        superseded by the donor replay; keeping them would double-submit
        and fork the rejoined replica."""
        servers, endpoints = replica_set
        import time

        endpoints[2].close()
        for i in range(6):
            rlogger.submit(entry(i))
            time.sleep(0.01)
        assert wait_for(lambda: len(servers[0]) == 6 and len(servers[1]) == 6)
        # the breaker-open path already discarded the detection-window
        # spill; whatever the client still holds must not reach the server
        servers[2] = LogServer()
        endpoints[2] = LogServerEndpoint(servers[2])
        rlogger.reset_replica(2, endpoints[2].address)
        results = rlogger.catch_up(replica=2)
        assert results[0].ok
        assert len(servers[2]) == 6  # exactly the canonical history
        assert servers[0].commitment() == servers[2].commitment()
