"""The per-replica circuit breaker, driven by a fake clock."""

import random

import pytest

from repro.replication import BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_breaker(clock, **kwargs):
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("reset_timeout", 1.0)
    kwargs.setdefault("jitter", 0.0)  # deterministic intervals
    return CircuitBreaker(time_source=clock, rng=random.Random(0), **kwargs)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker = make_breaker(FakeClock())
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_trips_after_threshold_consecutive_failures(self):
        breaker = make_breaker(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_success_resets_failure_count(self):
        breaker = make_breaker(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1.01)
        assert breaker.allow()  # the probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow()  # probe in flight; nobody else

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.01)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_with_doubled_interval(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.01)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        # backoff doubled: 1s interval became 2s
        assert breaker.time_until_probe() == pytest.approx(2.0)

    def test_backoff_is_capped(self):
        clock = FakeClock()
        breaker = make_breaker(clock, max_reset_timeout=3.0)
        for _ in range(3):
            breaker.record_failure()
        for _ in range(5):  # repeated failed probes: 2.0, 3.0, 3.0, ...
            clock.advance(100.0)
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.time_until_probe() == pytest.approx(3.0)

    def test_success_resets_backoff_escalation(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(100.0)
        assert breaker.allow()
        breaker.record_failure()  # escalates to 2s
        clock.advance(100.0)
        assert breaker.allow()
        breaker.record_success()
        for _ in range(3):  # trips again: interval back at the initial 1s
            breaker.record_failure()
        assert breaker.time_until_probe() == pytest.approx(1.0)

    def test_force_open_quarantines_immediately(self):
        breaker = make_breaker(FakeClock())
        breaker.force_open()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.opens == 1


class TestJitter:
    def test_jitter_stretches_interval_within_bound(self):
        clock = FakeClock()
        rng = random.Random(7)
        breaker = CircuitBreaker(
            failure_threshold=1,
            reset_timeout=1.0,
            jitter=0.5,
            time_source=clock,
            rng=rng,
        )
        breaker.record_failure()
        remaining = breaker.time_until_probe()
        assert 1.0 <= remaining <= 1.5

    def test_time_until_probe_zero_when_closed(self):
        breaker = make_breaker(FakeClock())
        assert breaker.time_until_probe() == 0.0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(failure_threshold=0),
            dict(reset_timeout=0.0),
            dict(reset_timeout=2.0, max_reset_timeout=1.0),
            dict(jitter=1.5),
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)
