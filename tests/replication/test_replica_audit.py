"""Auditing a replica set as one logical trusted logger."""

import pytest

from repro.audit import audit_replica_set
from repro.audit.replica_audit import ReplicaDivergence
from repro.core import LogServer, LogServerEndpoint, RemoteLogger
from repro.core.entries import Direction, LogEntry, Scheme
from repro.errors import LogIntegrityError


def entry(seq, component="/p", data=None):
    return LogEntry(
        component_id=component,
        topic="/t",
        type_name="std/String",
        direction=Direction.OUT,
        seq=seq,
        scheme=Scheme.ADLP,
        data=data if data is not None else b"payload-%04d" % seq,
    )


@pytest.fixture()
def replica_set():
    servers = [LogServer() for _ in range(3)]
    endpoints = [LogServerEndpoint(s) for s in servers]
    clients = [RemoteLogger(e.address) for e in endpoints]
    yield servers, endpoints, clients
    for client in clients:
        client.close()
    for endpoint in endpoints:
        endpoint.close()


def feed(servers, count=4, skip=None):
    for i in range(count):
        record = entry(i).encode()
        for index, server in enumerate(servers):
            if skip is not None and index == skip:
                continue
            server.submit(record)


class TestReplicaSetAudit:
    def test_healthy_set_agrees_and_audits_cleanly(self, replica_set):
        servers, _, clients = replica_set
        feed(servers)
        result = audit_replica_set(clients)
        assert sorted(result.agreeing) == [0, 1, 2]
        assert result.divergent == []
        assert result.unreachable == []
        assert result.common_prefix == 4
        assert result.audited_entries == 4

    def test_lagging_replica_is_not_divergence(self, replica_set):
        """Different entry counts are lag; the audit compares the common
        prefix and audits the longest agreeing history."""
        servers, _, clients = replica_set
        feed(servers, count=4)
        servers[0].submit(entry(4).encode())  # replica 0 is ahead by one
        result = audit_replica_set(clients)
        assert result.common_prefix == 4
        assert result.audited_replica == 0  # longest history wins
        assert result.audited_entries == 5
        assert result.divergent == []

    def test_divergent_minority_flagged_with_roots(self, replica_set):
        servers, _, clients = replica_set
        for i in range(4):
            record = entry(i).encode()
            servers[0].submit(record)
            servers[1].submit(record)
            servers[2].submit(
                entry(99).encode() if i == 1 else record  # the substitution
            )
        result = audit_replica_set(clients)
        assert sorted(result.agreeing) == [0, 1]
        assert len(result.divergent) == 1
        evidence = result.divergent[0]
        assert isinstance(evidence, ReplicaDivergence)
        assert evidence.replica == 2
        assert evidence.prefix_root != evidence.quorum_root  # presentable
        # the quorum view still audits; the rogue does not poison it
        assert result.audited_replica in (0, 1)

    def test_crashed_replica_reported_unreachable(self, replica_set):
        servers, endpoints, clients = replica_set
        feed(servers)
        endpoints[1].close()
        result = audit_replica_set(clients)
        assert result.unreachable == [1]
        assert sorted(result.agreeing) == [0, 2]

    def test_no_quorum_of_answers_fails_loudly(self, replica_set):
        servers, endpoints, clients = replica_set
        feed(servers)
        endpoints[0].close()
        endpoints[1].close()
        with pytest.raises(LogIntegrityError, match="quorum"):
            audit_replica_set(clients)

    def test_split_brain_fails_loudly(self, replica_set):
        """When no root reaches a quorum, there is no trustworthy view to
        audit -- refusing is the only honest answer."""
        servers, _, clients = replica_set
        for i in range(3):
            servers[0].submit(entry(i).encode())
            servers[1].submit(entry(i, data=b"alt-%d" % i).encode())
            servers[2].submit(entry(i, data=b"other-%d" % i).encode())
        with pytest.raises(LogIntegrityError, match="no quorum-consistent"):
            audit_replica_set(clients)

    def test_explicit_quorum_override(self, replica_set):
        servers, endpoints, clients = replica_set
        feed(servers)
        endpoints[1].close()
        endpoints[2].close()
        # operator accepts a single replica's word (e.g. forensics on
        # whatever survived): quorum=1 audits what is reachable
        result = audit_replica_set(clients, quorum=1)
        assert result.audited_replica == 0
        assert sorted(result.unreachable) == [1, 2]

    def test_empty_client_list_rejected(self):
        with pytest.raises(ValueError):
            audit_replica_set([])
