"""Chaos: SIGKILL a real replica process mid-publish, then rejoin it.

The issue's acceptance scenario, subprocess flavor: one of three replicas
is a separate OS process over a durable store.  It is SIGKILLed (no
cleanup, no flush) while an ADLP publisher/subscriber pair is live.  The
run must lose no audit evidence: submits keep reaching a quorum, the dead
replica's breaker opens, the restarted process (same store, new port)
recovers its durable prefix, catch-up replays exactly the missed suffix,
and the final replica-set audit is unanimous with zero false verdicts.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.audit import audit_replica_set
from repro.core import AdlpProtocol, LogServer, LogServerEndpoint, RemoteLogger
from repro.core.policy import ReplicationConfig
from repro.middleware import Master, Node
from repro.middleware.msgtypes import StringMsg
from repro.replication import ReplicatedLogger
from repro.util.concurrency import wait_for

pytestmark = pytest.mark.soak

_CHILD_SCRIPT = textwrap.dedent(
    """
    import sys, time
    store_dir = sys.argv[1]
    from repro.core.log_server import LogServer
    from repro.core.remote import LogServerEndpoint
    from repro.storage.durable_store import DurableLogStore

    server = LogServer(DurableLogStore(store_dir, fsync="always"))
    endpoint = LogServerEndpoint(server)
    print("PORT %d" % endpoint.address[2], flush=True)
    while True:
        time.sleep(0.5)
    """
)


def _spawn_replica(store_dir: str) -> "tuple[subprocess.Popen, int]":
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    env.pop("ADLP_CRASHPOINT", None)
    child = subprocess.Popen(
        [sys.executable, "-c", _CHILD_SCRIPT, store_dir],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    line = child.stdout.readline().decode()
    assert line.startswith("PORT "), (line, child.stderr.read().decode())
    return child, int(line.split()[1])


class TestSigkillFailover:
    def test_sigkilled_replica_rejoins_with_no_evidence_loss(
        self, tmp_path, keypool, fast_config
    ):
        store_dir = str(tmp_path / "replica2")
        child, port = _spawn_replica(store_dir)

        servers = [LogServer(), LogServer()]
        endpoints = [LogServerEndpoint(s) for s in servers]
        addresses = [e.address for e in endpoints] + [("tcp", "127.0.0.1", port)]
        shared = ReplicatedLogger(
            addresses,
            config=ReplicationConfig(
                breaker_failure_threshold=2,
                breaker_reset_timeout=0.05,
                breaker_max_reset_timeout=0.2,
            ),
        )
        master = Master()
        pub_protocol = AdlpProtocol(
            "/pub", shared, config=fast_config, keypair=keypool[0]
        )
        sub_protocol = AdlpProtocol(
            "/sub", shared, config=fast_config, keypair=keypool[1]
        )
        pub_node = Node("/pub", master, protocol=pub_protocol)
        sub_node = Node("/sub", master, protocol=sub_protocol)
        restarted = None
        try:
            sub = sub_node.subscribe("/t", StringMsg, lambda m: None)
            pub = pub_node.advertise("/t", StringMsg)
            assert pub.wait_for_subscribers(1)

            for i in range(5):
                pub.publish(StringMsg(data=f"before-{i}"))
            assert sub.wait_for_messages(5)
            assert wait_for(lambda: len(servers[0]) >= 10, timeout=10.0)

            # -- the chaos moment: no cleanup, no flush, just SIGKILL --
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=10)

            for i in range(5):
                pub.publish(StringMsg(data=f"during-{i}"))
                time.sleep(0.02)
            assert sub.wait_for_messages(10)
            assert wait_for(
                lambda: len(servers[0]) >= 20 and len(servers[1]) >= 20,
                timeout=10.0,
            )
            assert wait_for(
                lambda: shared.statuses()[2].breaker == "open", timeout=5.0
            )
            assert shared.quorum_status()["quorum_met"]
            assert shared.stats()["degraded_submits"] == 0  # quorum held

            # -- restart on the same store: the durable prefix survives --
            restarted, new_port = _spawn_replica(store_dir)
            shared.reset_replica(2, ("tcp", "127.0.0.1", new_port))
            time.sleep(0.25)  # let the open interval expire
            shared.probe()  # alive + lagging: must stay quarantined
            assert shared.statuses()[2].breaker == "open"

            results = shared.catch_up(replica=2)
            assert results[0].ok, results
            # the recovered prefix was reused: the replay covered only the
            # suffix the dead process missed, not the whole history
            assert results[0].replayed < len(servers[0])
            assert shared.statuses()[2].breaker == "closed"

            client = RemoteLogger(("tcp", "127.0.0.1", new_port))
            rejoined = client.health()
            client.close()
            reference = servers[0].commitment()
            assert rejoined == reference  # commitment-identical rejoin
        finally:
            pub_node.shutdown()
            sub_node.shutdown()
            shared.close()
            for proc in (child, restarted):
                if proc is not None and proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10)

        # -- the accountability bar: zero false verdicts, nothing hidden.
        # The caught-up replica was killed with the others above; a fresh
        # process over the same durable store serves the identical log.
        audit_child, audit_port = _spawn_replica(store_dir)
        clients = [RemoteLogger(e.address) for e in endpoints] + [
            RemoteLogger(("tcp", "127.0.0.1", audit_port))
        ]
        try:
            audit = audit_replica_set(clients)
            assert audit.divergent == []
            assert audit.unreachable == []
            assert sorted(audit.agreeing) == [0, 1, 2]
            assert audit.report.flagged_components() == []
            assert audit.report.hidden == []
            assert len(audit.report.valid_entries()) == len(servers[0])
        finally:
            for c in clients:
                c.close()
            for endpoint in endpoints:
                endpoint.close()
            if audit_child.poll() is None:
                audit_child.kill()
                audit_child.wait(timeout=10)

    def test_repeated_kill_restart_cycles_converge(self, tmp_path, keypool):
        """Three kill/restart cycles against a durable replica: every
        rejoin lands commitment-identical with the in-process peers."""
        from repro.core.entries import Direction, LogEntry, Scheme

        def entry(seq):
            return LogEntry(
                component_id="/p",
                topic="/t",
                type_name="std/String",
                direction=Direction.OUT,
                seq=seq,
                scheme=Scheme.ADLP,
                data=b"cycle-%04d" % seq,
            )

        store_dir = str(tmp_path / "replica2")
        child, port = _spawn_replica(store_dir)
        servers = [LogServer(), LogServer()]
        endpoints = [LogServerEndpoint(s) for s in servers]
        shared = ReplicatedLogger(
            [e.address for e in endpoints] + [("tcp", "127.0.0.1", port)],
            config=ReplicationConfig(
                breaker_failure_threshold=2, breaker_reset_timeout=0.05
            ),
        )
        shared.register_key("/p", keypool[0].public)
        seq = 0
        try:
            for cycle in range(3):
                for _ in range(4):
                    shared.submit(entry(seq))
                    seq += 1
                os.kill(child.pid, signal.SIGKILL)
                child.wait(timeout=10)
                for _ in range(4):
                    shared.submit(entry(seq))
                    seq += 1
                    time.sleep(0.01)
                assert wait_for(
                    lambda: len(servers[0]) == seq and len(servers[1]) == seq,
                    timeout=10.0,
                )
                child, port = _spawn_replica(store_dir)
                shared.reset_replica(2, ("tcp", "127.0.0.1", port))
                results = shared.catch_up(replica=2)
                assert results[0].ok, (cycle, results)
                client = RemoteLogger(("tcp", "127.0.0.1", port))
                assert client.health() == servers[0].commitment(), cycle
                client.close()
        finally:
            shared.close()
            for endpoint in endpoints:
                endpoint.close()
            if child.poll() is None:
                child.kill()
                child.wait(timeout=10)
