"""Batched fan-out through the replicated logger.

One ``submit_batch`` call sends the batch to every admissible replica as a
single frame; quorum accounting is entry-denominated so the counters stay
comparable with per-entry operation, and skipped replicas are charged the
whole batch.
"""

import pytest

from repro.core import LogServer, LogServerEndpoint
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.policy import ReplicationConfig
from repro.replication import BreakerState, ReplicatedLogger
from repro.util.concurrency import wait_for

FAST = ReplicationConfig(
    breaker_failure_threshold=2,
    breaker_reset_timeout=0.05,
    breaker_max_reset_timeout=0.2,
    health_timeout=2.0,
)


def entry(seq, component="/p"):
    return LogEntry(
        component_id=component,
        topic="/t",
        type_name="std/String",
        direction=Direction.OUT,
        seq=seq,
        scheme=Scheme.ADLP,
        data=b"payload-%04d" % seq,
    )


@pytest.fixture()
def replica_set():
    servers = [LogServer() for _ in range(3)]
    endpoints = [LogServerEndpoint(s) for s in servers]
    yield servers, endpoints
    for endpoint in endpoints:
        endpoint.close()


@pytest.fixture()
def rlogger(replica_set):
    _, endpoints = replica_set
    rlogger = ReplicatedLogger([e.address for e in endpoints], config=FAST)
    yield rlogger
    rlogger.close()


class TestBatchedFanOut:
    def test_batch_reaches_every_replica_in_order(self, replica_set, rlogger):
        servers, _ = replica_set
        batch = [entry(i) for i in range(1, 17)]
        assert rlogger.submit_batch(batch) == [0] * 16
        assert wait_for(lambda: all(len(s) == 16 for s in servers))
        roots = {s.merkle_root() for s in servers}
        assert len(roots) == 1  # identical order everywhere
        for server in servers:
            assert [e.seq for e in server.entries()] == list(range(1, 17))

    def test_batches_interleave_with_singles_identically(self, replica_set, rlogger):
        servers, _ = replica_set
        rlogger.submit(entry(1))
        rlogger.submit_batch([entry(i) for i in range(2, 8)])
        rlogger.submit(entry(8))
        assert wait_for(lambda: all(len(s) == 8 for s in servers))
        reference = LogServer()
        for i in range(1, 9):
            reference.submit(entry(i))
        for server in servers:
            assert server.merkle_root() == reference.merkle_root()

    def test_quorum_accounting_is_entry_denominated(self, replica_set, rlogger):
        rlogger.submit_batch([entry(i) for i in range(1, 11)])
        status = rlogger.quorum_status()
        assert status["last_submit_reached"] == 3
        assert rlogger.submits == 10
        assert rlogger.quorum_submits == 10
        assert rlogger.degraded_submits == 0

    def test_empty_batch_is_noop(self, rlogger):
        assert rlogger.submit_batch([]) == []
        assert rlogger.submits == 0

    def test_open_breaker_skips_whole_batch(self, replica_set, rlogger):
        servers, endpoints = replica_set
        endpoints[0].close()
        # Trip replica 0's breaker with per-entry submissions first.
        rlogger.submit(entry(1))
        rlogger.submit(entry(2))
        handle = rlogger._handles[0]
        assert wait_for(lambda: handle.breaker.state is BreakerState.OPEN)
        skipped_before = handle.skipped
        rlogger.submit_batch([entry(i) for i in range(3, 8)])
        assert handle.skipped == skipped_before + 5
        # The healthy majority still ingested the batch.
        assert wait_for(lambda: all(len(s) == 7 for s in servers[1:]))
        assert rlogger.degraded_submits == 0  # quorum 2/3 still met
