"""Shared fixtures.

RSA key generation is the only expensive setup, so a pool of seeded
512-bit key pairs is generated once per session and handed out by index.
512-bit keys keep tests fast; the algorithms are size-independent and the
crypto unit tests cover 1024-bit (the paper's size) explicitly.

Every randomized test draws (directly or via the ``rng`` fixture) from the
session-wide ``deterministic_seed``, controlled by the ``PYTEST_SEED``
environment variable, so any failing run can be reproduced exactly with
``PYTEST_SEED=<n> pytest ...``.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.crypto.keys import KeyPair, generate_keypair
from repro.core.policy import AdlpConfig

#: Seeded key pool size; tests index into it.
_POOL_SIZE = 12


@pytest.fixture(scope="session")
def deterministic_seed() -> int:
    """The session's master seed (``PYTEST_SEED`` env var, default 1337)."""
    return int(os.environ.get("PYTEST_SEED", "1337"))


@pytest.fixture()
def rng(deterministic_seed) -> random.Random:
    """A fresh, seeded PRNG per test (independent of call ordering in
    other tests, since each test gets its own instance)."""
    return random.Random(deterministic_seed)


@pytest.fixture(scope="session")
def keypool(deterministic_seed):
    """A list of deterministic 512-bit key pairs (master-seed derived).

    Follows the process-default signature scheme (``ADLP_SIG_SCHEME``),
    which is how the CI matrix runs the whole suite under Ed25519."""
    return [
        generate_keypair(512, seed=deterministic_seed + 9000 + i)
        for i in range(_POOL_SIZE)
    ]


@pytest.fixture(scope="session")
def rsa_keypool(deterministic_seed):
    """Like ``keypool`` but explicitly RSA, for RSA-specific tests
    (PKCS#1 internals, legacy wire formats) that must pass under any
    ``ADLP_SIG_SCHEME``."""
    return [
        generate_keypair(512, seed=deterministic_seed + 9000 + i, scheme="rsa")
        for i in range(_POOL_SIZE)
    ]


@pytest.fixture(scope="session")
def keypair_1024(deterministic_seed):
    """One deterministic 1024-bit RSA pair (the paper's scheme and size;
    scheme-pinned so paper-shape tests hold under every CI leg)."""
    return generate_keypair(1024, seed=deterministic_seed + 4242, scheme="rsa")


@pytest.fixture()
def fast_config():
    """An ADLP config sized for tests: small keys, short timeouts."""
    return AdlpConfig(key_bits=512, ack_timeout=2.0)
