"""Shared fixtures.

RSA key generation is the only expensive setup, so a pool of seeded
512-bit key pairs is generated once per session and handed out by index.
512-bit keys keep tests fast; the algorithms are size-independent and the
crypto unit tests cover 1024-bit (the paper's size) explicitly.
"""

from __future__ import annotations

import pytest

from repro.crypto.keys import KeyPair, generate_keypair
from repro.core.policy import AdlpConfig

#: Seeded key pool size; tests index into it.
_POOL_SIZE = 12


@pytest.fixture(scope="session")
def keypool():
    """A list of deterministic 512-bit key pairs."""
    return [generate_keypair(512, seed=9000 + i) for i in range(_POOL_SIZE)]


@pytest.fixture(scope="session")
def keypair_1024():
    """One deterministic 1024-bit pair (the paper's key size)."""
    return generate_keypair(1024, seed=4242)


@pytest.fixture()
def fast_config():
    """An ADLP config sized for tests: small keys, short timeouts."""
    return AdlpConfig(key_bits=512, ack_timeout=2.0)
