import pytest

from repro.middleware import Master, Node
from repro.middleware.graph import (
    build_graph,
    component_graph,
    data_flows,
    end_to_end_paths,
)
from repro.middleware.msgtypes import Float64, StringMsg


@pytest.fixture()
def chain_master():
    """camera -> detector -> controller chain plus a bystander."""
    master = Master()
    nodes = {
        name: Node(name, master)
        for name in ("/camera", "/detector", "/controller", "/bystander")
    }
    nodes["/camera"].advertise("/image", StringMsg)
    nodes["/detector"].subscribe("/image", StringMsg, lambda m: None)
    nodes["/detector"].advertise("/lane", Float64)
    nodes["/controller"].subscribe("/lane", Float64, lambda m: None)
    nodes["/bystander"].subscribe("/image", StringMsg, lambda m: None)
    yield master
    for node in nodes.values():
        node.shutdown()


class TestGraph:
    def test_data_flows(self, chain_master):
        assert data_flows(chain_master) == [
            ("/camera", "/image", "/bystander"),
            ("/camera", "/image", "/detector"),
            ("/detector", "/lane", "/controller"),
        ]

    def test_build_graph_node_kinds(self, chain_master):
        graph = build_graph(chain_master)
        assert graph.nodes["/camera"]["kind"] == "component"
        assert graph.nodes["/image"]["kind"] == "topic"
        assert graph.nodes["/image"]["type_name"] == "std/String"
        assert graph.has_edge("/camera", "/image")
        assert graph.has_edge("/image", "/detector")

    def test_component_graph_edges(self, chain_master):
        graph = component_graph(chain_master)
        assert graph.has_edge("/camera", "/detector")
        assert graph.has_edge("/detector", "/controller")
        assert not graph.has_edge("/camera", "/controller")
        assert graph["/camera"]["/detector"]["topics"] == ["/image"]

    def test_end_to_end_paths(self, chain_master):
        paths = end_to_end_paths(chain_master, "/camera", "/controller")
        assert paths == [["/camera", "/detector", "/controller"]]

    def test_no_path(self, chain_master):
        assert end_to_end_paths(chain_master, "/bystander", "/controller") == []

    def test_unknown_nodes(self, chain_master):
        assert end_to_end_paths(chain_master, "/ghost", "/controller") == []
