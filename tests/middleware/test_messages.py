import pytest

from repro.errors import SchemaError, TopicTypeError
from repro.middleware.messages import (
    Header,
    MessageMeta,
    lookup_message,
    register_message,
    registered_types,
)
from repro.middleware.msgtypes import Image, LaserScan, RawBytes, Steering, StringMsg
from repro.serialization import uint64


class TestHeader:
    def test_roundtrip(self):
        header = Header(seq=7, stamp=1234.5, frame_id="base")
        assert Header.decode(header.encode()) == header

    def test_defaults(self):
        header = Header()
        assert header.seq == 0 and header.stamp == 0.0 and header.frame_id == ""


class TestMessageMeta:
    def test_header_travels_with_payload(self):
        msg = StringMsg(data="hi")
        msg.ensure_header().seq = 42
        decoded = StringMsg.decode(msg.encode())
        assert decoded.header.seq == 42
        assert decoded.data == "hi"

    def test_ensure_header_creates_once(self):
        msg = StringMsg()
        first = msg.ensure_header()
        assert msg.ensure_header() is first

    def test_seq_changes_serialized_bytes(self):
        # The seq is inside the signed digest, as the paper requires.
        a = StringMsg(data="same")
        b = StringMsg(data="same")
        a.ensure_header().seq = 1
        b.ensure_header().seq = 2
        assert a.encode() != b.encode()


class TestRegistry:
    def test_standard_types_registered(self):
        types = registered_types()
        for cls in (Image, LaserScan, Steering, StringMsg, RawBytes):
            assert types[cls.TYPE_NAME] is cls

    def test_lookup(self):
        assert lookup_message("sensors/Image") is Image

    def test_lookup_unknown(self):
        with pytest.raises(TopicTypeError):
            lookup_message("no/Such")

    def test_reregistration_of_same_class_ok(self):
        assert register_message(StringMsg) is StringMsg

    def test_conflicting_registration_rejected(self):
        class Fake(MessageMeta):
            TYPE_NAME = "std/String"  # collides with StringMsg
            x = uint64(2)

        with pytest.raises(SchemaError):
            register_message(Fake)

    def test_non_message_rejected(self):
        with pytest.raises(SchemaError):
            register_message(object)

    def test_invalid_type_name_rejected(self):
        class Bad(MessageMeta):
            TYPE_NAME = "NoSlash"

        with pytest.raises(Exception):
            register_message(Bad)


class TestPayloadSizes:
    """The paper's Table I sizes should be reachable with these types."""

    def test_image_payload_near_paper_size(self):
        frame = Image(
            height=480, width=640, encoding="rgb8", step=1920, data=b"\xab" * 921600
        )
        encoded = len(frame.encode())
        assert abs(encoded - 921641) < 64  # paper: 921641 bytes

    def test_scan_payload_near_paper_size(self):
        scan = LaserScan(
            angle_min=-3.14,
            angle_max=3.14,
            angle_increment=0.006,
            range_min=0.05,
            range_max=12.0,
            ranges=b"\x00" * 4320,
            intensities=b"\x00" * 4320,
        )
        assert abs(len(scan.encode()) - 8705) < 64  # paper: 8705 bytes

    def test_steering_payload_near_paper_size(self):
        steering = Steering(angle=0.25, speed=1.5)
        steering.ensure_header().seq = 1
        steering.header.stamp = 123.0
        assert abs(len(steering.encode()) - 20) <= 16  # paper: 20 bytes
