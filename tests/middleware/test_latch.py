"""Latched topics: late subscribers receive the most recent message."""

import pytest

from repro.core import AdlpProtocol, LogServer
from repro.middleware import Master, Node
from repro.middleware.msgtypes import StringMsg
from repro.util.concurrency import wait_for


class TestLatch:
    def test_late_subscriber_gets_latched_message(self):
        master = Master()
        with Node("/talker", master) as talker, Node("/late", master) as late:
            pub = talker.advertise("/state", StringMsg, latch=True)
            pub.publish(StringMsg(data="old"))
            pub.publish(StringMsg(data="latest"))
            got = []
            sub = late.subscribe("/state", StringMsg, lambda m: got.append(m.data))
            assert sub.wait_for_messages(1)
            assert got == ["latest"]

    def test_non_latched_late_subscriber_gets_nothing(self):
        master = Master()
        with Node("/talker", master) as talker, Node("/late", master) as late:
            pub = talker.advertise("/state", StringMsg)  # no latch
            pub.publish(StringMsg(data="missed"))
            got = []
            sub = late.subscribe("/state", StringMsg, lambda m: got.append(m.data))
            assert sub.wait_for_connection()
            assert not sub.wait_for_messages(1, timeout=0.3)
            assert got == []

    def test_latched_then_live_messages_in_order(self):
        master = Master()
        with Node("/talker", master) as talker, Node("/late", master) as late:
            pub = talker.advertise("/state", StringMsg, latch=True)
            pub.publish(StringMsg(data="latched"))
            got = []
            sub = late.subscribe("/state", StringMsg, lambda m: got.append(m.data))
            assert sub.wait_for_messages(1)
            pub.publish(StringMsg(data="live"))
            assert sub.wait_for_messages(2)
            assert got == ["latched", "live"]

    def test_latched_delivery_is_accountable_under_adlp(self, keypool, fast_config):
        """A latched re-delivery is a real transmission: the subscriber
        ACKs it and both sides log it."""
        master = Master()
        server = LogServer()
        pub_protocol = AdlpProtocol("/talker", server, config=fast_config, keypair=keypool[0])
        sub_protocol = AdlpProtocol("/late", server, config=fast_config, keypair=keypool[1])
        talker = Node("/talker", master, protocol=pub_protocol)
        late = Node("/late", master, protocol=sub_protocol)
        try:
            pub = talker.advertise("/state", StringMsg, latch=True)
            pub.publish(StringMsg(data="latched"))
            got = []
            sub = late.subscribe("/state", StringMsg, lambda m: got.append(m.data))
            assert sub.wait_for_messages(1)
            assert wait_for(lambda: pub_protocol.stats.acks_received >= 1, timeout=5.0)
            pub_protocol.flush()
            sub_protocol.flush()
            assert len(server.entries(component_id="/talker")) == 1
            assert len(server.entries(component_id="/late")) == 1
        finally:
            talker.shutdown()
            late.shutdown()
