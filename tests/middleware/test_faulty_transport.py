"""The chaos layer itself: every fault kind fires deterministically.

These tests drive :class:`FaultyTransport` directly (no protocol on top) so
each fault's wire-level effect can be asserted exactly: scripted faults hit
the exact frame index they name, seeded probabilistic schedules replay
identically, and an all-zero schedule is byte-for-byte transparent.
"""

import time

import pytest

from repro.middleware.transport import (
    FaultProfile,
    FaultSchedule,
    FaultyTransport,
)
from repro.middleware.transport.base import ConnectionClosed
from repro.middleware.transport.faulty import FAULT_KINDS


def connected_pair(transport):
    """One accepted + one connecting endpoint of ``transport``."""
    listener = transport.listen()
    connect_end = transport.connect(listener.address)
    accept_end = listener.accept(timeout=1.0)
    assert accept_end is not None
    return accept_end, connect_end


def drain(connection, timeout=0.2):
    """Collect frames until the line goes quiet."""
    frames = []
    while True:
        try:
            frame = connection.recv_frame(timeout=timeout)
        except ConnectionClosed:
            return frames
        if frame is None:
            return frames
        frames.append(frame)


class TestScriptedFaults:
    def test_drop_removes_exactly_the_scripted_frame(self):
        schedule = FaultSchedule(seed=7).script("accept", 1, "drop")
        transport = FaultyTransport(schedule=schedule)
        accept_end, connect_end = connected_pair(transport)
        for i in range(3):
            accept_end.send_frame(f"frame-{i}".encode())
        assert drain(connect_end) == [b"frame-0", b"frame-2"]
        assert accept_end.applied == [(1, "drop")]
        assert transport.stats.drops == 1
        assert transport.stats.sent == 3

    def test_dup_delivers_the_frame_twice(self):
        schedule = FaultSchedule(seed=7).script("accept", 0, "dup")
        transport = FaultyTransport(schedule=schedule)
        accept_end, connect_end = connected_pair(transport)
        accept_end.send_frame(b"once")
        assert drain(connect_end) == [b"once", b"once"]
        assert transport.stats.dups == 1

    def test_delay_blocks_the_sender_then_delivers(self):
        profile = FaultProfile(delay_by=0.05)
        schedule = FaultSchedule(
            seed=7, accept_side=profile, connect_side=profile
        ).script("accept", 0, "delay")
        transport = FaultyTransport(schedule=schedule)
        accept_end, connect_end = connected_pair(transport)
        start = time.monotonic()
        accept_end.send_frame(b"late")
        elapsed = time.monotonic() - start
        assert elapsed >= 0.04
        assert drain(connect_end) == [b"late"]
        assert transport.stats.delays == 1

    def test_reorder_swaps_adjacent_frames(self):
        schedule = FaultSchedule(seed=7).script("accept", 0, "reorder")
        transport = FaultyTransport(schedule=schedule)
        accept_end, connect_end = connected_pair(transport)
        accept_end.send_frame(b"first")
        accept_end.send_frame(b"second")
        assert drain(connect_end) == [b"second", b"first"]
        assert transport.stats.reorders == 1

    def test_truncate_halves_the_frame(self):
        schedule = FaultSchedule(seed=7).script("accept", 0, "truncate")
        transport = FaultyTransport(schedule=schedule)
        accept_end, connect_end = connected_pair(transport)
        accept_end.send_frame(b"0123456789")
        assert drain(connect_end) == [b"01234"]
        assert transport.stats.truncations == 1

    def test_disconnect_closes_both_ends(self):
        schedule = FaultSchedule(seed=7).script("accept", 1, "disconnect")
        transport = FaultyTransport(schedule=schedule)
        accept_end, connect_end = connected_pair(transport)
        accept_end.send_frame(b"fine")
        with pytest.raises(ConnectionClosed):
            accept_end.send_frame(b"never arrives")
        assert accept_end.closed
        # the peer sees the survivor frame, then the close
        assert connect_end.recv_frame(timeout=0.5) == b"fine"
        with pytest.raises(ConnectionClosed):
            connect_end.recv_frame(timeout=0.5)
        assert transport.stats.disconnects == 1

    def test_script_range_hits_every_frame_from_start_index(self):
        schedule = FaultSchedule(seed=7).script_range("connect", 2, "drop")
        transport = FaultyTransport(schedule=schedule)
        accept_end, connect_end = connected_pair(transport)
        for i in range(5):
            connect_end.send_frame(f"f{i}".encode())
        assert drain(accept_end) == [b"f0", b"f1"]
        assert connect_end.applied == [(2, "drop"), (3, "drop"), (4, "drop")]

    def test_faults_are_per_side(self):
        # scripted on the accept side: the connect side stays clean
        schedule = FaultSchedule(seed=7).script("accept", 0, "drop")
        transport = FaultyTransport(schedule=schedule)
        accept_end, connect_end = connected_pair(transport)
        connect_end.send_frame(b"untouched")
        assert drain(accept_end) == [b"untouched"]
        assert connect_end.applied == []

    def test_unknown_kind_and_side_rejected(self):
        schedule = FaultSchedule()
        with pytest.raises(ValueError):
            schedule.script("accept", 0, "gremlins")
        with pytest.raises(ValueError):
            schedule.script("sideways", 0, "drop")
        with pytest.raises(ValueError):
            FaultProfile(drop=1.5)


class TestDeterminism:
    def _run_once(self, seed):
        transport = FaultyTransport(seed=seed, drop=0.3, dup=0.2, truncate=0.1)
        accept_end, connect_end = connected_pair(transport)
        for i in range(50):
            accept_end.send_frame(f"payload-{i:03d}".encode())
        received = drain(connect_end)
        return received, list(accept_end.applied), transport.stats

    def test_same_seed_replays_identically(self):
        received_a, applied_a, stats_a = self._run_once(seed=1234)
        received_b, applied_b, stats_b = self._run_once(seed=1234)
        assert applied_a  # the profile actually fired
        assert applied_a == applied_b
        assert received_a == received_b
        assert (stats_a.drops, stats_a.dups, stats_a.truncations) == (
            stats_b.drops,
            stats_b.dups,
            stats_b.truncations,
        )

    def test_different_seeds_diverge(self):
        _, applied_a, _ = self._run_once(seed=1234)
        _, applied_b, _ = self._run_once(seed=4321)
        assert applied_a != applied_b

    def test_sides_have_independent_streams(self):
        transport = FaultyTransport(seed=99, drop=0.5)
        accept_end, connect_end = connected_pair(transport)
        for i in range(30):
            accept_end.send_frame(b"a")
            connect_end.send_frame(b"c")
        assert accept_end.applied != connect_end.applied


class TestTransparency:
    def test_zero_probability_schedule_is_byte_for_byte_transparent(self, rng):
        transport = FaultyTransport(seed=5)  # all probabilities zero
        accept_end, connect_end = connected_pair(transport)
        outbound = [rng.randbytes(rng.randrange(0, 512)) for _ in range(30)]
        inbound = [rng.randbytes(rng.randrange(0, 512)) for _ in range(30)]
        for frame in outbound:
            accept_end.send_frame(frame)
        for frame in inbound:
            connect_end.send_frame(frame)
        assert drain(connect_end) == outbound
        assert drain(accept_end) == inbound
        assert transport.stats.total_faults() == 0
        assert accept_end.applied == []
        assert connect_end.applied == []
        assert transport.stats.sent == 60

    def test_profile_transparency_flag(self):
        assert FaultProfile().is_transparent
        for kind in FAULT_KINDS:
            assert not FaultProfile(**{kind: 0.5}).is_transparent
