import socket
import threading

import pytest

from repro.errors import TransportError
from repro.middleware.transport import framing


def socket_pair():
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    client = socket.create_connection(server.getsockname())
    accepted, _ = server.accept()
    server.close()
    return client, accepted


class TestEncodeFrame:
    def test_preamble_is_4_byte_little_endian(self):
        raw = framing.encode_frame(b"abc")
        assert raw == b"\x03\x00\x00\x00abc"

    def test_empty_payload(self):
        assert framing.encode_frame(b"") == b"\x00\x00\x00\x00"

    def test_overhead_constant(self):
        assert framing.frame_overhead() == 4  # the paper's Table III preamble

    def test_oversized_rejected(self):
        with pytest.raises(TransportError):
            framing.encode_frame(b"x" * (framing.MAX_FRAME_SIZE + 1))


class TestSocketFraming:
    def test_roundtrip(self):
        a, b = socket_pair()
        try:
            framing.send_frame(a, b"hello world")
            assert framing.recv_frame(b) == b"hello world"
        finally:
            a.close()
            b.close()

    def test_multiple_frames_no_coalescing(self):
        a, b = socket_pair()
        try:
            for i in range(10):
                framing.send_frame(a, f"frame-{i}".encode())
            for i in range(10):
                assert framing.recv_frame(b) == f"frame-{i}".encode()
        finally:
            a.close()
            b.close()

    def test_orderly_close_returns_none(self):
        a, b = socket_pair()
        try:
            a.close()
            assert framing.recv_frame(b) is None
        finally:
            b.close()

    def test_mid_frame_close_raises(self):
        a, b = socket_pair()
        try:
            a.sendall(b"\xff\x00\x00\x00partial")  # claims 255 bytes
            a.close()
            with pytest.raises(TransportError):
                framing.recv_frame(b)
        finally:
            b.close()

    def test_oversized_announcement_rejected(self):
        a, b = socket_pair()
        try:
            a.sendall((framing.MAX_FRAME_SIZE + 1).to_bytes(4, "little"))
            with pytest.raises(TransportError):
                framing.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_large_frame_chunked_delivery(self):
        a, b = socket_pair()
        payload = bytes(range(256)) * 2048  # 512 KiB forces chunked recv
        try:
            sender = threading.Thread(target=framing.send_frame, args=(a, payload))
            sender.start()
            assert framing.recv_frame(b) == payload
            sender.join()
        finally:
            a.close()
            b.close()


class TestFramingProperties:
    """Property-style checks over randomized inputs (seeded via the shared
    ``rng`` fixture, reproducible with ``PYTEST_SEED``)."""

    def test_arbitrary_payloads_roundtrip(self, rng):
        """Any payload -- any length, any bytes -- survives frame/deframe
        unchanged, including back-to-back frames on one stream."""
        a, b = socket_pair()
        payloads = [
            rng.randbytes(rng.randrange(0, 4096)) for _ in range(60)
        ] + [b"", b"\x00" * 4, bytes(range(256))]
        try:
            sender = threading.Thread(
                target=lambda: [framing.send_frame(a, p) for p in payloads]
            )
            sender.start()
            for expected in payloads:
                assert framing.recv_frame(b) == expected
            sender.join()
        finally:
            a.close()
            b.close()

    def test_encode_frame_is_parseable_prefix(self, rng):
        """encode_frame's preamble always announces exactly the payload
        length, so deframing is a pure prefix read."""
        for _ in range(50):
            payload = rng.randbytes(rng.randrange(0, 2048))
            raw = framing.encode_frame(payload)
            assert len(raw) == framing.frame_overhead() + len(payload)
            assert int.from_bytes(raw[:4], "little") == len(payload)
            assert raw[4:] == payload

    def test_truncated_frame_raises_not_hangs(self, rng):
        """A frame cut off at any point after the preamble must raise
        TransportError once the stream ends -- never return a short payload
        or block forever."""
        for _ in range(20):
            a, b = socket_pair()
            payload = rng.randbytes(rng.randrange(8, 512))
            raw = framing.encode_frame(payload)
            cut = rng.randrange(4, len(raw))  # keep preamble, lose payload tail
            try:
                a.sendall(raw[:cut])
                a.close()
                b.settimeout(2.0)  # hang guard: fail loudly, don't block
                with pytest.raises(TransportError):
                    framing.recv_frame(b)
            finally:
                b.close()

    def test_corrupted_length_raises_not_hangs(self, rng):
        """A length preamble corrupted past MAX_FRAME_SIZE is rejected
        before any payload is read."""
        for _ in range(20):
            a, b = socket_pair()
            length = rng.randrange(framing.MAX_FRAME_SIZE + 1, 2**32)
            try:
                a.sendall(length.to_bytes(4, "little"))
                b.settimeout(2.0)
                with pytest.raises(TransportError):
                    framing.recv_frame(b)
            finally:
                a.close()
                b.close()
