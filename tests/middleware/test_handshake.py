import pytest

from repro.errors import TopicTypeError, TransportError
from repro.middleware import handshake
from repro.middleware.transport.inproc import InprocConnection


class TestHandshake:
    def test_roundtrip(self):
        a, b = InprocConnection.pair()
        handshake.send_header(a, "/sub", "/t", "std/String", "subscriber")
        header = handshake.recv_header(b, timeout=1.0)
        assert header.node_id == "/sub"
        assert header.topic == "/t"
        assert header.type_name == "std/String"
        assert header.role == "subscriber"

    def test_timeout_returns_none(self):
        a, b = InprocConnection.pair()
        assert handshake.recv_header(b, timeout=0.05) is None

    def test_malformed_header_raises(self):
        a, b = InprocConnection.pair()
        a.send_frame(b"\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff")
        with pytest.raises(TransportError):
            handshake.recv_header(b, timeout=1.0)

    def test_check_accepts_matching(self):
        header = handshake.ConnectionHeader(
            node_id="/sub", topic="/t", type_name="std/String", role="subscriber"
        )
        handshake.check_header(header, "/t", "std/String", "subscriber")

    def test_check_rejects_wrong_topic(self):
        header = handshake.ConnectionHeader(
            node_id="/sub", topic="/other", type_name="std/String", role="subscriber"
        )
        with pytest.raises(TransportError):
            handshake.check_header(header, "/t", "std/String", "subscriber")

    def test_check_rejects_wrong_type(self):
        header = handshake.ConnectionHeader(
            node_id="/sub", topic="/t", type_name="sensors/Image", role="subscriber"
        )
        with pytest.raises(TopicTypeError):
            handshake.check_header(header, "/t", "std/String", "subscriber")

    def test_check_rejects_wrong_role(self):
        header = handshake.ConnectionHeader(
            node_id="/sub", topic="/t", type_name="std/String", role="publisher"
        )
        with pytest.raises(TransportError):
            handshake.check_header(header, "/t", "std/String", "subscriber")
