"""Record/replay ("bag") tests, including the ADLP-replay composition."""

import time

import pytest

from repro.errors import DecodingError
from repro.middleware import Master, Node
from repro.middleware.msgtypes import Float64, StringMsg
from repro.middleware.recording import BagReader, BagRecord, BagWriter, Player, Recorder
from repro.util.concurrency import wait_for


class TestBagFile:
    def test_write_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.bag")
        writer = BagWriter(path)
        for i in range(3):
            writer.write(
                BagRecord(topic="/t", type_name="std/String", stamp=float(i), payload=bytes([i]))
            )
        writer.close()
        records = BagReader(path).records()
        assert [r.stamp for r in records] == [0.0, 1.0, 2.0]
        assert records[2].payload == b"\x02"

    def test_non_bag_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"\x05\x00\x00\x00hello")
        with pytest.raises(DecodingError):
            BagReader(str(path)).records()

    def test_topics_index(self, tmp_path):
        path = str(tmp_path / "t.bag")
        writer = BagWriter(path)
        writer.write(BagRecord(topic="/a", type_name="std/String", stamp=0.0, payload=b"x"))
        writer.write(BagRecord(topic="/b", type_name="std/Float64", stamp=0.0, payload=b"y"))
        writer.close()
        assert BagReader(path).topics() == {
            "/a": "std/String",
            "/b": "std/Float64",
        }


class TestRecorder:
    def test_records_live_traffic(self, tmp_path):
        master = Master()
        path = str(tmp_path / "live.bag")
        with Node("/talker", master) as talker:
            pub = talker.advertise("/chat", StringMsg)
            recorder = Recorder(master, path)
            assert recorder.topics == ["/chat"]
            pub.wait_for_subscribers(1)
            for i in range(4):
                pub.publish(StringMsg(data=f"m{i}"))
            assert wait_for(lambda: recorder.count == 4, timeout=5.0)
            recorder.stop()
        records = BagReader(path).records()
        decoded = [StringMsg.decode(r.payload).data for r in records]
        assert decoded == ["m0", "m1", "m2", "m3"]

    def test_topic_selection(self, tmp_path):
        master = Master()
        with Node("/a", master) as a, Node("/b", master) as b:
            pa = a.advertise("/one", StringMsg)
            pb = b.advertise("/two", Float64)
            recorder = Recorder(master, str(tmp_path / "sel.bag"), topics=["/two"])
            assert recorder.topics == ["/two"]
            pb.wait_for_subscribers(1)
            pa.publish(StringMsg(data="ignored"))
            pb.publish(Float64(data=1.5))
            assert wait_for(lambda: recorder.count == 1, timeout=5.0)
            recorder.stop()


class TestPlayer:
    def _record_session(self, tmp_path):
        master = Master()
        path = str(tmp_path / "session.bag")
        with Node("/talker", master) as talker:
            pub = talker.advertise("/chat", StringMsg)
            recorder = Recorder(master, path)
            pub.wait_for_subscribers(1)
            for i in range(3):
                pub.publish(StringMsg(data=f"m{i}"))
            wait_for(lambda: recorder.count == 3, timeout=5.0)
            recorder.stop()
        return path

    def test_replay_delivers_same_payloads(self, tmp_path):
        path = self._record_session(tmp_path)
        replay_master = Master()
        got = []
        with Node("/listener", replay_master) as listener:
            sub = listener.subscribe("/chat", StringMsg, lambda m: got.append(m.data))
            player = Player(replay_master, path)
            published = player.play(rate=0, wait_for_subscribers=1)
            assert published == 3
            assert sub.wait_for_messages(3)
            player.stop()
        assert got == ["m0", "m1", "m2"]

    def test_replay_restamps_headers(self, tmp_path):
        path = self._record_session(tmp_path)
        replay_master = Master()
        seqs = []
        with Node("/listener", replay_master) as listener:
            sub = listener.subscribe("/chat", StringMsg, lambda m: seqs.append(m.header.seq))
            player = Player(replay_master, path)
            player.play(rate=0, wait_for_subscribers=1)
            sub.wait_for_messages(3)
            player.stop()
        assert seqs == [1, 2, 3]  # fresh sequence numbers

    def test_replay_under_adlp_is_accountable(self, tmp_path, keypool, fast_config):
        """Replay composes with ADLP: the re-execution is fully logged."""
        from repro.audit import Auditor, Topology
        from repro.core import AdlpProtocol, LogServer

        path = self._record_session(tmp_path)
        replay_master = Master()
        server = LogServer()
        player_protocol = AdlpProtocol("/player", server, config=fast_config, keypair=keypool[0])
        listener_protocol = AdlpProtocol("/listener", server, config=fast_config, keypair=keypool[1])
        player = Player(replay_master, path, protocol=player_protocol)
        listener = Node("/listener", replay_master, protocol=listener_protocol)
        try:
            sub = listener.subscribe("/chat", StringMsg, lambda m: None)
            assert player.play(rate=0, wait_for_subscribers=1) == 3
            assert sub.wait_for_messages(3)
            wait_for(lambda: player_protocol.stats.acks_received >= 3, timeout=5.0)
            player_protocol.flush()
            listener_protocol.flush()
        finally:
            player.stop()
            listener.shutdown()
        report = Auditor.for_server(
            server, Topology(publisher_of={"/chat": "/player"})
        ).audit_server(server)
        assert report.flagged_components() == []
        assert len(report.valid_entries()) == 6

    def test_paced_replay_preserves_relative_timing(self, tmp_path):
        # hand-write a bag with 0.15 s spacing and replay at rate 1
        path = str(tmp_path / "paced.bag")
        writer = BagWriter(path)
        base = 100.0
        for i in range(3):
            msg = StringMsg(data=f"m{i}")
            writer.write(
                BagRecord(topic="/chat", type_name="std/String", stamp=base + 0.15 * i, payload=msg.encode())
            )
        writer.close()
        replay_master = Master()
        stamps = []
        with Node("/listener", replay_master) as listener:
            sub = listener.subscribe("/chat", StringMsg, lambda m: stamps.append(time.monotonic()))
            player = Player(replay_master, path)
            t0 = time.monotonic()
            player.play(rate=1.0, wait_for_subscribers=1)
            duration = time.monotonic() - t0
            sub.wait_for_messages(3)
            player.stop()
        assert duration >= 0.25  # two 0.15 s gaps, minus scheduling slack
