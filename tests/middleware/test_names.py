import pytest

from repro.errors import NameError_
from repro.middleware.names import (
    basename_of,
    namespace_of,
    validate_name,
    validate_type_name,
)


class TestValidateName:
    @pytest.mark.parametrize(
        "raw,canonical",
        [
            ("camera", "/camera"),
            ("/camera", "/camera"),
            ("camera/image_raw", "/camera/image_raw"),
            ("/a/b/c/", "/a/b/c"),
            ("Node_1", "/Node_1"),
        ],
    )
    def test_canonicalization(self, raw, canonical):
        assert validate_name(raw) == canonical

    @pytest.mark.parametrize(
        "bad", ["", "/", "//", "1camera", "/a//b", "a b", "a-b", "a.b", None]
    )
    def test_invalid_names(self, bad):
        with pytest.raises(NameError_):
            validate_name(bad)

    def test_error_mentions_kind(self):
        with pytest.raises(NameError_, match="topic"):
            validate_name("", "topic")


class TestValidateTypeName:
    def test_accepts_pkg_slash_type(self):
        assert validate_type_name("sensors/Image") == "sensors/Image"

    @pytest.mark.parametrize("bad", ["Image", "a/b/c", "/Image", "pkg/", "", None])
    def test_rejects_malformed(self, bad):
        with pytest.raises(NameError_):
            validate_type_name(bad)


class TestNamespaceHelpers:
    def test_namespace_of_nested(self):
        assert namespace_of("/camera/image_raw") == "/camera"

    def test_namespace_of_toplevel(self):
        assert namespace_of("/scan") == "/"

    def test_basename(self):
        assert basename_of("/camera/image_raw") == "image_raw"
        assert basename_of("/scan") == "scan"
