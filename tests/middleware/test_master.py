import pytest

from repro.errors import DuplicatePublisherError, TopicTypeError
from repro.middleware.master import Master, PublisherInfo


ADDRESS = ("inproc", "fake")


class TestPublisherRegistration:
    def test_register_and_lookup(self):
        master = Master()
        info = master.register_publisher("/cam", "/image", "sensors/Image", ADDRESS)
        assert master.lookup_publisher("/image") == info
        assert info.node_id == "/cam"

    def test_single_publisher_invariant(self):
        # Section II: no two components publish the same data type.
        master = Master()
        master.register_publisher("/cam1", "/image", "sensors/Image", ADDRESS)
        with pytest.raises(DuplicatePublisherError):
            master.register_publisher("/cam2", "/image", "sensors/Image", ADDRESS)

    def test_unregister_then_reregister(self):
        master = Master()
        master.register_publisher("/cam1", "/image", "sensors/Image", ADDRESS)
        master.unregister_publisher("/cam1", "/image")
        master.register_publisher("/cam2", "/image", "sensors/Image", ADDRESS)
        assert master.lookup_publisher("/image").node_id == "/cam2"

    def test_unregister_wrong_owner_is_noop(self):
        master = Master()
        master.register_publisher("/cam1", "/image", "sensors/Image", ADDRESS)
        master.unregister_publisher("/other", "/image")
        assert master.lookup_publisher("/image") is not None

    def test_topic_name_canonicalized(self):
        master = Master()
        master.register_publisher("/cam", "image", "sensors/Image", ADDRESS)
        assert master.lookup_publisher("/image") is not None


class TestTypeConsistency:
    def test_subscriber_type_mismatch_rejected(self):
        master = Master()
        master.register_publisher("/cam", "/t", "sensors/Image", ADDRESS)
        with pytest.raises(TopicTypeError):
            master.register_subscriber("/sub", "/t", "std/String", lambda info: None)

    def test_publisher_type_mismatch_rejected(self):
        master = Master()
        master.register_subscriber("/sub", "/t", "std/String", lambda info: None)
        with pytest.raises(TopicTypeError):
            master.register_publisher("/cam", "/t", "sensors/Image", ADDRESS)


class TestSubscriberNotification:
    def test_existing_publisher_returned(self):
        master = Master()
        master.register_publisher("/cam", "/t", "sensors/Image", ADDRESS)
        current = master.register_subscriber(
            "/sub", "/t", "sensors/Image", lambda info: None
        )
        assert current is not None and current.node_id == "/cam"

    def test_late_publisher_announced(self):
        master = Master()
        announced = []
        current = master.register_subscriber(
            "/sub", "/t", "sensors/Image", announced.append
        )
        assert current is None
        master.register_publisher("/cam", "/t", "sensors/Image", ADDRESS)
        assert [i.node_id for i in announced] == ["/cam"]

    def test_unregistered_subscriber_not_notified(self):
        master = Master()
        announced = []
        master.register_subscriber("/sub", "/t", "sensors/Image", announced.append)
        master.unregister_subscriber("/sub", "/t")
        master.register_publisher("/cam", "/t", "sensors/Image", ADDRESS)
        assert announced == []


class TestIntrospection:
    def test_topics_includes_subscribed_only_topics(self):
        master = Master()
        master.register_subscriber("/sub", "/t", "std/String", lambda info: None)
        assert master.topics() == {"/t": "std/String"}

    def test_subscriber_ids(self):
        master = Master()
        master.register_subscriber("/a", "/t", "std/String", lambda info: None)
        master.register_subscriber("/b", "/t", "std/String", lambda info: None)
        assert sorted(master.subscriber_ids("/t")) == ["/a", "/b"]


class TestDeadSubscriberCleanup:
    def test_raising_callback_is_dropped_and_others_still_served(self, caplog):
        """A subscriber whose announcement callback raises (a torn-down
        node) is dropped from the registry -- it must not poison the loop
        for live subscribers, nor be re-announced to forever."""
        master = Master()
        announced = []

        def dead(info):
            raise RuntimeError("subscriber went away")

        master.register_subscriber("/dead", "/t", "sensors/Image", dead)
        master.register_subscriber("/live", "/t", "sensors/Image", announced.append)
        with caplog.at_level("WARNING", logger="repro.middleware.master"):
            master.register_publisher("/cam", "/t", "sensors/Image", ADDRESS)
        # the live subscriber was still notified, after the dead one threw
        assert [i.node_id for i in announced] == ["/cam"]
        # the dead record is gone; the live one remains
        assert master.subscriber_ids("/t") == ["/live"]
        assert any(
            "dropping subscriber" in r.getMessage() and "/dead" in r.getMessage()
            for r in caplog.records
        )

    def test_next_publisher_no_longer_announces_to_dead_subscriber(self):
        master = Master()
        calls = {"dead": 0, "live": 0}

        def dead(info):
            calls["dead"] += 1
            raise RuntimeError("gone")

        master.register_subscriber("/dead", "/t", "sensors/Image", dead)
        master.register_subscriber(
            "/live", "/t", "sensors/Image", lambda info: calls.__setitem__(
                "live", calls["live"] + 1
            )
        )
        master.register_publisher("/cam", "/t", "sensors/Image", ADDRESS)
        master.unregister_publisher("/cam", "/t")
        master.register_publisher("/cam2", "/t", "sensors/Image", ADDRESS)
        assert calls["dead"] == 1  # dropped after the first failure
        assert calls["live"] == 2  # served by both announcements

    def test_identical_looking_registrations_drop_only_the_dead_one(self):
        """Removal is by record identity: a second registration with the
        same node id and type but a healthy callback must survive the
        dead twin's removal."""
        master = Master()
        announced = []

        def dead(info):
            raise RuntimeError("gone")

        master.register_subscriber("/sub", "/t", "sensors/Image", dead)
        master.register_subscriber("/sub", "/t", "sensors/Image", announced.append)
        master.register_publisher("/cam", "/t", "sensors/Image", ADDRESS)
        assert len(announced) == 1
        assert master.subscriber_ids("/t") == ["/sub"]  # the healthy twin
