import pytest

from repro.errors import DuplicatePublisherError, TopicTypeError
from repro.middleware.master import Master, PublisherInfo


ADDRESS = ("inproc", "fake")


class TestPublisherRegistration:
    def test_register_and_lookup(self):
        master = Master()
        info = master.register_publisher("/cam", "/image", "sensors/Image", ADDRESS)
        assert master.lookup_publisher("/image") == info
        assert info.node_id == "/cam"

    def test_single_publisher_invariant(self):
        # Section II: no two components publish the same data type.
        master = Master()
        master.register_publisher("/cam1", "/image", "sensors/Image", ADDRESS)
        with pytest.raises(DuplicatePublisherError):
            master.register_publisher("/cam2", "/image", "sensors/Image", ADDRESS)

    def test_unregister_then_reregister(self):
        master = Master()
        master.register_publisher("/cam1", "/image", "sensors/Image", ADDRESS)
        master.unregister_publisher("/cam1", "/image")
        master.register_publisher("/cam2", "/image", "sensors/Image", ADDRESS)
        assert master.lookup_publisher("/image").node_id == "/cam2"

    def test_unregister_wrong_owner_is_noop(self):
        master = Master()
        master.register_publisher("/cam1", "/image", "sensors/Image", ADDRESS)
        master.unregister_publisher("/other", "/image")
        assert master.lookup_publisher("/image") is not None

    def test_topic_name_canonicalized(self):
        master = Master()
        master.register_publisher("/cam", "image", "sensors/Image", ADDRESS)
        assert master.lookup_publisher("/image") is not None


class TestTypeConsistency:
    def test_subscriber_type_mismatch_rejected(self):
        master = Master()
        master.register_publisher("/cam", "/t", "sensors/Image", ADDRESS)
        with pytest.raises(TopicTypeError):
            master.register_subscriber("/sub", "/t", "std/String", lambda info: None)

    def test_publisher_type_mismatch_rejected(self):
        master = Master()
        master.register_subscriber("/sub", "/t", "std/String", lambda info: None)
        with pytest.raises(TopicTypeError):
            master.register_publisher("/cam", "/t", "sensors/Image", ADDRESS)


class TestSubscriberNotification:
    def test_existing_publisher_returned(self):
        master = Master()
        master.register_publisher("/cam", "/t", "sensors/Image", ADDRESS)
        current = master.register_subscriber(
            "/sub", "/t", "sensors/Image", lambda info: None
        )
        assert current is not None and current.node_id == "/cam"

    def test_late_publisher_announced(self):
        master = Master()
        announced = []
        current = master.register_subscriber(
            "/sub", "/t", "sensors/Image", announced.append
        )
        assert current is None
        master.register_publisher("/cam", "/t", "sensors/Image", ADDRESS)
        assert [i.node_id for i in announced] == ["/cam"]

    def test_unregistered_subscriber_not_notified(self):
        master = Master()
        announced = []
        master.register_subscriber("/sub", "/t", "sensors/Image", announced.append)
        master.unregister_subscriber("/sub", "/t")
        master.register_publisher("/cam", "/t", "sensors/Image", ADDRESS)
        assert announced == []


class TestIntrospection:
    def test_topics_includes_subscribed_only_topics(self):
        master = Master()
        master.register_subscriber("/sub", "/t", "std/String", lambda info: None)
        assert master.topics() == {"/t": "std/String"}

    def test_subscriber_ids(self):
        master = Master()
        master.register_subscriber("/a", "/t", "std/String", lambda info: None)
        master.register_subscriber("/b", "/t", "std/String", lambda info: None)
        assert sorted(master.subscriber_ids("/t")) == ["/a", "/b"]
