"""Roundtrips and semantics of the standard message types."""

import math

import pytest

from repro.middleware.msgtypes import (
    Float64,
    Image,
    LaneOffset,
    LaserScan,
    ObstacleArray,
    PlannedPath,
    RawBytes,
    Steering,
    StringMsg,
    TrafficSign,
    VehicleState,
)


class TestRoundtrips:
    @pytest.mark.parametrize(
        "msg",
        [
            RawBytes(data=b"\x00\x01\x02"),
            StringMsg(data="hello"),
            Float64(data=-2.5),
            Steering(angle=0.3, speed=1.5),
            LaneOffset(offset_m=-0.2, heading_error_rad=0.05, confidence=0.9),
            TrafficSign(sign="stop", confidence=1.0, distance_m=2.5),
            PlannedPath(curvature=0.1, target_speed=2.0, braking=True, reason="stop_sign"),
            VehicleState(x=1.0, y=-2.0, heading_rad=math.pi / 4, speed=2.0, lap=3),
        ],
        ids=lambda m: type(m).__name__,
    )
    def test_encode_decode(self, msg):
        assert type(msg).decode(msg.encode()) == msg

    def test_image_roundtrip(self):
        img = Image(height=2, width=2, encoding="rgb8", step=6, data=b"\x01" * 12)
        decoded = Image.decode(img.encode())
        assert decoded.data == b"\x01" * 12
        assert decoded.encoding == "rgb8"

    def test_laserscan_roundtrip(self):
        scan = LaserScan(
            angle_min=-math.pi,
            angle_max=math.pi,
            angle_increment=0.01,
            range_min=0.05,
            range_max=12.0,
            ranges=b"\x00" * 16,
            intensities=b"\xff" * 16,
        )
        decoded = LaserScan.decode(scan.encode())
        assert decoded.range_max == 12.0
        assert decoded.intensities == b"\xff" * 16

    def test_obstacle_array_repeated_floats(self):
        msg = ObstacleArray(angles_rad=[-0.1, 0.0, 0.2], distances_m=[1.0, 2.0, 3.0])
        decoded = ObstacleArray.decode(msg.encode())
        assert decoded.angles_rad == [-0.1, 0.0, 0.2]
        assert decoded.distances_m == [1.0, 2.0, 3.0]

    def test_vehicle_state_negative_lap(self):
        msg = VehicleState(lap=-1)  # sint64 handles negatives
        assert VehicleState.decode(msg.encode()).lap == -1


class TestTypeNames:
    def test_all_types_have_valid_names(self):
        for cls in (RawBytes, StringMsg, Float64, Image, LaserScan, Steering,
                    LaneOffset, TrafficSign, ObstacleArray, PlannedPath, VehicleState):
            assert cls.TYPE_NAME.count("/") == 1
