"""Unit tests for both transports against the shared Connection contract."""

import threading
import time

import pytest

from repro.errors import TransportError
from repro.middleware.transport.base import ConnectionClosed
from repro.middleware.transport.inproc import InprocConnection, InprocTransport
from repro.middleware.transport.tcp import TcpTransport


@pytest.fixture(params=["inproc", "tcp"])
def transport(request):
    if request.param == "inproc":
        return InprocTransport()
    return TcpTransport()


def connected_pair(transport):
    listener = transport.listen()
    client = transport.connect(listener.address)
    server = listener.accept(timeout=2.0)
    assert server is not None
    return listener, client, server


class TestConnectionContract:
    def test_send_recv_both_directions(self, transport):
        listener, client, server = connected_pair(transport)
        client.send_frame(b"ping")
        assert server.recv_frame(timeout=2.0) == b"ping"
        server.send_frame(b"pong")
        assert client.recv_frame(timeout=2.0) == b"pong"
        listener.close()

    def test_frames_preserve_boundaries(self, transport):
        listener, client, server = connected_pair(transport)
        client.send_frame(b"one")
        client.send_frame(b"two")
        client.send_frame(b"")
        assert server.recv_frame(timeout=2.0) == b"one"
        assert server.recv_frame(timeout=2.0) == b"two"
        assert server.recv_frame(timeout=2.0) == b""
        listener.close()

    def test_large_frame(self, transport):
        listener, client, server = connected_pair(transport)
        payload = bytes(range(256)) * 4096  # 1 MiB
        client.send_frame(payload)
        assert server.recv_frame(timeout=5.0) == payload
        listener.close()

    def test_recv_timeout_returns_none(self, transport):
        listener, client, server = connected_pair(transport)
        assert server.recv_frame(timeout=0.05) is None
        listener.close()

    def test_peer_close_raises(self, transport):
        listener, client, server = connected_pair(transport)
        client.close()
        with pytest.raises(ConnectionClosed):
            # may need to drain a close notification first
            for _ in range(3):
                server.recv_frame(timeout=1.0)
        listener.close()

    def test_send_after_close_raises(self, transport):
        listener, client, server = connected_pair(transport)
        client.close()
        with pytest.raises(ConnectionClosed):
            client.send_frame(b"late")
        listener.close()

    def test_closed_property(self, transport):
        listener, client, server = connected_pair(transport)
        assert not client.closed
        client.close()
        assert client.closed
        listener.close()

    def test_connect_to_closed_listener_fails(self, transport):
        listener = transport.listen()
        address = listener.address
        listener.close()
        with pytest.raises(TransportError):
            conn = transport.connect(address)
            # TCP may accept at the OS level; force a roundtrip to detect
            conn.send_frame(b"x")
            if conn.recv_frame(timeout=0.5) is None:
                raise TransportError("no listener")

    def test_connect_bad_address(self, transport):
        with pytest.raises(TransportError):
            transport.connect(("bogus",))


class TestInprocSpecifics:
    def test_pair_is_symmetric(self):
        a, b = InprocConnection.pair()
        a.send_frame(b"x")
        assert b.recv_frame(timeout=1.0) == b"x"
        b.send_frame(b"y")
        assert a.recv_frame(timeout=1.0) == b"y"

    def test_rejects_non_bytes(self):
        a, b = InprocConnection.pair()
        with pytest.raises(TransportError):
            a.send_frame("text")

    def test_listener_accept_timeout(self):
        transport = InprocTransport()
        listener = transport.listen()
        assert listener.accept(timeout=0.05) is None


class TestTcpSpecifics:
    def test_address_shape(self):
        listener = TcpTransport().listen()
        kind, host, port = listener.address
        assert kind == "tcp" and host == "127.0.0.1" and port > 0
        listener.close()

    def test_concurrent_connections(self):
        transport = TcpTransport()
        listener = transport.listen()
        accepted = []

        def acceptor():
            for _ in range(4):
                conn = listener.accept(timeout=2.0)
                if conn:
                    accepted.append(conn)

        thread = threading.Thread(target=acceptor)
        thread.start()
        clients = [transport.connect(listener.address) for _ in range(4)]
        thread.join()
        assert len(accepted) == 4
        for i, client in enumerate(clients):
            client.send_frame(f"c{i}".encode())
        got = sorted(conn.recv_frame(timeout=2.0) for conn in accepted)
        assert got == [b"c0", b"c1", b"c2", b"c3"]
        listener.close()


class TestTcpPeerClosedPeek:
    def test_peek_does_not_disturb_concurrent_sends(self):
        """The pre-send liveness peek must not mutate socket state: a
        concurrent ``send_frame`` caught inside a blocking-mode toggle
        would hit EAGAIN mid-frame and be misclassified as a stalled
        peer, closing a healthy connection."""
        transport = TcpTransport(send_timeout=5.0)
        listener = transport.listen()
        client = transport.connect(listener.address)
        server = listener.accept(timeout=2.0)
        assert server is not None
        stop = threading.Event()
        peeked_closed = []

        def peeker():
            while not stop.is_set():
                if client.peer_closed():
                    peeked_closed.append(True)

        payload = b"x" * 65536
        frames = 100
        received = []

        def drain():
            while len(received) < frames:
                frame = server.recv_frame(timeout=5.0)
                if frame is not None:
                    received.append(frame)

        peek_thread = threading.Thread(target=peeker)
        drain_thread = threading.Thread(target=drain)
        peek_thread.start()
        drain_thread.start()
        try:
            for _ in range(frames):
                client.send_frame(payload)  # must never raise
        finally:
            stop.set()
            peek_thread.join(timeout=5.0)
        drain_thread.join(timeout=10.0)
        assert len(received) == frames
        assert all(frame == payload for frame in received)
        assert not client.closed  # no spurious stalled-peer verdict
        assert peeked_closed == []  # the peer never actually closed
        client.close()
        server.close()
        listener.close()

    def test_peek_preserves_socket_timeout(self):
        """``peer_closed`` must leave the socket's timeout/blocking mode
        exactly as it found it, whatever that was."""
        transport = TcpTransport()
        listener = transport.listen()
        client = transport.connect(listener.address)
        server = listener.accept(timeout=2.0)
        for mode in (None, 0.5):
            client._sock.settimeout(mode)
            assert client.peer_closed() is False
            assert client._sock.gettimeout() == mode
        server.send_frame(b"buffered")  # pending data must not read as EOF
        import time as _time

        _time.sleep(0.05)  # let the frame cross loopback
        assert client.peer_closed() is False
        assert client.recv_frame(timeout=2.0) == b"buffered"
        server.close()
        _time.sleep(0.05)
        assert client.peer_closed() is True
        client.close()
        listener.close()


class TestTcpSendTimeout:
    def test_send_to_stalled_peer_raises_instead_of_hanging(self):
        """A peer that stops draining its socket must not park the sender
        forever: once the kernel buffer is full, ``send_frame`` blocks
        until ``send_timeout`` and then raises a ``TransportError``."""
        import socket

        transport = TcpTransport(send_timeout=0.3)
        listener = transport.listen()
        client = transport.connect(listener.address)
        server = listener.accept(timeout=2.0)
        assert server is not None
        # shrink the send buffer so the kernel absorbs as little as possible
        client._sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 8192)
        payload = b"x" * (1 << 20)
        start = time.monotonic()
        with pytest.raises(TransportError, match="timed out"):
            for _ in range(64):  # enough to overrun any default buffering
                client.send_frame(payload)
        elapsed = time.monotonic() - start
        assert elapsed < 10.0  # it gave up, it did not hang
        assert client.closed  # a timed-out connection is dead, not limbo
        server.close()
        listener.close()

    def test_send_timeout_disabled_with_none(self):
        """``send_timeout=None`` keeps the old unbounded behavior for
        callers that prefer it."""
        transport = TcpTransport(send_timeout=None)
        listener = transport.listen()
        client = transport.connect(listener.address)
        server = listener.accept(timeout=2.0)
        client.send_frame(b"fits-in-buffer")  # plain send still works
        assert server.recv_frame(timeout=2.0) == b"fits-in-buffer"
        client.close()
        server.close()
        listener.close()

    def test_normal_traffic_unaffected_by_send_timeout(self):
        """A draining peer never notices the timeout."""
        transport = TcpTransport(send_timeout=0.5)
        listener = transport.listen()
        client = transport.connect(listener.address)
        server = listener.accept(timeout=2.0)
        for i in range(50):
            client.send_frame(b"frame-%02d" % i)
            assert server.recv_frame(timeout=2.0) == b"frame-%02d" % i
        client.close()
        server.close()
        listener.close()
