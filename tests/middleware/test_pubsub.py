"""Integration tests: nodes, publishers, subscribers end to end."""

import threading
import time

import pytest

from repro.errors import DuplicatePublisherError, NodeShutdownError, SchemaError
from repro.middleware import Master, Node
from repro.middleware.msgtypes import Float64, StringMsg
from repro.middleware.transport import TcpTransport
from repro.util.concurrency import wait_for


@pytest.fixture(params=["inproc", "tcp"])
def master(request):
    if request.param == "inproc":
        return Master()
    return Master(transport=TcpTransport())


class Collector:
    def __init__(self):
        self.messages = []
        self._lock = threading.Lock()

    def __call__(self, msg):
        with self._lock:
            self.messages.append(msg)

    @property
    def count(self):
        with self._lock:
            return len(self.messages)


class TestBasicPubSub:
    def test_messages_delivered_in_order(self, master):
        with Node("/talker", master) as talker, Node("/listener", master) as listener:
            collector = Collector()
            sub = listener.subscribe("/chat", StringMsg, collector)
            pub = talker.advertise("/chat", StringMsg)
            assert pub.wait_for_subscribers(1)
            for i in range(10):
                pub.publish(StringMsg(data=f"m{i}"))
            assert sub.wait_for_messages(10)
            assert [m.data for m in collector.messages] == [f"m{i}" for i in range(10)]

    def test_headers_stamped_with_increasing_seq(self, master):
        with Node("/talker", master) as talker, Node("/listener", master) as listener:
            collector = Collector()
            sub = listener.subscribe("/chat", StringMsg, collector)
            pub = talker.advertise("/chat", StringMsg)
            pub.wait_for_subscribers(1)
            for i in range(5):
                pub.publish(StringMsg(data="x"))
            sub.wait_for_messages(5)
            seqs = [m.header.seq for m in collector.messages]
            assert seqs == [1, 2, 3, 4, 5]
            assert all(m.header.stamp > 0 for m in collector.messages)

    def test_multiple_subscribers_all_receive(self, master):
        with Node("/talker", master) as talker, Node("/l1", master) as l1, Node(
            "/l2", master
        ) as l2, Node("/l3", master) as l3:
            collectors = [Collector() for _ in range(3)]
            subs = [
                node.subscribe("/chat", StringMsg, c)
                for node, c in zip((l1, l2, l3), collectors)
            ]
            pub = talker.advertise("/chat", StringMsg)
            assert pub.wait_for_subscribers(3)
            pub.publish(StringMsg(data="fanout"))
            for sub in subs:
                assert sub.wait_for_messages(1)
            assert all(c.messages[0].data == "fanout" for c in collectors)

    def test_subscriber_before_publisher(self, master):
        with Node("/talker", master) as talker, Node("/listener", master) as listener:
            collector = Collector()
            sub = listener.subscribe("/chat", StringMsg, collector)
            time.sleep(0.05)  # subscriber waits with no publisher
            pub = talker.advertise("/chat", StringMsg)
            assert pub.wait_for_subscribers(1)
            pub.publish(StringMsg(data="late"))
            assert sub.wait_for_messages(1)

    def test_wrong_message_type_rejected_at_publish(self, master):
        with Node("/talker", master) as talker:
            pub = talker.advertise("/chat", StringMsg)
            with pytest.raises(SchemaError):
                pub.publish(Float64(data=1.0))

    def test_duplicate_publisher_rejected(self, master):
        with Node("/a", master) as a, Node("/b", master) as b:
            a.advertise("/chat", StringMsg)
            with pytest.raises(DuplicatePublisherError):
                b.advertise("/chat", StringMsg)

    def test_publisher_stats(self, master):
        with Node("/talker", master) as talker, Node("/listener", master) as listener:
            sub = listener.subscribe("/chat", StringMsg, lambda m: None)
            pub = talker.advertise("/chat", StringMsg)
            pub.wait_for_subscribers(1)
            pub.publish(StringMsg(data="x"))
            sub.wait_for_messages(1)
            assert pub.stats.published == 1
            assert wait_for(lambda: pub.stats.sent_frames == 1)
            assert pub.stats.sent_bytes > 0

    def test_callback_error_does_not_kill_subscription(self, master):
        with Node("/talker", master) as talker, Node("/listener", master) as listener:
            collector = Collector()

            def flaky(msg):
                collector(msg)
                if collector.count == 1:
                    raise RuntimeError("boom")

            sub = listener.subscribe("/chat", StringMsg, flaky)
            pub = talker.advertise("/chat", StringMsg)
            pub.wait_for_subscribers(1)
            pub.publish(StringMsg(data="a"))
            pub.publish(StringMsg(data="b"))
            assert wait_for(lambda: collector.count == 2)
            assert sub.stats.callback_errors == 1


class TestLifecycle:
    def test_shutdown_idempotent(self, master):
        node = Node("/n", master)
        node.advertise("/t", StringMsg)
        node.shutdown()
        node.shutdown()

    def test_operations_after_shutdown_rejected(self, master):
        node = Node("/n", master)
        node.shutdown()
        with pytest.raises(NodeShutdownError):
            node.advertise("/t", StringMsg)
        with pytest.raises(NodeShutdownError):
            node.subscribe("/t", StringMsg, lambda m: None)

    def test_publish_after_close_rejected(self, master):
        node = Node("/n", master)
        pub = node.advertise("/t", StringMsg)
        node.shutdown()
        with pytest.raises(NodeShutdownError):
            pub.publish(StringMsg(data="x"))

    def test_publisher_restart_after_owner_shutdown(self, master):
        first = Node("/n1", master)
        first.advertise("/t", StringMsg)
        first.shutdown()
        with Node("/n2", master) as second:
            second.advertise("/t", StringMsg)  # topic is free again

    def test_subscriber_survives_publisher_restart(self, master):
        with Node("/listener", master) as listener:
            collector = Collector()
            sub = listener.subscribe("/chat", StringMsg, collector)
            first = Node("/talker", master)
            pub1 = first.advertise("/chat", StringMsg)
            pub1.wait_for_subscribers(1)
            pub1.publish(StringMsg(data="one"))
            assert sub.wait_for_messages(1)
            first.shutdown()
            second = Node("/talker2", master)
            pub2 = second.advertise("/chat", StringMsg)
            assert pub2.wait_for_subscribers(1, timeout=5.0)
            pub2.publish(StringMsg(data="two"))
            assert wait_for(lambda: collector.count >= 2, timeout=5.0)
            second.shutdown()


class TestTimers:
    def test_timer_fires_repeatedly(self, master):
        with Node("/n", master) as node:
            hits = []
            node.create_timer(100.0, lambda: hits.append(1))
            assert wait_for(lambda: len(hits) >= 5, timeout=2.0)

    def test_timer_stops_on_shutdown(self, master):
        node = Node("/n", master)
        hits = []
        node.create_timer(100.0, lambda: hits.append(1))
        wait_for(lambda: len(hits) >= 2, timeout=2.0)
        node.shutdown()
        count = len(hits)
        time.sleep(0.1)
        assert len(hits) <= count + 1  # at most one in-flight tick
