"""Satellite: tampering is localized to the shard that holds it.

Three escalating scenarios:

- an in-memory shard's store is rewritten -> ``audit_sharded`` flags
  exactly that shard as tampered while the others still classify;
- a durable shard's WAL is flipped mid-record while the server is live
  -> the strict per-shard verify fails for that shard only;
- a durable shard's WAL tail is flipped, the set is re-opened (recovery
  truncates the damaged suffix), and the audit compares against the
  previously published :class:`ShardSetCommitment` -> the mismatch names
  exactly the damaged shard.
"""

import os

import pytest

from repro.errors import LogIntegrityError
from repro.sharding import ShardedLogServer, audit_sharded, shard_dirname
from repro.storage.durable_store import WAL_SUBDIR
from repro.storage.wal import SEGMENT_HEADER_SIZE, segment_paths

from tests.sharding.workload import (
    TOPICS,
    honest_pair,
    register_pair,
    topology_for,
)


def feed(server, keypool, seqs=(1, 2, 3)):
    for topic in TOPICS:
        for seq in seqs:
            pub, sub = honest_pair(keypool, topic, seq, b"payload-%d" % seq)
            server.submit(pub.encode())
            server.submit(sub.encode())


def flip_byte(path, offset):
    with open(path, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)
        f.seek(offset)
        f.write(bytes([byte[0] ^ 0x01]))


def shard_wal_segments(store_dir, shard):
    return segment_paths(
        os.path.join(store_dir, shard_dirname(shard), WAL_SUBDIR)
    )


class TestInMemoryTamper:
    @pytest.mark.parametrize("victim", [0, 2, 3])
    def test_exactly_the_rewritten_shard_is_flagged(self, keypool, victim):
        server = ShardedLogServer(shards=4)
        register_pair(server, keypool)
        feed(server, keypool)
        server.shard(victim).store.tamper(0, b"rewritten history")

        result = audit_sharded(server, topology=topology_for())
        assert result.tampered_shards == [victim]
        assert result.flagged_shards() == [victim]
        assert not result.clean
        # the damaged shard produced no verdicts; the others all did
        for outcome in result.outcomes:
            if outcome.shard == victim:
                assert outcome.tampered and outcome.report is None
                assert outcome.error
            else:
                assert not outcome.tampered and outcome.report is not None
        # merged report covers exactly the three intact shards' entries
        intact = sum(
            o.entries for o in result.outcomes if o.shard != victim
        )
        assert len(result.report.classified) == intact

    def test_clean_set_is_clean(self, keypool):
        server = ShardedLogServer(shards=4)
        register_pair(server, keypool)
        feed(server, keypool)
        result = audit_sharded(server, topology=topology_for())
        assert result.tampered_shards == []
        assert result.clean


class TestLiveDurableTamper:
    def test_wal_flip_fails_exactly_one_shard(self, tmp_path, keypool):
        store_dir = str(tmp_path / "sharded")
        server = ShardedLogServer(shards=3, store_dir=store_dir, fsync="never")
        register_pair(server, keypool)
        feed(server, keypool)
        victim = server.shard_of("/a")
        wal_path = shard_wal_segments(store_dir, victim)[-1][1]
        flip_byte(wal_path, SEGMENT_HEADER_SIZE + 9)

        with pytest.raises(LogIntegrityError, match="shard %d" % victim):
            server.verify_integrity()
        result = audit_sharded(server, topology=topology_for())
        assert result.tampered_shards == [victim]
        server.close()


class TestRecoveredTamperLocalization:
    def test_set_commitment_mismatch_names_the_damaged_shard(
        self, tmp_path, keypool
    ):
        store_dir = str(tmp_path / "sharded")
        server = ShardedLogServer(shards=3, store_dir=store_dir, fsync="never")
        register_pair(server, keypool)
        feed(server, keypool)
        published = server.commitment()
        victim = server.shard_of("/h")
        server.close()

        # flip a byte inside the WAL's final record: recovery truncates
        # the damaged suffix instead of vouching for it
        wal_path = shard_wal_segments(store_dir, victim)[-1][1]
        flip_byte(wal_path, os.path.getsize(wal_path) - 3)

        reopened = ShardedLogServer(shards=3, store_dir=store_dir, fsync="never")
        result = audit_sharded(
            reopened, topology=topology_for(), expected=published
        )
        assert result.mismatched_shards == [victim]
        assert result.flagged_shards() == [victim]
        assert not result.clean
        assert result.commitment.root != published.root
        # the recovered shard is internally consistent -- shorter, not torn
        assert result.tampered_shards == []
        assert len(reopened) == published.entries - 1
        reopened.close()

    def test_undamaged_reopen_matches_the_published_commitment(
        self, tmp_path, keypool
    ):
        store_dir = str(tmp_path / "sharded")
        server = ShardedLogServer(shards=3, store_dir=store_dir, fsync="never")
        register_pair(server, keypool)
        feed(server, keypool)
        published = server.commitment()
        server.close()

        reopened = ShardedLogServer(shards=3, store_dir=store_dir, fsync="never")
        result = audit_sharded(
            reopened, topology=topology_for(), expected=published
        )
        assert result.mismatched_shards == []
        assert result.commitment.root == published.root
        assert result.clean
        reopened.close()
