"""ShardRouter: deterministic, salt-free, stable topic -> shard hashing."""

import random
import subprocess
import sys

import pytest

from repro.sharding import ShardRouter

from tests.sharding.workload import GOLDEN_SHARDS_4, TOPICS


class TestDeterminism:
    def test_golden_values_at_four_shards(self):
        """The mapping is a protocol constant: a change here silently
        scatters existing durable layouts across the wrong shards."""
        router = ShardRouter(4)
        assert {t: router.shard_of(t) for t in TOPICS} == GOLDEN_SHARDS_4

    def test_identical_across_instances(self, rng):
        a, b = ShardRouter(8), ShardRouter(8)
        for _ in range(100):
            topic = "/topic-%d" % rng.randrange(10**6)
            assert a.shard_of(topic) == b.shard_of(topic)

    def test_stable_across_processes(self):
        """Python's builtin hash() is salted per process; the router must
        not be.  A child interpreter with a different PYTHONHASHSEED must
        agree on every golden value."""
        program = (
            "from repro.sharding import ShardRouter\n"
            "r = ShardRouter(4)\n"
            "print([r.shard_of(t) for t in %r])\n" % TOPICS
        )
        import os

        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "12345"
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True, text=True, check=True, env=env,
        ).stdout.strip()
        assert out == str([GOLDEN_SHARDS_4[t] for t in TOPICS])


class TestRange:
    def test_single_shard_maps_everything_to_zero(self, rng):
        router = ShardRouter(1)
        for _ in range(50):
            assert router.shard_of("/t%d" % rng.getrandbits(32)) == 0

    def test_all_shards_within_range(self, rng):
        for shards in (2, 3, 5, 16):
            router = ShardRouter(shards)
            for _ in range(200):
                assert 0 <= router.shard_of("/t%d" % rng.getrandbits(32)) < shards

    def test_large_topic_pool_touches_every_shard(self):
        router = ShardRouter(4)
        hit = {router.shard_of("/topic-%d" % i) for i in range(256)}
        assert hit == {0, 1, 2, 3}


class TestPartition:
    def test_partition_agrees_with_shard_of(self):
        router = ShardRouter(4)
        buckets = router.partition(TOPICS)
        assert len(buckets) == 4
        for shard, bucket in enumerate(buckets):
            for topic in bucket:
                assert router.shard_of(topic) == shard

    def test_partition_preserves_every_topic(self):
        router = ShardRouter(3)
        buckets = router.partition(TOPICS)
        assert sorted(t for b in buckets for t in b) == sorted(TOPICS)


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_non_positive_shard_count(self, bad):
        with pytest.raises(ValueError):
            ShardRouter(bad)

    def test_repr_names_count(self):
        assert "7" in repr(ShardRouter(7))
