"""Replication over sharded replicas: quorum fan-out and per-shard
anti-entropy catch-up (``ReplicationConfig.shards``)."""

import pytest

from repro.core import LogServerEndpoint
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.policy import ReplicationConfig
from repro.replication import ReplicatedLogger
from repro.sharding import ShardedLogServer
from repro.util.concurrency import wait_for

from tests.sharding.workload import TOPICS, register_pair

SHARDS = 3

FAST = ReplicationConfig(
    breaker_failure_threshold=2,
    breaker_reset_timeout=0.05,
    fetch_batch=3,  # force multi-batch replays even for small logs
    shards=SHARDS,
)


def entry(i):
    return LogEntry(
        component_id="/pub",
        topic=TOPICS[i % len(TOPICS)],  # spread the stream over every shard
        type_name="std/String",
        direction=Direction.OUT,
        seq=i,
        scheme=Scheme.ADLP,
        data=b"payload-%04d" % i,
    )


def fresh_replica(keypool):
    server = ShardedLogServer(shards=SHARDS)
    register_pair(server, keypool)
    return server


@pytest.fixture()
def replica_set(keypool):
    servers = [fresh_replica(keypool) for _ in range(3)]
    endpoints = [LogServerEndpoint(s) for s in servers]
    yield servers, endpoints
    for endpoint in endpoints:
        endpoint.close()


@pytest.fixture()
def rlogger(replica_set):
    _, endpoints = replica_set
    rlogger = ReplicatedLogger([e.address for e in endpoints], config=FAST)
    yield rlogger
    rlogger.close()


class TestShardedFanOut:
    def test_submits_route_identically_on_every_replica(
        self, replica_set, rlogger
    ):
        servers, _ = replica_set
        for i in range(12):
            rlogger.submit(entry(i))
        assert wait_for(lambda: all(len(s) == 12 for s in servers), timeout=5.0)
        roots = [s.commitment().root for s in servers]
        assert roots[0] == roots[1] == roots[2]
        # per-shard agreement too, not just the aggregate
        for shard in range(SHARDS):
            heads = [s.shard_commitment(shard).chain_head for s in servers]
            assert heads[0] == heads[1] == heads[2]


class TestShardedCatchUp:
    def test_fresh_replica_replays_every_shard(
        self, replica_set, rlogger, keypool
    ):
        servers, endpoints = replica_set
        for i in range(15):
            rlogger.submit(entry(i))
        assert wait_for(lambda: all(len(s) == 15 for s in servers), timeout=5.0)

        servers[1] = fresh_replica(keypool)
        endpoints[1] = LogServerEndpoint(servers[1])
        rlogger.reset_replica(1, endpoints[1].address)
        results = rlogger.catch_up(replica=1)
        assert results[0].ok
        assert results[0].replayed == 15
        assert servers[1].commitment().root == servers[0].commitment().root

    def test_partial_lag_replays_only_the_missing_suffix(
        self, replica_set, rlogger
    ):
        servers, _ = replica_set
        for i in range(6):
            rlogger.submit(entry(i))
        assert wait_for(lambda: all(len(s) == 6 for s in servers), timeout=5.0)
        # replica 0 misses a window; the others keep going
        for i in range(6, 12):
            record = entry(i).encode()
            servers[1].submit(record)
            servers[2].submit(record)
        results = rlogger.catch_up()
        assert [r.replica for r in results] == [0]
        assert results[0].ok
        assert results[0].replayed == 6
        assert servers[0].commitment().root == servers[1].commitment().root

    def test_lag_confined_to_one_shard_is_repaired(self, replica_set, rlogger):
        """Only one shard lags (a single-topic burst was missed); the
        per-shard fold touches just that shard's records."""
        servers, _ = replica_set
        for i in range(6):
            rlogger.submit(entry(i))
        assert wait_for(lambda: all(len(s) == 6 for s in servers), timeout=5.0)
        topic = TOPICS[0]
        lagging_shard = servers[0].shard_of(topic)
        for seq in (100, 101, 102):
            record = LogEntry(
                component_id="/pub", topic=topic, type_name="std/String",
                direction=Direction.OUT, seq=seq, scheme=Scheme.ADLP,
                data=b"burst",
            ).encode()
            servers[1].submit(record)
            servers[2].submit(record)
        results = rlogger.catch_up()
        assert [r.replica for r in results] == [0]
        assert results[0].ok
        assert results[0].replayed == 3
        assert (
            servers[0].shard_commitment(lagging_shard)
            == servers[1].shard_commitment(lagging_shard)
        )
        assert servers[0].commitment().root == servers[1].commitment().root

    def test_forked_shard_is_refused_not_overwritten(
        self, replica_set, rlogger, keypool
    ):
        """A replica whose shard history contradicts the donor's must stay
        quarantined: replaying over the fork would bury the evidence."""
        servers, endpoints = replica_set
        donor_records = [entry(i).encode() for i in range(6)]
        for record in donor_records:
            servers[1].submit(record)
            servers[2].submit(record)
        # replica 0: shorter AND forked (one record substituted)
        forked = list(donor_records[:4])
        forked[1] = entry(99).encode()
        for record in forked:
            servers[0].submit(record)

        results = rlogger.catch_up(replica=0)
        assert not results[0].ok
        assert len(servers[0]) == 4  # untouched, evidence preserved
        assert servers[0].commitment().root != servers[1].commitment().root


class TestConfigValidation:
    def test_negative_shards_rejected(self):
        with pytest.raises(ValueError):
            ReplicationConfig(shards=-1)

    def test_zero_means_unsharded(self):
        assert ReplicationConfig().shards == 0
