"""Satellite: ``ShardedLogServer(shards=1)`` is byte-identical to a plain
``LogServer`` fed the same stream -- chain head, Merkle root, raw records,
and audit verdicts -- on randomized workloads, per-entry and batched.

A multi-shard section widens the claim: at ``shards=4`` the *verdicts*
(order-independent) still equal the unsharded audit's, which is what makes
the parallel audit exact rather than approximate.
"""

import pytest

from repro.audit import Auditor
from repro.core import LogServer
from repro.sharding import ShardedLogServer, audit_sharded

from tests.sharding.workload import (
    build_stream,
    register_pair,
    report_summary,
    topology_for,
)


def feed_per_entry(server, records):
    for record in records:
        server.submit(record)


def feed_batched(server, records, rng):
    """Submit in random-sized batches (the group-commit path)."""
    position = 0
    while position < len(records):
        size = rng.randrange(1, 6)
        server.submit_batch(records[position : position + size])
        position += size


@pytest.fixture()
def stream(keypool, rng):
    return build_stream(keypool, rng, transmissions=30)


@pytest.fixture()
def plain(keypool, stream):
    server = LogServer()
    register_pair(server, keypool)
    feed_per_entry(server, stream)
    return server


class TestSingleShardByteIdentity:
    def test_chain_head_and_merkle_root_identical(self, keypool, stream, plain):
        sharded = ShardedLogServer(shards=1)
        register_pair(sharded, keypool)
        feed_per_entry(sharded, stream)

        mine = sharded.commitment().shard_commitments[0]
        theirs = plain.commitment()
        assert mine == theirs
        assert mine.chain_head == theirs.chain_head
        assert mine.merkle_root == theirs.merkle_root
        assert mine.entries == theirs.entries == len(stream)

    def test_raw_records_identical(self, keypool, stream, plain):
        sharded = ShardedLogServer(shards=1)
        register_pair(sharded, keypool)
        feed_per_entry(sharded, stream)
        assert sharded.shard_raw_records(0) == plain.raw_records()

    def test_batched_path_identical(self, keypool, rng, stream, plain):
        """Group commit must not perturb the chain: random batch splits
        fold to the same head as per-entry submission."""
        sharded = ShardedLogServer(shards=1)
        register_pair(sharded, keypool)
        feed_batched(sharded, stream, rng)
        assert sharded.commitment().shard_commitments[0] == plain.commitment()

    def test_audit_verdicts_identical(self, keypool, stream, plain):
        sharded = ShardedLogServer(shards=1)
        register_pair(sharded, keypool)
        feed_per_entry(sharded, stream)

        topology = topology_for()
        plain_report = Auditor(plain.keystore, topology).audit(plain.entries())
        result = audit_sharded(sharded, topology=topology)
        assert not result.tampered_shards
        assert report_summary(result.report) == report_summary(plain_report)
        # at one shard even the classification ORDER matches
        assert [c.entry for c in result.report.classified] == [
            c.entry for c in plain_report.classified
        ]

    def test_derived_topology_matches_too(self, keypool, stream, plain):
        """With no a-priori topology each side derives its own votes; the
        verdicts must still agree."""
        sharded = ShardedLogServer(shards=1)
        register_pair(sharded, keypool)
        feed_per_entry(sharded, stream)

        plain_report = Auditor.for_server(plain).audit_server(plain)
        result = audit_sharded(sharded)
        assert report_summary(result.report) == report_summary(plain_report)


class TestMultiShardVerdictEquivalence:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_verdict_multiset_matches_unsharded_audit(
        self, keypool, rng, stream, plain, shards
    ):
        sharded = ShardedLogServer(shards=shards)
        register_pair(sharded, keypool)
        feed_batched(sharded, stream, rng)
        assert len(sharded) == len(plain)

        topology = topology_for()
        plain_report = Auditor(plain.keystore, topology).audit(plain.entries())
        result = audit_sharded(sharded, topology=topology, workers=2)
        assert not result.tampered_shards
        assert report_summary(result.report) == report_summary(plain_report)

    def test_shard_records_partition_the_plain_log(self, keypool, stream, plain):
        sharded = ShardedLogServer(shards=4)
        register_pair(sharded, keypool)
        feed_per_entry(sharded, stream)
        scattered = [
            record
            for shard in range(4)
            for record in sharded.shard_raw_records(shard)
        ]
        assert sorted(scattered) == sorted(plain.raw_records())

    def test_parallel_and_serial_audit_agree(self, keypool, stream):
        sharded = ShardedLogServer(shards=4)
        register_pair(sharded, keypool)
        feed_per_entry(sharded, stream)
        topology = topology_for()
        serial = audit_sharded(sharded, topology=topology, workers=1)
        parallel = audit_sharded(sharded, topology=topology, workers=4)
        assert report_summary(serial.report) == report_summary(parallel.report)
        assert serial.commitment.root == parallel.commitment.root
