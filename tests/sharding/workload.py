"""Shared builders for the sharding test battery.

One publisher (``/pub`` = keypool[0]) and one subscriber (``/sub`` =
keypool[1]) exchange transmissions across several topics.  The builders
produce the same honest-pair shape the auditor tests use, plus the two
deviations the equivalence suite needs verdicts to disagree on: a
forged own-signature (invalid) and a subscriber-only transmission whose
peer proof convicts the publisher of hiding its entry.
"""

from repro.audit import Topology
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.protocol import message_digest

#: Eight topics whose sha256 routing at 4 shards covers every shard
#: (golden mapping asserted in test_router.py).
TOPICS = ["/a", "/b", "/c", "/d", "/e", "/f", "/g", "/h"]

#: topic -> shard at ``shards=4`` (golden values; recomputed nowhere).
GOLDEN_SHARDS_4 = {
    "/a": 3, "/b": 0, "/c": 0, "/d": 1,
    "/e": 1, "/f": 2, "/g": 3, "/h": 2,
}


def topology_for(topics=TOPICS) -> Topology:
    return Topology(
        publisher_of={t: "/pub" for t in topics},
        subscribers_of={t: ["/sub"] for t in topics},
    )


def register_pair(server, keypool) -> None:
    server.register_key("/pub", keypool[0].public)
    server.register_key("/sub", keypool[1].public)


def honest_pair(keypool, topic, seq, payload):
    """The publisher's OUT (with the subscriber's ACK proof) and the
    subscriber's IN (with the publisher's counterpart proof)."""
    digest = message_digest(seq, payload)
    s_x = keypool[0].private.sign_digest(digest)
    s_y = keypool[1].private.sign_digest(digest)
    pub = LogEntry(
        component_id="/pub", topic=topic, type_name="std/String",
        direction=Direction.OUT, seq=seq, scheme=Scheme.ADLP,
        data=payload, own_sig=s_x,
        peer_id="/sub", peer_hash=digest, peer_sig=s_y,
    )
    sub = LogEntry(
        component_id="/sub", topic=topic, type_name="std/String",
        direction=Direction.IN, seq=seq, scheme=Scheme.ADLP,
        data_hash=digest, own_sig=s_y, peer_id="/pub", peer_sig=s_x,
    )
    return pub, sub


def forged_out(keypool, topic, seq, payload):
    """An OUT entry whose own-signature does not verify (invalid)."""
    digest = message_digest(seq, payload)
    sig = bytearray(keypool[0].private.sign_digest(digest))
    sig[0] ^= 0x01
    return LogEntry(
        component_id="/pub", topic=topic, type_name="std/String",
        direction=Direction.OUT, seq=seq, scheme=Scheme.ADLP,
        data=payload, own_sig=bytes(sig),
    )


def build_stream(keypool, rng, topics=TOPICS, transmissions=24):
    """A randomized encoded-entry stream: mostly honest pairs, with the
    occasional forged signature or publisher-hidden entry mixed in.

    Returns ``(records, topics)`` where ``records`` is the shuffled list
    of encoded entries.  Sequence numbers increment per topic so replay
    dedup never fires.
    """
    seqs = {t: 0 for t in topics}
    records = []
    for _ in range(transmissions):
        topic = rng.choice(topics)
        seqs[topic] += 1
        seq = seqs[topic]
        payload = bytes(rng.getrandbits(8) for _ in range(rng.randrange(4, 24)))
        roll = rng.random()
        if roll < 0.70:
            pub, sub = honest_pair(keypool, topic, seq, payload)
            records.append(pub.encode())
            records.append(sub.encode())
        elif roll < 0.85:
            # subscriber logs with a valid peer proof; the publisher's
            # entry is provably hidden
            _, sub = honest_pair(keypool, topic, seq, payload)
            records.append(sub.encode())
        else:
            records.append(forged_out(keypool, topic, seq, payload).encode())
    rng.shuffle(records)
    return records


def verdict_key(classified):
    """An order-independent identity for one classified entry."""
    e = classified.entry
    return (
        e.component_id, e.topic, e.seq, e.direction,
        classified.verdict, tuple(sorted(r.name for r in classified.reasons)),
    )


def report_summary(report):
    """Order-independent digest of a report: verdict multiset, hidden
    set, per-component aggregates."""
    verdicts = sorted(verdict_key(c) for c in report.classified)
    hidden = sorted(
        (h.component_id, h.direction, h.transmission.topic, h.transmission.seq)
        for h in report.hidden
    )
    components = {
        cid: (v.valid_entries, v.invalid_entries, v.hidden_entries)
        for cid, v in report.components.items()
    }
    return verdicts, hidden, components
