"""The wire protocol around sharding: tagged frames, discovery, fetch.

A shard tag on the wire is ``shard_index + 1`` (0 = untargeted), so every
pre-sharding frame keeps its meaning: old clients talk to sharded servers
(routed by topic) and shard-pinned clients talking to a *plain* server
are accepted for tag 1 (the whole log) and refused otherwise.
"""

import pytest

from repro.core import LogServer, LogServerEndpoint
from repro.core.remote import RemoteLogger
from repro.errors import LoggingError
from repro.sharding import ShardedLogServer
from repro.util.concurrency import wait_for

from tests.sharding.workload import (
    GOLDEN_SHARDS_4,
    TOPICS,
    honest_pair,
    register_pair,
)


@pytest.fixture()
def sharded_endpoint(keypool):
    server = ShardedLogServer(shards=4)
    register_pair(server, keypool)
    endpoint = LogServerEndpoint(server)
    yield server, endpoint
    endpoint.close()


@pytest.fixture()
def plain_endpoint(keypool):
    server = LogServer()
    register_pair(server, keypool)
    endpoint = LogServerEndpoint(server)
    yield server, endpoint
    endpoint.close()


def record_for(keypool, topic, seq=1):
    pub, _ = honest_pair(keypool, topic, seq, b"remote-%d" % seq)
    return pub.encode()


class TestDiscovery:
    def test_shard_count_via_untargeted_health(self, sharded_endpoint):
        _, endpoint = sharded_endpoint
        client = RemoteLogger(endpoint.address)
        assert client.shard_count() == 4
        client.close()

    def test_plain_server_reports_zero_shards(self, plain_endpoint):
        _, endpoint = plain_endpoint
        client = RemoteLogger(endpoint.address)
        assert client.shard_count() == 0
        client.close()

    def test_untargeted_health_aggregates_the_set(self, sharded_endpoint, keypool):
        server, endpoint = sharded_endpoint
        for topic in TOPICS:
            server.submit(record_for(keypool, topic))
        client = RemoteLogger(endpoint.address)
        health = client.health()
        commitment = server.commitment()
        assert health.entries == len(TOPICS)
        assert health.chain_head == commitment.root
        assert health.merkle_root == commitment.root
        client.close()

    def test_targeted_health_reports_one_shard(self, sharded_endpoint, keypool):
        server, endpoint = sharded_endpoint
        for topic in TOPICS:
            server.submit(record_for(keypool, topic))
        client = RemoteLogger(endpoint.address)
        for shard in range(4):
            health = client.health(shard=shard)
            assert health == server.shard_commitment(shard)
        client.close()

    def test_out_of_range_shard_health_rejected(self, sharded_endpoint):
        _, endpoint = sharded_endpoint
        client = RemoteLogger(endpoint.address)
        with pytest.raises(LoggingError):
            client.health(shard=9)
        client.close()


class TestRoutedSubmission:
    def test_untagged_submit_routes_by_topic(self, sharded_endpoint, keypool):
        server, endpoint = sharded_endpoint
        client = RemoteLogger(endpoint.address)
        for topic in TOPICS:
            client.submit(record_for(keypool, topic))
        assert wait_for(lambda: len(server) == len(TOPICS), timeout=5.0)
        for topic, shard in GOLDEN_SHARDS_4.items():
            assert len(server.shard(shard).entries(topic=topic)) == 1
        client.close()

    def test_pinned_client_submits_to_its_shard(self, sharded_endpoint, keypool):
        server, endpoint = sharded_endpoint
        shard = GOLDEN_SHARDS_4["/a"]
        client = RemoteLogger(endpoint.address, shard=shard)
        client.submit(record_for(keypool, "/a"))
        assert wait_for(lambda: len(server.shard(shard)) == 1, timeout=5.0)
        client.close()

    def test_misrouted_pin_rejected_server_side(self, sharded_endpoint, keypool):
        """A pinned client whose topic belongs elsewhere must not scatter
        the topic: the server refuses and counts the rejection."""
        server, endpoint = sharded_endpoint
        wrong = (GOLDEN_SHARDS_4["/a"] + 1) % 4
        client = RemoteLogger(endpoint.address, shard=wrong)
        client.submit(record_for(keypool, "/a"))
        assert wait_for(lambda: endpoint.rejected == 1, timeout=5.0)
        assert len(server) == 0
        client.close()

    def test_tagged_batch_lands_in_one_shard(self, sharded_endpoint, keypool):
        server, endpoint = sharded_endpoint
        shard = GOLDEN_SHARDS_4["/b"]
        client = RemoteLogger(endpoint.address)
        batch = [record_for(keypool, "/b", seq=i) for i in range(1, 6)]
        client.submit_batch(batch, shard=shard)
        assert wait_for(lambda: len(server.shard(shard)) == 5, timeout=5.0)
        client.close()

    def test_untagged_batch_splits_across_shards(self, sharded_endpoint, keypool):
        server, endpoint = sharded_endpoint
        client = RemoteLogger(endpoint.address)
        client.submit_batch([record_for(keypool, topic) for topic in TOPICS])
        assert wait_for(lambda: len(server) == len(TOPICS), timeout=5.0)
        for topic, shard in GOLDEN_SHARDS_4.items():
            assert len(server.shard(shard).entries(topic=topic)) == 1
        client.close()

    def test_negative_pin_rejected_client_side(self, plain_endpoint):
        _, endpoint = plain_endpoint
        with pytest.raises(ValueError):
            RemoteLogger(endpoint.address, shard=-1)


class TestPlainServerCompat:
    def test_tag_one_means_the_whole_log_on_a_plain_server(
        self, plain_endpoint, keypool
    ):
        """shard=0 against an unsharded server is the benign degenerate
        case: the set has one shard, the whole log."""
        server, endpoint = plain_endpoint
        client = RemoteLogger(endpoint.address, shard=0)
        client.submit(record_for(keypool, "/a"))
        assert wait_for(lambda: len(server) == 1, timeout=5.0)
        assert client.health(shard=0) == server.commitment()
        client.close()

    def test_other_tags_rejected_by_a_plain_server(self, plain_endpoint, keypool):
        server, endpoint = plain_endpoint
        client = RemoteLogger(endpoint.address, shard=2)
        client.submit(record_for(keypool, "/a"))
        assert wait_for(lambda: endpoint.rejected == 1, timeout=5.0)
        assert len(server) == 0
        with pytest.raises(LoggingError):
            client.health(shard=2)
        client.close()


class TestShardedFetch:
    def test_per_shard_fetch_matches_raw_records(self, sharded_endpoint, keypool):
        server, endpoint = sharded_endpoint
        for topic in TOPICS:
            for seq in (1, 2):
                server.submit(record_for(keypool, topic, seq))
        client = RemoteLogger(endpoint.address)
        for shard in range(4):
            fetched = client.fetch_records(0, 100, shard=shard)
            assert fetched == server.shard_raw_records(shard)
        client.close()

    def test_fetch_honors_start_and_count(self, sharded_endpoint, keypool):
        server, endpoint = sharded_endpoint
        shard = GOLDEN_SHARDS_4["/c"]
        for seq in range(1, 7):
            server.submit(record_for(keypool, "/c", seq))
        client = RemoteLogger(endpoint.address)
        fetched = client.fetch_records(2, 3, shard=shard)
        assert fetched == server.shard_raw_records(shard, 2, 3)
        assert len(fetched) == 3
        client.close()

    def test_untargeted_fetch_on_sharded_server_refused(self, sharded_endpoint):
        """Per-shard index spaces make an untargeted fetch meaningless;
        the server says so instead of inventing a merged order."""
        _, endpoint = sharded_endpoint
        client = RemoteLogger(endpoint.address)
        with pytest.raises(LoggingError, match="shard"):
            client.fetch_records(0, 10)
        client.close()

    def test_key_registration_reaches_every_shard(self, sharded_endpoint, keypool):
        server, endpoint = sharded_endpoint
        client = RemoteLogger(endpoint.address)
        client.register_key("/extra", keypool[2].public)
        for shard in range(4):
            assert server.shard(shard).public_key("/extra") == keypool[2].public
        client.close()
