"""ShardedLogServer mechanics: routing, batching, commitments, layout."""

import os

import pytest

from repro.core.entries import Direction
from repro.errors import LogIntegrityError, LoggingError
from repro.sharding import ShardedLogServer, ShardSetCommitment, shard_dirname

from tests.sharding.workload import (
    GOLDEN_SHARDS_4,
    TOPICS,
    honest_pair,
    register_pair,
)


@pytest.fixture()
def sharded(keypool):
    server = ShardedLogServer(shards=4)
    register_pair(server, keypool)
    return server


def pair_records(keypool, topic, seq=1, payload=b"data"):
    pub, sub = honest_pair(keypool, topic, seq, payload)
    return pub.encode(), sub.encode()


class TestRouting:
    def test_submit_lands_in_topic_shard(self, sharded, keypool):
        for topic in TOPICS:
            pub, _ = pair_records(keypool, topic)
            sharded.submit(pub)
        for topic, shard in GOLDEN_SHARDS_4.items():
            assert len(sharded.shard(shard).entries(topic=topic)) == 1
            assert sharded.shard_of(topic) == shard

    def test_both_sides_of_a_transmission_share_a_shard(self, sharded, keypool):
        for topic in TOPICS:
            pub, sub = pair_records(keypool, topic)
            sharded.submit(pub)
            sharded.submit(sub)
        for topic, shard in GOLDEN_SHARDS_4.items():
            in_shard = sharded.shard(shard).entries(topic=topic)
            assert [e.direction for e in in_shard] == [Direction.OUT, Direction.IN]

    def test_submit_returns_per_shard_index(self, sharded, keypool):
        # /b and /c both route to shard 0: their indexes interleave 0,1
        # while /a (shard 3) starts back at 0.
        assert sharded.submit(pair_records(keypool, "/b")[0]) == 0
        assert sharded.submit(pair_records(keypool, "/c")[0]) == 1
        assert sharded.submit(pair_records(keypool, "/a")[0]) == 0

    def test_entry_objects_are_routed_too(self, sharded, keypool):
        pub, _ = honest_pair(keypool, "/d", 1, b"obj")
        sharded.submit(pub)
        assert len(sharded.shard(GOLDEN_SHARDS_4["/d"])) == 1

    def test_undecodable_submission_rejected_and_counted(self, sharded):
        before = sharded.rejected_submissions
        with pytest.raises(LoggingError):
            sharded.submit(b"\xff\xff not a log entry")
        assert sharded.rejected_submissions == before + 1
        assert len(sharded) == 0


class TestBatching:
    def test_batch_splits_by_shard(self, sharded, keypool):
        batch = []
        for topic in TOPICS:
            pub, sub = pair_records(keypool, topic)
            batch.extend([pub, sub])
        indices = sharded.submit_batch(batch)
        assert len(indices) == len(batch)
        assert len(sharded) == len(batch)
        # each shard got its topics' four entries (2 topics x OUT+IN)
        for shard in range(4):
            assert len(sharded.shard(shard)) == 4

    def test_batch_indices_align_with_input_positions(self, sharded, keypool):
        b1, _ = pair_records(keypool, "/b", seq=1)
        a1, _ = pair_records(keypool, "/a", seq=1)
        b2, _ = pair_records(keypool, "/b", seq=2)
        indices = sharded.submit_batch([b1, a1, b2])
        # /b -> shard 0 gets indexes 0,1; /a -> shard 3 gets index 0
        assert indices == [0, 0, 1]

    def test_undecodable_entry_rejects_whole_batch_before_mutation(
        self, sharded, keypool
    ):
        good, _ = pair_records(keypool, "/a")
        with pytest.raises(LoggingError):
            sharded.submit_batch([good, b"\xffgarbage"])
        assert len(sharded) == 0
        assert sharded.rejected_submissions == 1

    def test_empty_batch_is_a_noop(self, sharded):
        assert sharded.submit_batch([]) == []


class TestExplicitShardTargeting:
    def test_submit_to_matching_shard_accepted(self, sharded, keypool):
        pub, _ = pair_records(keypool, "/a")
        assert sharded.submit_to_shard(GOLDEN_SHARDS_4["/a"], pub) == 0

    def test_misrouted_submit_rejected(self, sharded, keypool):
        pub, _ = pair_records(keypool, "/a")
        wrong = (GOLDEN_SHARDS_4["/a"] + 1) % 4
        with pytest.raises(LoggingError):
            sharded.submit_to_shard(wrong, pub)
        assert len(sharded) == 0

    def test_misrouted_batch_rejected_whole(self, sharded, keypool):
        a, _ = pair_records(keypool, "/a")
        b, _ = pair_records(keypool, "/b")
        with pytest.raises(LoggingError):
            sharded.submit_batch_to_shard(GOLDEN_SHARDS_4["/a"], [a, b])
        assert len(sharded) == 0


class TestQuerySurface:
    def test_topic_filter_reads_only_its_shard(self, sharded, keypool):
        for topic in TOPICS:
            sharded.submit(pair_records(keypool, topic)[0])
        for topic in TOPICS:
            [entry] = sharded.entries(topic=topic)
            assert entry.topic == topic

    def test_shard_filter_scopes_to_one_shard(self, sharded, keypool):
        for topic in TOPICS:
            sharded.submit(pair_records(keypool, topic)[0])
        for shard in range(4):
            entries = sharded.entries(shard=shard)
            assert len(entries) == 2
            assert all(GOLDEN_SHARDS_4[e.topic] == shard for e in entries)

    def test_len_and_bytes_sum_over_shards(self, sharded, keypool):
        for topic in TOPICS:
            pub, sub = pair_records(keypool, topic)
            sharded.submit(pub)
            sharded.submit(sub)
        assert len(sharded) == 16
        assert sharded.total_bytes == sum(
            s.total_bytes for s in (sharded.shard(i) for i in range(4))
        )

    def test_stats_sum_to_shard_stats(self, sharded, keypool):
        for topic in TOPICS:
            sharded.submit(pair_records(keypool, topic)[0])
        stats = sharded.stats()
        per_shard = sharded.shard_stats()
        assert stats["shard_count"] == 4
        assert stats["sharded_entries"] == sum(s["entries"] for s in per_shard)
        assert stats["sharded_bytes"] == sum(s["total_bytes"] for s in per_shard)
        assert [s["shard"] for s in per_shard] == [0, 1, 2, 3]

    def test_keys_broadcast_to_every_shard(self, sharded, keypool):
        for shard in range(4):
            assert sharded.shard(shard).public_key("/pub") == keypool[0].public
            assert sharded.shard(shard).public_key("/sub") == keypool[1].public
        assert sharded.components() == sorted(["/pub", "/sub"])
        assert set(sharded.keys_snapshot()) == {"/pub", "/sub"}


class TestCommitment:
    def test_set_root_changes_when_any_shard_changes(self, sharded, keypool):
        for topic in TOPICS:
            sharded.submit(pair_records(keypool, topic)[0])
        before = sharded.commitment()
        sharded.submit(pair_records(keypool, "/a", seq=2)[0])
        after = sharded.commitment()
        assert before.root != after.root
        assert after.entries == before.entries + 1

    def test_mismatched_shards_localizes_the_change(self, sharded, keypool):
        for topic in TOPICS:
            sharded.submit(pair_records(keypool, topic)[0])
        before = sharded.commitment()
        sharded.submit(pair_records(keypool, "/e", seq=2)[0])
        after = sharded.commitment()
        assert before.mismatched_shards(after) == [GOLDEN_SHARDS_4["/e"]]

    def test_identical_sets_have_no_mismatch(self, sharded, keypool):
        for topic in TOPICS:
            sharded.submit(pair_records(keypool, topic)[0])
        a, b = sharded.commitment(), sharded.commitment()
        assert a == b
        assert a.mismatched_shards(b) == []

    def test_comparing_different_sized_sets_raises(self, sharded):
        other = ShardedLogServer(shards=2).commitment()
        with pytest.raises(ValueError, match="different sizes"):
            sharded.commitment().mismatched_shards(other)

    def test_mismatched_shards_names_every_damaged_shard(self, sharded, keypool):
        """Two shards diverge simultaneously: localization must name both
        (sorted), not stop at the first."""
        for topic in TOPICS:
            sharded.submit(pair_records(keypool, topic)[0])
        before = sharded.commitment()
        sharded.submit(pair_records(keypool, "/e", seq=2)[0])  # shard 1
        sharded.submit(pair_records(keypool, "/f", seq=2)[0])  # shard 2
        after = sharded.commitment()
        damaged = sorted({GOLDEN_SHARDS_4["/e"], GOLDEN_SHARDS_4["/f"]})
        assert before.mismatched_shards(after) == damaged
        # localization is symmetric
        assert after.mismatched_shards(before) == damaged

    def test_mismatched_shards_when_every_shard_diverged(self, sharded, keypool):
        before = sharded.commitment()
        for topic in TOPICS:  # the golden mapping covers all four shards
            sharded.submit(pair_records(keypool, topic)[0])
        assert before.mismatched_shards(sharded.commitment()) == [0, 1, 2, 3]

    def test_as_log_commitment_carries_set_root(self, sharded, keypool):
        sharded.submit(pair_records(keypool, "/a")[0])
        commitment = sharded.commitment()
        collapsed = commitment.as_log_commitment()
        assert collapsed.chain_head == commitment.root
        assert collapsed.merkle_root == commitment.root
        assert collapsed.entries == commitment.entries == 1
        assert sharded.merkle_root() == commitment.root

    def test_single_shard_set_root_still_binds_shard_root(self, keypool):
        """Even at shards=1 the set root is a Merkle layer *over* the
        shard commitment, not the shard root itself."""
        sharded = ShardedLogServer(shards=1)
        register_pair(sharded, keypool)
        sharded.submit(pair_records(keypool, "/a")[0])
        commitment = sharded.commitment()
        assert isinstance(commitment, ShardSetCommitment)
        assert commitment.root != commitment.shard_commitments[0].merkle_root


class TestIntegrity:
    def test_verify_integrity_names_the_tampered_shard(self, sharded, keypool):
        for topic in TOPICS:
            sharded.submit(pair_records(keypool, topic)[0])
        sharded.shard(2).store.tamper(0, b"rewritten")
        with pytest.raises(LogIntegrityError, match="shard 2"):
            sharded.verify_integrity()

    def test_clean_set_verifies(self, sharded, keypool):
        for topic in TOPICS:
            sharded.submit(pair_records(keypool, topic)[0])
        sharded.verify_integrity()  # must not raise


class TestDurableLayout:
    def test_reopen_recovers_identical_set_root(self, tmp_path, keypool):
        store_dir = str(tmp_path / "sharded")
        server = ShardedLogServer(shards=3, store_dir=store_dir, fsync="never")
        register_pair(server, keypool)
        for topic in TOPICS:
            pub, sub = pair_records(keypool, topic)
            server.submit(pub)
            server.submit(sub)
        before = server.commitment()
        server.close()

        reopened = ShardedLogServer(shards=3, store_dir=store_dir, fsync="never")
        assert len(reopened) == 16
        assert reopened.commitment().root == before.root
        reopened.close()

    def test_each_shard_gets_its_own_directory(self, tmp_path, keypool):
        store_dir = str(tmp_path / "sharded")
        server = ShardedLogServer(shards=3, store_dir=store_dir, fsync="never")
        server.close()
        assert sorted(os.listdir(store_dir)) == [shard_dirname(i) for i in range(3)]

    def test_reopen_with_different_count_refused(self, tmp_path):
        store_dir = str(tmp_path / "sharded")
        ShardedLogServer(shards=3, store_dir=store_dir, fsync="never").close()
        with pytest.raises(LogIntegrityError):
            ShardedLogServer(shards=4, store_dir=store_dir, fsync="never")

    @pytest.mark.parametrize("requested", [1, 2, 8])
    def test_rebalance_refusal_covers_shrink_and_grow(self, tmp_path, requested):
        """The topic->shard mapping depends on the count, so a 4-shard
        layout refuses *any* other count -- halving, doubling, and
        collapsing to one all included -- and the refusal names both the
        layout's directories and the requested count."""
        store_dir = str(tmp_path / "sharded")
        ShardedLogServer(shards=4, store_dir=store_dir, fsync="never").close()
        with pytest.raises(LogIntegrityError, match="shard directories") as err:
            ShardedLogServer(shards=requested, store_dir=store_dir, fsync="never")
        assert "[0, 1, 2, 3]" in str(err.value)
        assert f"{requested} shards were requested" in str(err.value)
        # the refusal must fire before any shard store is opened or
        # mutated: the untouched layout still reopens cleanly at 4
        ShardedLogServer(shards=4, store_dir=store_dir, fsync="never").close()

    def test_partial_layout_is_refused_too(self, tmp_path):
        """A layout with a missing shard directory (torn manual copy) is
        rejected rather than silently re-created with fresh chains."""
        store_dir = str(tmp_path / "sharded")
        ShardedLogServer(shards=3, store_dir=store_dir, fsync="never").close()
        os.rename(
            os.path.join(store_dir, shard_dirname(2)),
            os.path.join(store_dir, "stash"),
        )
        with pytest.raises(LogIntegrityError, match="shard directories"):
            ShardedLogServer(shards=3, store_dir=store_dir, fsync="never")

    def test_store_dir_and_factory_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedLogServer(
                shards=2,
                store_dir=str(tmp_path / "x"),
                store_factory=lambda index: None,
            )


class TestObservers:
    def test_observer_sees_submits_on_every_shard(self, sharded, keypool):
        seen = []
        observer = lambda entry: seen.append(entry.topic)  # noqa: E731
        sharded.add_observer(observer)
        for topic in TOPICS:
            sharded.submit(pair_records(keypool, topic)[0])
        assert sorted(seen) == sorted(TOPICS)
        sharded.remove_observer(observer)
        sharded.submit(pair_records(keypool, "/a", seq=2)[0])
        assert len(seen) == len(TOPICS)
