"""Satellite: concurrent submitters across interleaved topics.

Shards share nothing on the submit path, so many threads hammering the
set must lose nothing: every submitted entry lands exactly once, every
shard's chain verifies, and the merged ``stats()`` equal the sum of the
per-shard counters.
"""

import threading

from repro.core.entries import Direction, LogEntry, Scheme
from repro.sharding import ShardedLogServer

from tests.sharding.workload import TOPICS, register_pair

THREADS = 8
PER_THREAD = 40


def _entry(thread_id, i, topic):
    return LogEntry(
        component_id="/pub",
        topic=topic,
        type_name="std/String",
        direction=Direction.OUT,
        seq=thread_id * 10_000 + i,
        scheme=Scheme.ADLP,
        data=b"t%02d-%04d" % (thread_id, i),
        own_sig=b"\x5a" * 16,
    ).encode()


def _run_threads(target):
    threads = [
        threading.Thread(target=target, args=(thread_id,))
        for thread_id in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestConcurrentSubmission:
    def test_no_entry_lost_under_interleaved_submits(self, keypool):
        server = ShardedLogServer(shards=4)
        register_pair(server, keypool)
        errors = []

        def submitter(thread_id):
            try:
                for i in range(PER_THREAD):
                    # every thread walks every topic, maximizing contention
                    topic = TOPICS[(thread_id + i) % len(TOPICS)]
                    server.submit(_entry(thread_id, i, topic))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        _run_threads(submitter)
        assert errors == []
        assert len(server) == THREADS * PER_THREAD
        server.verify_integrity()

        # per-shard counters and the merged stats tell the same story
        stats = server.stats()
        per_shard = server.shard_stats()
        assert stats["sharded_entries"] == sum(s["entries"] for s in per_shard)
        assert stats["sharded_bytes"] == sum(s["total_bytes"] for s in per_shard)
        assert stats["sharded_rejected"] == 0

        # every submitted (thread, seq) pair is present exactly once
        seen = [(e.component_id, e.seq) for e in server.entries()]
        assert len(seen) == len(set(seen)) == THREADS * PER_THREAD

    def test_mixed_single_and_batch_submitters(self, keypool):
        server = ShardedLogServer(shards=4)
        register_pair(server, keypool)
        errors = []

        def submitter(thread_id):
            try:
                records = [
                    _entry(thread_id, i, TOPICS[(thread_id * 3 + i) % len(TOPICS)])
                    for i in range(PER_THREAD)
                ]
                if thread_id % 2:
                    for chunk_start in range(0, PER_THREAD, 8):
                        server.submit_batch(records[chunk_start : chunk_start + 8])
                else:
                    for record in records:
                        server.submit(record)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        _run_threads(submitter)
        assert errors == []
        assert len(server) == THREADS * PER_THREAD
        server.verify_integrity()

    def test_commitment_stable_after_the_dust_settles(self, keypool):
        """Concurrent ingestion orders differ run to run, but once quiet,
        two commitment() calls agree and every shard's chain verifies --
        the set is internally consistent no matter the interleaving."""
        server = ShardedLogServer(shards=4)
        register_pair(server, keypool)

        def submitter(thread_id):
            for i in range(PER_THREAD):
                server.submit(_entry(thread_id, i, TOPICS[i % len(TOPICS)]))

        _run_threads(submitter)
        first, second = server.commitment(), server.commitment()
        assert first == second
        assert first.entries == THREADS * PER_THREAD
        for shard in range(4):
            assert server.shard_commitment(shard) == first.shard_commitments[shard]

    def test_topic_locality_survives_concurrency(self, keypool):
        """Races must never scatter a topic across shards."""
        server = ShardedLogServer(shards=4)
        register_pair(server, keypool)

        def submitter(thread_id):
            for i in range(PER_THREAD):
                server.submit(_entry(thread_id, i, TOPICS[thread_id % len(TOPICS)]))

        _run_threads(submitter)
        for topic in TOPICS:  # THREADS == len(TOPICS): each owns one topic
            home = server.shard_of(topic)
            for shard in range(4):
                in_shard = server.shard(shard).entries(topic=topic)
                assert len(in_shard) == (PER_THREAD if shard == home else 0)
