"""Soak: deterministic worker crashes at every named storage crashpoint.

One worker per scenario is armed (via ``initial_worker_env`` ->
``ADLP_CRASHPOINT``) to hard-exit at a specific WAL or checkpoint
passage mid-workload -- the in-process equivalent of SIGKILL.  The
supervisor must restart it, recovery must reconstruct the acknowledged
prefix, the parent must resend exactly the rest, and the final audit of
honest traffic must stay honest: identical commitment to an uncrashed
threaded twin, zero false ``invalid`` or ``hidden`` verdicts.

``spill.mid_record`` is deliberately absent: workers journal straight to
their WAL and never write spill files, so that point cannot fire here.

Excluded from tier-1 by the ``soak`` marker.  When ``ADLP_SOAK_LOG_DIR``
is set (CI does this), each scenario's store -- including the per-worker
``worker-*.log`` files -- is rooted there and left behind, so a failing
soak run uploads the worker logs as artifacts.
"""

from __future__ import annotations

import os
import tempfile
import time

import pytest

from repro.sharding import ShardedLogServer, audit_sharded, make_sharded_server
from tests.sharding.workload import (
    honest_pair,
    register_pair,
    report_summary,
    topology_for,
)

pytestmark = pytest.mark.soak

#: The armed worker (topics ``/d`` and ``/e`` route here at 4 shards).
VICTIM = 1

#: crashpoint -> (fire_on passage, extra server config).  The offsets
#: land inside the submission workload: the two key registrations consume
#: the first two ``wal.mid_record``/``wal.pre_fsync`` passages, each
#: two-record sub-batch then costs 2 mid_record + 1 batch_mid +
#: 1 pre_fsync.  Rotation and checkpoint points are made reachable by
#: shrinking the segment/checkpoint cadence instead.
MATRIX = [
    ("wal.mid_record", 7, {}),
    ("wal.batch_mid", 3, {}),
    ("wal.pre_fsync", 5, {}),
    ("wal.pre_rotate", 1, {"segment_max_bytes": 1024}),
    ("checkpoint.partial", 1, {"checkpoint_every": 8}),
    ("checkpoint.pre_rename", 1, {"checkpoint_every": 8}),
]

TRANSMISSIONS = 40


@pytest.fixture()
def soak_store(tmp_path):
    """A fresh store root per test: under ``ADLP_SOAK_LOG_DIR`` when set
    (persisted for artifact upload), else under pytest's tmp dir."""
    root = os.environ.get("ADLP_SOAK_LOG_DIR")
    if root:
        os.makedirs(root, exist_ok=True)
        return tempfile.mkdtemp(prefix="process-soak-", dir=root)
    return str(tmp_path / "soak-store")


def _workload(keypool):
    """Round-robin honest pairs over all eight topics; payloads sized so
    small WAL segments actually rotate."""
    from tests.sharding.workload import TOPICS

    records = []
    for i in range(TRANSMISSIONS):
        pub, sub = honest_pair(
            keypool, TOPICS[i % len(TOPICS)], i + 1, b"soak-%03d" % i * 6
        )
        records += [pub.encode(), sub.encode()]
    return records


@pytest.mark.parametrize(
    "crashpoint,fire_on,config", MATRIX, ids=[m[0] for m in MATRIX]
)
def test_crashpoint_storm_keeps_audit_honest(
    soak_store, keypool, crashpoint, fire_on, config
):
    proc = make_sharded_server(
        backend="process",
        shards=4,
        store_dir=os.path.join(soak_store, crashpoint.replace(".", "-")),
        probe_interval=0.2,
        initial_worker_env={
            VICTIM: {"ADLP_CRASHPOINT": f"{crashpoint}:{fire_on}"}
        },
        **config,
    )
    try:
        register_pair(proc, keypool)
        records = _workload(keypool)
        for start in range(0, len(records), 8):
            proc.submit_batch(records[start : start + 8])

        # the bomb went off and the supervisor (or the reconcile path)
        # brought the worker back
        assert proc.stats()["worker_restarts"] >= 1
        assert proc.shard_stats()[VICTIM]["restarts"] >= 1
        with open(proc.worker_log_path(VICTIM)) as f:
            assert f.read().count("ADLP-WORKER-READY") >= 2

        # nothing lost, nothing duplicated, chains verify
        assert len(proc) == len(records)
        proc.verify_integrity()

        twin = ShardedLogServer(shards=4)
        register_pair(twin, keypool)
        twin.submit_batch(records)
        assert proc.commitment().root == twin.commitment().root

        # honest traffic audits honest: crash recovery must not
        # manufacture evidence of misbehavior
        result = audit_sharded(proc, topology_for())
        assert result.clean
        assert not result.tampered_shards
        assert not result.report.hidden
        for stats in result.report.components.values():
            assert stats.invalid_entries == 0
            assert stats.hidden_entries == 0
        assert report_summary(result.report) == report_summary(
            audit_sharded(twin, topology_for()).report
        )
        twin.close()
    finally:
        proc.close()


def test_supervisor_restarts_idle_victim_without_traffic(soak_store, keypool):
    """The probe loop alone (no submission to trip reconcile) must notice
    a dead worker and bring it back."""
    import signal

    proc = make_sharded_server(
        backend="process",
        shards=2,
        store_dir=os.path.join(soak_store, "idle-restart"),
        probe_interval=0.1,
    )
    try:
        register_pair(proc, keypool)
        first_pid = proc.worker_pid(0)
        os.kill(first_pid, signal.SIGKILL)
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            pid = proc.worker_pid(0)
            if pid is not None and pid != first_pid and proc.shard_stats()[0]["alive"]:
                break
            time.sleep(0.05)
        else:
            pytest.fail("supervisor never restarted the killed worker")
        assert proc.stats()["worker_restarts"] >= 1
        # the restarted worker serves reads and writes again
        pub, sub = honest_pair(keypool, "/b", 1, b"post-restart")  # shard 0
        proc.submit_batch([pub.encode(), sub.encode()])
        assert len(proc) == 2
        proc.verify_integrity()
    finally:
        proc.close()
