"""Direct behavior of the process-sharded backend and its worker adapter.

The cross-backend equivalence battery proves the big invariant (identical
commitments); this file pins the surface contracts around it: the factory
switch, filterable queries, rejection semantics, worker-side misroute
guards, reopen discipline, and checkpoint+reopen recovery.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import LogIntegrityError, LoggingError
from repro.sharding import (
    ProcessShardedLogServer,
    ShardWorkerServer,
    ShardedLogServer,
    make_sharded_server,
)
from tests.sharding.workload import (
    GOLDEN_SHARDS_4,
    TOPICS,
    honest_pair,
    register_pair,
)


def _stream(keypool, count=12, topics=TOPICS):
    records = []
    for i in range(count):
        pub, sub = honest_pair(keypool, topics[i % len(topics)], i + 1, b"m%d" % i)
        records += [pub.encode(), sub.encode()]
    return records


def test_factory_switches_backends(tmp_path):
    thread = make_sharded_server(backend="thread", shards=2)
    assert isinstance(thread, ShardedLogServer)
    thread.close()
    process = make_sharded_server(
        backend="process", shards=2, store_dir=str(tmp_path / "s")
    )
    assert isinstance(process, ProcessShardedLogServer)
    process.close()
    with pytest.raises(LoggingError, match="unknown sharding backend"):
        make_sharded_server(backend="fiber")


def test_surface_parity_with_thread_backend(spawn_server, keypool):
    proc = spawn_server(shards=4)
    thread = ShardedLogServer(shards=4)
    register_pair(proc, keypool)
    register_pair(thread, keypool)
    records = _stream(keypool)
    assert proc.submit_batch(records) == thread.submit_batch(records)

    assert len(proc) == len(thread)
    assert proc.total_bytes == thread.total_bytes
    assert proc.components() == thread.components() == ["/pub", "/sub"]
    assert proc.keys_snapshot() == thread.keys_snapshot()
    assert (
        proc.public_key("/pub").to_bytes() == thread.public_key("/pub").to_bytes()
    )
    for topic in TOPICS[:3]:
        assert proc.entries(topic=topic) == thread.entries(topic=topic)
    assert proc.entries(component_id="/sub") == thread.entries(component_id="/sub")
    for shard in range(4):
        assert proc.shard_raw_records(shard) == thread.shard_raw_records(shard)
        assert proc.shard_commitment(shard) == thread.shard_commitment(shard)
    assert proc.commitment() == thread.commitment()
    assert proc.merkle_root() == thread.merkle_root()
    thread.close()


def test_stats_and_shard_stats_shape(spawn_server, keypool):
    proc = spawn_server(shards=2)
    register_pair(proc, keypool)
    proc.submit_batch(_stream(keypool, count=6))
    stats = proc.stats()
    assert stats["shard_count"] == 2
    assert stats["sharded_entries"] == 12
    assert stats["worker_restarts"] == 0
    rows = proc.shard_stats()
    assert [row["shard"] for row in rows] == [0, 1]
    assert all(row["alive"] for row in rows)
    assert sum(row["entries"] for row in rows) == 12
    # every worker reports what its startup recovery found
    assert all("recovered_entries" in row for row in rows)


def test_undecodable_submissions_rejected_and_counted(spawn_server, keypool):
    proc = spawn_server(shards=2)
    register_pair(proc, keypool)
    with pytest.raises(LoggingError, match="undecodable log entry"):
        proc.submit(b"\xff\xfe not an entry")
    good = _stream(keypool, count=2)
    # one bad entry rejects the whole batch before anything is sent
    with pytest.raises(LoggingError, match="undecodable log entry"):
        proc.submit_batch([good[0], b"\x00garbage", good[1]])
    assert len(proc) == 0
    assert proc.stats()["sharded_rejected"] == 2


def test_observers_cannot_cross_process_boundary(spawn_server):
    proc = spawn_server(shards=2)
    with pytest.raises(LoggingError, match="process boundary"):
        proc.add_observer(lambda record: None)
    with pytest.raises(LoggingError, match="process boundary"):
        proc.remove_observer(lambda record: None)


def test_worker_logs_record_readiness(spawn_server):
    proc = spawn_server(shards=2)
    for shard in range(2):
        with open(proc.worker_log_path(shard)) as f:
            content = f.read()
        assert f"ADLP-WORKER-READY shard={shard}/2" in content


def test_reopen_with_different_count_refused(spawn_server, keypool, tmp_path):
    proc = spawn_server(shards=2, subdir="layout")
    register_pair(proc, keypool)
    proc.submit_batch(_stream(keypool, count=4))
    proc.close()
    with pytest.raises(LogIntegrityError, match="shard directories"):
        ProcessShardedLogServer(shards=3, store_dir=str(tmp_path / "layout"))
    # ...and the refusal is symmetric across backends: the threaded
    # server refuses the process-written layout at the wrong count too.
    with pytest.raises(LogIntegrityError, match="shard directories"):
        ShardedLogServer(shards=3, store_dir=str(tmp_path / "layout"))


def test_checkpoint_and_reopen_recovers_from_checkpoint(
    spawn_server, keypool, tmp_path
):
    proc = spawn_server(shards=2, subdir="ckpt")
    register_pair(proc, keypool)
    records = _stream(keypool, count=10)
    proc.submit_batch(records)
    commitment = proc.commitment()
    proc.checkpoint()
    proc.close()

    reopened = spawn_server(shards=2, subdir="ckpt")
    assert len(reopened) == len(records)
    assert reopened.commitment() == commitment
    assert any(
        row.get("recovered_from_checkpoint", 0) > 0
        for row in reopened.shard_stats()
    )
    reopened.verify_integrity()


class TestWorkerAdapterGuards:
    """The worker-side refusals behind shard-tagged frames (unit-level:
    no subprocess, just the adapter)."""

    def test_rejects_wrong_shard_tag(self, keypool):
        worker = ShardWorkerServer(None, shard_index=1, total_shards=4)
        pub, _ = honest_pair(keypool, "/d", 1, b"x")  # /d routes to shard 1
        with pytest.raises(LoggingError, match="hosts shard 1"):
            worker.submit_to_shard(2, pub.encode())
        with pytest.raises(LoggingError, match="hosts shard 1"):
            worker.shard_commitment(0)
        with pytest.raises(LoggingError, match="hosts shard 1"):
            worker.shard_raw_records(3)

    def test_rejects_misrouted_topic(self, keypool):
        worker = ShardWorkerServer(None, shard_index=1, total_shards=4)
        register_pair(worker, keypool)
        topic = "/a"
        assert GOLDEN_SHARDS_4[topic] == 3  # belongs elsewhere
        pub, _ = honest_pair(keypool, topic, 1, b"x")
        with pytest.raises(LoggingError, match="routes to shard 3"):
            worker.submit_to_shard(1, pub.encode())
        with pytest.raises(LoggingError, match="routes to shard 3"):
            worker.submit_batch_to_shard(1, [pub.encode()])
        assert len(worker) == 0

    def test_accepts_its_own_shard(self, keypool):
        worker = ShardWorkerServer(None, shard_index=1, total_shards=4)
        register_pair(worker, keypool)
        pub, sub = honest_pair(keypool, "/d", 1, b"x")  # shard 1 at 4 shards
        assert worker.submit_batch_to_shard(1, [pub.encode(), sub.encode()]) == [
            0,
            1,
        ]
        assert worker.shard_commitment(1).entries == 2

    def test_out_of_range_index_refused(self):
        with pytest.raises(ValueError, match="out of range"):
            ShardWorkerServer(None, shard_index=4, total_shards=4)


def test_worker_cli_entrypoint_round_trip(tmp_path):
    """`python -m repro.sharding.worker` is a functioning standalone
    server: spawn one directly and speak the wire protocol to it."""
    import subprocess
    import sys
    import time

    from repro.core.remote import RemoteLogger
    from repro.middleware.transport.unix import UnixTransport

    socket_path = str(tmp_path / "w.sock")
    env = os.environ.copy()
    src = os.path.join(os.path.dirname(__file__), "..", "..", "..", "src")
    env["PYTHONPATH"] = (
        os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.sharding.worker",
            "--socket",
            socket_path,
            "--store-dir",
            str(tmp_path / "w-store"),
            "--shard",
            "0",
            "--shards",
            "1",
            "--fsync",
            "never",
        ],
        stdin=subprocess.PIPE,
        env=env,
    )
    client = RemoteLogger((("unix"), socket_path), transport=UnixTransport(), shard=0)
    try:
        deadline = time.monotonic() + 15
        while True:
            try:
                commitment = client.health(timeout=1.0)
                break
            except LoggingError:
                assert time.monotonic() < deadline, "worker never became ready"
                time.sleep(0.05)
        assert commitment.entries == 0
        assert client.server_stats()["shard"] == 0
    finally:
        client.close()
        process.terminate()
        process.wait(timeout=10)
    assert process.returncode == 0  # SIGTERM exits the clean path
