"""Worker crashes: SIGKILL mid-batch, reconciliation, evidence loss,
and tamper localization to the damaged worker's shard.

The deterministic crashes use the storage layer's ``ADLP_CRASHPOINT``
arming (passed through ``initial_worker_env`` so exactly one worker's
*first* incarnation is a time bomb; supervisor restarts always run
clean), so each test pins the exact torn state it proves recoverable --
the same discipline as the single-store crash battery.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.errors import LogIntegrityError
from repro.sharding import ShardedLogServer, audit_sharded, shard_dirname
from repro.storage.durable_store import WAL_SUBDIR
from repro.storage.wal import SEGMENT_HEADER_SIZE, segment_paths
from tests.sharding.workload import (
    GOLDEN_SHARDS_4,
    TOPICS,
    honest_pair,
    register_pair,
    report_summary,
    topology_for,
)


def _honest_records(keypool, count, topics=TOPICS):
    records = []
    for i in range(count):
        pub, sub = honest_pair(keypool, topics[i % len(topics)], i + 1, b"c%d" % i)
        records += [pub.encode(), sub.encode()]
    return records


def _twin(keypool, records):
    twin = ShardedLogServer(shards=4)
    register_pair(twin, keypool)
    twin.submit_batch(records)
    return twin


def _flip_byte(path, offset):
    with open(path, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)
        f.seek(offset)
        f.write(bytes([byte[0] ^ 0x01]))


def _last_wal_segment(store_dir, shard):
    wal_dir = os.path.join(str(store_dir), shard_dirname(shard), WAL_SUBDIR)
    return segment_paths(wal_dir)[-1][1]


# fire_on offsets chosen to land inside the submission workload: the two
# key registrations consume the first two ``wal.pre_fsync`` passages (one
# WAL append each), and ``wal.batch_mid`` is only ever passed inside a
# multi-record group commit.
CRASHPOINTS = {"wal.batch_mid": 3, "wal.pre_fsync": 5}


@pytest.mark.parametrize("crashpoint", sorted(CRASHPOINTS))
def test_crashpoint_mid_batch_recovers_to_identical_audit(
    spawn_server, keypool, crashpoint
):
    """A worker that dies *inside* a group commit (between journaled
    records, or after the write but before the fsync) is restarted,
    recovers from its own WAL, the parent resends exactly the unlanded
    suffix -- and the final commitment and audit verdicts are identical
    to an uncrashed threaded run of the same stream."""
    victim = 1
    fire_on = CRASHPOINTS[crashpoint]
    proc = spawn_server(
        shards=4,
        subdir=f"crash-{crashpoint.replace('.', '-')}",
        initial_worker_env={victim: {"ADLP_CRASHPOINT": f"{crashpoint}:{fire_on}"}},
    )
    register_pair(proc, keypool)
    records = _honest_records(keypool, count=24)
    for start in range(0, len(records), 8):
        proc.submit_batch(records[start : start + 8])

    assert len(proc) == len(records)
    assert proc.stats()["worker_restarts"] >= 1
    assert proc.stats()["resubmitted_after_crash"] >= 1
    assert proc.shard_stats()[victim]["restarts"] >= 1
    proc.verify_integrity()

    twin = _twin(keypool, records)
    assert proc.commitment().root == twin.commitment().root
    topology = topology_for()
    crashed = audit_sharded(proc, topology)
    clean = audit_sharded(twin, topology)
    assert not crashed.tampered_shards
    assert report_summary(crashed.report) == report_summary(clean.report)
    assert crashed.clean
    twin.close()


def test_sigkill_between_batches_recovers(spawn_server, keypool):
    """A raw SIGKILL (no cooperative crashpoint at all) while traffic
    flows: the next submission reconciles and nothing is lost."""
    proc = spawn_server(shards=4, subdir="sigkill")
    register_pair(proc, keypool)
    records = _honest_records(keypool, count=20)
    proc.submit_batch(records[:20])
    os.kill(proc.worker_pid(2), signal.SIGKILL)
    proc.submit_batch(records[20:])
    assert len(proc) == len(records)
    assert proc.stats()["worker_restarts"] >= 1
    proc.verify_integrity()
    twin = _twin(keypool, records)
    assert proc.commitment().root == twin.commitment().root
    twin.close()


def test_acknowledged_evidence_loss_is_integrity_failure(
    spawn_server, keypool, tmp_path
):
    """A worker that comes back with *fewer* entries than were
    acknowledged is not a crash to retry around: acknowledged means
    durable, so the parent must report loss, and the shard stays
    poisoned rather than quietly re-ingesting."""
    proc = spawn_server(shards=4, subdir="loss", supervise=False)
    register_pair(proc, keypool)
    victim_topic = "/a"
    victim = GOLDEN_SHARDS_4[victim_topic]
    records = []
    for i in range(6):
        pub, sub = honest_pair(keypool, victim_topic, i + 1, b"x%d" % i)
        records += [pub.encode(), sub.encode()]
    proc.submit_batch(records)

    # Simulate durable loss: kill the worker and vaporize its journal.
    os.kill(proc.worker_pid(victim), signal.SIGKILL)
    wal_dir = tmp_path / "loss" / shard_dirname(victim) / WAL_SUBDIR
    for name in os.listdir(wal_dir):
        os.unlink(wal_dir / name)

    pub, sub = honest_pair(keypool, victim_topic, 99, b"after")
    with pytest.raises(LogIntegrityError, match="acknowledged"):
        proc.submit_batch([pub.encode(), sub.encode()])
    # the shard is poisoned: later operations re-raise, never re-ingest
    with pytest.raises(LogIntegrityError, match="acknowledged"):
        proc.submit(pub.encode())
    # ...but other shards keep working
    other_topic = next(t for t in TOPICS if GOLDEN_SHARDS_4[t] != victim)
    pub2, _ = honest_pair(keypool, other_topic, 50, b"ok")
    proc.submit(pub2.encode())


def test_live_tamper_flags_exactly_the_damaged_workers_shard(
    spawn_server, keypool, tmp_path
):
    """Flip a byte in one worker's WAL while the set is live: the strict
    per-shard verify (an ``OP_VERIFY`` round trip into that worker) fails
    for that shard alone, and the sharded audit still classifies every
    other shard's evidence."""
    proc = spawn_server(shards=4, subdir="tamper-live")
    register_pair(proc, keypool)
    proc.submit_batch(_honest_records(keypool, count=16))

    victim = GOLDEN_SHARDS_4["/a"]
    _flip_byte(
        _last_wal_segment(tmp_path / "tamper-live", victim),
        SEGMENT_HEADER_SIZE + 9,
    )

    with pytest.raises(LogIntegrityError, match=f"shard {victim}"):
        proc.verify_integrity()
    result = audit_sharded(proc, topology_for())
    assert result.tampered_shards == [victim]
    assert not result.clean
    intact = [o for o in result.outcomes if not o.tampered]
    assert len(intact) == 3
    assert all(o.report is not None for o in intact)


def test_recovered_tamper_localizes_via_published_commitment(
    spawn_server, keypool
):
    """Damage one worker's WAL tail after a clean shutdown: recovery
    truncates the damaged suffix (shorter, not torn), so localization
    comes from comparing the reopened set against the previously
    published commitment -- which names exactly the damaged worker's
    shard."""
    proc = spawn_server(shards=4, subdir="tamper-reopen")
    register_pair(proc, keypool)
    proc.submit_batch(_honest_records(keypool, count=16))
    published = proc.commitment()
    store_dir = proc.store_dir
    proc.close()

    victim = GOLDEN_SHARDS_4["/h"]
    wal_path = _last_wal_segment(store_dir, victim)
    _flip_byte(wal_path, os.path.getsize(wal_path) - 3)

    reopened = spawn_server(shards=4, subdir="tamper-reopen")
    result = audit_sharded(reopened, topology_for(), expected=published)
    assert result.mismatched_shards == [victim]
    assert result.flagged_shards() == [victim]
    assert not result.clean
    assert result.commitment.root != published.root
    # the recovered shard is internally consistent -- shorter, not torn
    assert result.tampered_shards == []
    assert len(reopened) == published.entries - 1
