"""Property-based cross-process equivalence.

The process backend's headline invariant: for identical inputs, thread
and process backends produce byte-identical
:class:`ShardSetCommitment`s -- through randomized mixed workloads,
through checkpoint+reopen of both backends, and straight through a
SIGKILLed worker's restart-with-recovery.

One hundred-plus randomized workload rounds run against a single
long-lived backend pair (spawning fresh workers per round would measure
process startup, not equivalence), with the commitment compared after
*every* round -- a divergence localizes to the round (and, via
``mismatched_shards``, the shard) that introduced it.  All randomness is
``PYTEST_SEED``-driven through the ``rng`` fixture.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.audit import Auditor
from repro.sharding import ShardedLogServer, audit_sharded
from tests.sharding.workload import (
    TOPICS,
    build_stream,
    honest_pair,
    register_pair,
    report_summary,
    topology_for,
)

#: Randomized workload rounds (the acceptance bar is >= 100, including
#: the special rounds below).
ROUNDS = 104
#: Rounds at which both backends are closed and reopened from their
#: stores (recovery must be commitment-preserving).
REOPEN_ROUNDS = frozenset({40})
#: Rounds at which one worker is SIGKILLed right before the submissions
#: (restart-with-recovery mid-suite; the victim rotates).
SIGKILL_ROUNDS = frozenset({20, 71})


def _random_workload(keypool, rng, seqs, size):
    """``size`` honest transmissions on random topics, returned as
    encoded records in a deterministic-random order."""
    records = []
    for _ in range(size):
        topic = rng.choice(TOPICS)
        seqs[topic] += 1
        payload = bytes(rng.getrandbits(8) for _ in range(rng.randrange(4, 20)))
        pub, sub = honest_pair(keypool, topic, seqs[topic], payload)
        records += [pub.encode(), sub.encode()]
    rng.shuffle(records)
    return records


def _submit_like(rng, server, records):
    """Mixed submission plan: some records go through ``submit``, some
    through ``submit_batch``, in rng-chosen runs (the same plan is applied
    to both backends by re-seeding)."""
    i = 0
    while i < len(records):
        if rng.random() < 0.5:
            server.submit(records[i])
            i += 1
        else:
            run = min(rng.randrange(2, 7), len(records) - i)
            server.submit_batch(records[i : i + run])
            i += run


def test_randomized_workloads_commitment_equivalent(
    spawn_server, keypool, rng, tmp_path, deterministic_seed
):
    import random

    proc = spawn_server(shards=4, subdir="equiv-proc", fsync="always")
    thread = ShardedLogServer(
        shards=4, store_dir=str(tmp_path / "equiv-thread"), fsync="never"
    )
    register_pair(proc, keypool)
    register_pair(thread, keypool)
    seqs = {t: 0 for t in TOPICS}
    victim = 0
    restarts_before_reopen = 0
    try:
        for round_no in range(ROUNDS):
            if round_no in REOPEN_ROUNDS:
                restarts_before_reopen += proc.stats()["worker_restarts"]
                proc.checkpoint()
                proc.close()
                thread.checkpoint()
                thread.close()
                proc = spawn_server(
                    shards=4, subdir="equiv-proc", fsync="always"
                )
                thread = ShardedLogServer(
                    shards=4,
                    store_dir=str(tmp_path / "equiv-thread"),
                    fsync="never",
                )
            if round_no in SIGKILL_ROUNDS:
                pid = proc.worker_pid(victim)
                assert pid is not None
                os.kill(pid, signal.SIGKILL)
                victim = (victim + 1) % 4
            records = _random_workload(
                keypool, rng, seqs, size=rng.randrange(2, 5)
            )
            # identical submission plan on both backends
            plan_seed = deterministic_seed * 100003 + round_no
            _submit_like(random.Random(plan_seed), proc, records)
            _submit_like(random.Random(plan_seed), thread, records)
            pc, tc = proc.commitment(), thread.commitment()
            assert pc.root == tc.root, (
                f"round {round_no}: commitment diverged in shards "
                f"{tc.mismatched_shards(pc)}"
            )
        assert len(proc) == len(thread) > 0
        total_restarts = restarts_before_reopen + proc.stats()["worker_restarts"]
        assert total_restarts >= len(SIGKILL_ROUNDS)
        proc.verify_integrity()
    finally:
        thread.close()


def test_verdict_multiset_equivalent_for_dishonest_traffic(
    spawn_server, keypool, rng
):
    """Honest, hidden, and forged traffic classifies identically across
    backends -- and identically across thread- and process-pool audit
    executors -- against a single unsharded reference audit."""
    records = build_stream(keypool, rng, transmissions=40)
    topology = topology_for()

    proc = spawn_server(shards=4, fsync="never")
    thread = ShardedLogServer(shards=4)
    register_pair(proc, keypool)
    register_pair(thread, keypool)
    proc.submit_batch(records)
    thread.submit_batch(records)

    # unsharded reference: one LogServer fed the same stream
    from repro.core.log_server import LogServer

    reference = LogServer()
    register_pair(reference, keypool)
    reference.submit_batch(records)
    reference_report = Auditor(reference.keystore, topology).audit(
        reference.entries()
    )
    expected = report_summary(reference_report)

    results = {
        "thread/thread": audit_sharded(thread, topology, executor="thread"),
        "thread/process": audit_sharded(thread, topology, executor="process"),
        "process/thread": audit_sharded(proc, topology, executor="thread"),
        "process/process": audit_sharded(proc, topology, executor="process"),
    }
    for label, result in results.items():
        assert not result.tampered_shards, label
        assert report_summary(result.report) == expected, label
    assert (
        results["thread/thread"].commitment.root
        == results["process/process"].commitment.root
    )
    thread.close()
