"""Fixtures for the process-sharded backend battery.

Worker subprocesses are the expensive resource here (a Python interpreter
plus recovery per shard), so tests share spawned servers where the
semantics allow it and always close through the factory helpers below --
a leaked worker would outlive the test process only until its stdin-EOF
watcher fires, but would still slow the suite down.
"""

from __future__ import annotations

import pytest

from repro.sharding import make_sharded_server


@pytest.fixture()
def spawn_server(tmp_path):
    """Factory for process-sharded servers rooted under this test's tmp
    dir; everything it spawns is closed at teardown."""
    created = []

    def factory(shards=2, subdir="proc-store", backend="process", **kwargs):
        kwargs.setdefault("probe_interval", 0.2)
        server = make_sharded_server(
            backend=backend,
            shards=shards,
            store_dir=str(tmp_path / subdir),
            **kwargs,
        )
        created.append(server)
        return server

    yield factory
    for server in created:
        server.close()
