"""Concurrent submitters hammering one process-sharded server.

The parent serializes each shard's traffic behind that worker's handle
lock (FIFO single-writer connection), so concurrent client threads must
never lose, duplicate, or cross-wire an acknowledged entry -- the final
entry count is exact, the per-shard chains verify, and the audit verdict
multiset matches a threaded twin fed the same records.
"""

from __future__ import annotations

import threading

from repro.sharding import ShardedLogServer, audit_sharded
from tests.sharding.workload import (
    TOPICS,
    honest_pair,
    register_pair,
    report_summary,
    topology_for,
)

THREADS = 8
TRANSMISSIONS_PER_THREAD = 24


def test_concurrent_submitters_lose_nothing(spawn_server, keypool):
    proc = spawn_server(shards=4, fsync="never")
    register_pair(proc, keypool)

    # Pre-build every thread's records so the threaded twin can be fed
    # the identical multiset afterwards (order differs across shards'
    # interleavings; verdicts must not).
    streams = []
    for worker_no in range(THREADS):
        records = []
        for i in range(TRANSMISSIONS_PER_THREAD):
            topic = TOPICS[(worker_no + i) % len(TOPICS)]
            seq = worker_no * TRANSMISSIONS_PER_THREAD + i + 1
            pub, sub = honest_pair(keypool, topic, seq, b"s%d-%d" % (worker_no, i))
            records.append((pub.encode(), sub.encode()))
        streams.append(records)

    errors = []

    def hammer(records):
        try:
            for n, (pub, sub) in enumerate(records):
                if n % 3 == 0:
                    proc.submit_batch([pub, sub])
                else:
                    proc.submit(pub)
                    proc.submit(sub)
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(stream,)) for stream in streams
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors
    total = THREADS * TRANSMISSIONS_PER_THREAD * 2
    assert len(proc) == total  # zero lost, zero duplicated
    assert proc.stats()["sharded_rejected"] == 0
    proc.verify_integrity()

    # verdicts are order-independent: a threaded twin fed the same
    # records sequentially classifies identically
    twin = ShardedLogServer(shards=4)
    register_pair(twin, keypool)
    for stream in streams:
        for pub, sub in stream:
            twin.submit_batch([pub, sub])
    assert len(twin) == total
    topology = topology_for()
    stressed = audit_sharded(proc, topology)
    reference = audit_sharded(twin, topology)
    assert not stressed.tampered_shards
    assert report_summary(stressed.report) == report_summary(reference.report)
    assert stressed.clean
    twin.close()
