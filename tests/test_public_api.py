"""The package's public face: exports, versioning, error hierarchy."""

import pytest

import repro
from repro import errors


class TestTopLevelExports:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_symbols(self):
        # the README quickstart must keep working
        from repro import (
            AdlpConfig,
            AdlpProtocol,
            Auditor,
            LogServer,
            Master,
            NaiveProtocol,
            Node,
            Topology,
            render_report,
        )

        assert callable(render_report)


class TestErrorHierarchy:
    def test_every_library_error_is_a_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is errors.ReproError:
                    continue
                assert issubclass(obj, errors.ReproError), name

    def test_subsystem_grouping(self):
        assert issubclass(errors.KeyGenerationError, errors.CryptoError)
        assert issubclass(errors.SignatureError, errors.CryptoError)
        assert issubclass(errors.DecodingError, errors.EncodingError)
        assert issubclass(errors.TransportError, errors.MiddlewareError)
        assert issubclass(errors.AckTimeoutError, errors.ProtocolError)
        assert issubclass(errors.LogIntegrityError, errors.LoggingError)

    def test_single_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.StaleSequenceError("x")
