"""Admission control: the controller's gauge and the endpoint's BUSY /
deadline wire behavior."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import LogServer, LogServerEndpoint, RemoteLogger
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.remote import (
    OP_BUSY,
    OP_DEADLINE_EXPIRED,
    OP_SUBMIT_BATCH,
    LoggerRequest,
    _raise_for_verdict,
)
from repro.errors import DeadlineExceeded, LoggingError, ServerBusy
from repro.middleware.transport.inproc import InprocTransport
from repro.resilience import (
    AdmissionConfig,
    AdmissionController,
    BusyDecision,
)


def entry(seq, topic="/t", component="/p"):
    return LogEntry(
        component_id=component,
        topic=topic,
        type_name="std/String",
        direction=Direction.OUT,
        seq=seq,
        scheme=Scheme.ADLP,
        data=b"payload-%04d" % seq,
    )


class TestAdmissionController:
    def test_admits_below_watermark(self):
        ctrl = AdmissionController(AdmissionConfig(high_watermark=4))
        assert ctrl.try_admit(3) is None
        assert ctrl.depth == 3
        assert not ctrl.busy

    def test_busy_latches_at_high_and_clears_at_low(self):
        ctrl = AdmissionController(
            AdmissionConfig(high_watermark=4, low_watermark=1)
        )
        assert ctrl.try_admit(4) is None  # overshoot allowed while idle
        assert ctrl.busy
        decision = ctrl.try_admit(1)
        assert isinstance(decision, BusyDecision)
        assert decision.queue_depth == 4
        assert decision.retry_after > 0
        # hysteresis: draining to 2 (> low) keeps the latch set
        ctrl.release(2)
        assert ctrl.busy
        assert isinstance(ctrl.try_admit(1), BusyDecision)
        # draining to the low watermark clears it
        ctrl.release(1)
        assert not ctrl.busy
        assert ctrl.try_admit(1) is None

    def test_force_admit_never_refuses_but_trips_the_latch(self):
        ctrl = AdmissionController(AdmissionConfig(high_watermark=2))
        ctrl.force_admit(10)  # fire-and-forget: no response channel
        assert ctrl.depth == 10
        assert ctrl.busy
        assert isinstance(ctrl.try_admit(1), BusyDecision)
        stats = ctrl.stats()
        assert stats["admission_forced"] == 10
        assert stats["admission_busy_rejections"] == 1
        assert stats["admission_peak_depth"] == 10

    def test_retry_hint_scales_with_overshoot_and_clamps(self):
        ctrl = AdmissionController(
            AdmissionConfig(
                high_watermark=10, retry_after=0.05, max_retry_after=0.12
            )
        )
        ctrl.force_admit(10)
        mild = ctrl.try_admit(1).retry_after
        ctrl.force_admit(90)  # 10x past the watermark: clamp kicks in
        deep = ctrl.try_admit(1).retry_after
        assert mild == pytest.approx(0.05)
        assert deep == pytest.approx(0.12)

    def test_sync_wait_blocks_until_capacity(self):
        ctrl = AdmissionController(
            AdmissionConfig(high_watermark=2, low_watermark=0, sync_wait=5.0)
        )
        assert ctrl.try_admit(2) is None
        released = threading.Timer(0.05, ctrl.release, args=(2,))
        released.start()
        started = time.monotonic()
        assert ctrl.try_admit(1) is None  # blocked, then admitted
        assert time.monotonic() - started < 4.0
        released.join()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(high_watermark=0)
        with pytest.raises(ValueError):
            AdmissionConfig(high_watermark=4, low_watermark=4)
        with pytest.raises(ValueError):
            AdmissionConfig(retry_after=0.5, max_retry_after=0.1)


class TestEndpointBusyWire:
    def _serve(self, server=None, **admission_kwargs):
        server = server or LogServer()
        admission = AdmissionController(AdmissionConfig(**admission_kwargs))
        endpoint = LogServerEndpoint(
            server, transport=InprocTransport(), admission=admission
        )
        return server, admission, endpoint

    def test_sync_submit_refused_with_busy_verdict(self):
        server, admission, endpoint = self._serve(
            high_watermark=2, low_watermark=0, retry_after=0.03
        )
        admission.force_admit(5)  # simulate concurrent in-flight ingest
        client = RemoteLogger(endpoint.address, transport=endpoint._transport)
        try:
            with pytest.raises(ServerBusy) as excinfo:
                client.submit_batch_sync([entry(1)], timeout=1.0)
            assert excinfo.value.queue_depth == 5
            assert excinfo.value.retry_after > 0
            assert client.busy_responses == 1
            assert len(server) == 0  # refused before ingest
            admission.release(5)
            assert client.submit_batch_sync([entry(1)], timeout=1.0) == 1
            assert len(server) == 1
        finally:
            client.close()
            endpoint.close()

    def test_busy_response_carries_entry_count_for_credit_settling(self):
        """Even a refused credit sync settles the client's window: the
        BUSY response carries the server's current entry count."""
        server, admission, endpoint = self._serve(
            high_watermark=2, low_watermark=0
        )
        server.register_key("/p", _keypair().public)
        transport = endpoint._transport
        client = RemoteLogger(endpoint.address, transport=transport)
        try:
            admission.force_admit(5)
            request = LoggerRequest(
                op=OP_SUBMIT_BATCH, entry_batch=[], sync=True
            )
            response = client._rpc(request, timeout=1.0)
            assert not response.ok
            assert int(response.code) == OP_BUSY
            assert int(response.entries) == len(server)
            assert int(response.queue_depth) == 5
            assert int(response.retry_after_ms) > 0
        finally:
            client.close()
            endpoint.close()

    def test_fire_and_forget_is_force_admitted_not_refused(self):
        server, admission, endpoint = self._serve(
            high_watermark=1, low_watermark=0
        )
        server.register_key("/p", _keypair().public)
        client = RemoteLogger(endpoint.address, transport=endpoint._transport)
        try:
            admission.force_admit(3)  # latch busy
            for seq in range(1, 6):
                client.submit(entry(seq))
            deadline = time.monotonic() + 5.0
            while len(server) < 5 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(server) == 5  # nothing refused, nothing lost
            assert admission.stats()["admission_forced"] >= 8
        finally:
            client.close()
            endpoint.close()

    def test_deadline_expired_refuses_without_ingesting(self):
        server, admission, endpoint = self._serve(
            high_watermark=1, low_watermark=0, sync_wait=5.0
        )
        server.register_key("/p", _keypair().public)
        client = RemoteLogger(endpoint.address, transport=endpoint._transport)
        try:
            # deadline_ms=0 means "no deadline" on the wire; prove that
            # first (with capacity available the frame ingests normally).
            request = LoggerRequest(
                op=OP_SUBMIT_BATCH,
                entry_batch=[entry(1).encode()],
                sync=True,
                deadline_ms=0,
            )
            response = client._rpc(request, timeout=1.0)
            assert response.ok
            assert len(server) == 1

            # Now make admission's sync_wait eat the whole budget: the
            # latch is busy on arrival, capacity only frees after ~80ms,
            # and the 30ms deadline has expired by the time the frame is
            # admitted -- the server must refuse WITHOUT ingesting.
            admission.force_admit(1)
            freed = threading.Timer(0.08, admission.release, args=(1,))
            freed.start()
            request = LoggerRequest(
                op=OP_SUBMIT_BATCH,
                entry_batch=[entry(2).encode()],
                sync=True,
                deadline_ms=30,
            )
            response = client._rpc(request, timeout=5.0)
            freed.join()
            assert not response.ok
            assert int(response.code) == OP_DEADLINE_EXPIRED
            assert len(server) == 1  # the expired entry was NOT ingested
            assert int(response.entries) == 1
            assert admission.stats()["admission_deadline_rejections"] == 1
            # The client stub translates the verdict into the typed error.
            with pytest.raises(DeadlineExceeded):
                _raise_for_verdict(response)
        finally:
            client.close()
            endpoint.close()
            server.close()

    def test_stats_probe_merges_admission_counters(self):
        server, admission, endpoint = self._serve(high_watermark=8)
        client = RemoteLogger(endpoint.address, transport=endpoint._transport)
        try:
            server.register_key("/p", _keypair().public)
            client.submit_batch_sync([entry(1)], timeout=1.0)
            stats = client.server_stats()
            assert stats["admission_admitted"] == 1
            assert "admission_peak_depth" in stats
            assert "admission_busy_rejections" in stats
        finally:
            client.close()
            endpoint.close()


class TestProcessParentBusyPath:
    """The process-sharded parent's cooperative BUSY handling: honor the
    hint, reconcile the landed prefix by count, never double-ingest."""

    @pytest.fixture(autouse=True)
    def _unix_only(self):
        from repro.middleware.transport.unix import unix_sockets_supported

        if not unix_sockets_supported():
            pytest.skip("needs AF_UNIX sockets")

    def test_parent_honors_busy_and_resends_only_the_suffix(self, tmp_path):
        from repro.sharding.process_server import ProcessShardedLogServer

        server = ProcessShardedLogServer(
            shards=1,
            store_dir=str(tmp_path / "shards"),
            supervise=False,
            rpc_timeout=5.0,
        )
        try:
            server.register_key("/p", _keypair().public)
            handle = server._handles[0]
            real = handle.client.submit_batch_sync
            calls = {"n": 0}

            def busy_after_landing(entries, shard=None, timeout=30.0):
                # First call: the batch lands, but the response is a BUSY
                # (as if a later frame of a multi-frame batch was
                # refused).  The parent must reconcile by count and
                # resend nothing.
                calls["n"] += 1
                if calls["n"] == 1:
                    real(entries, shard=shard, timeout=timeout)
                    raise ServerBusy(retry_after=0.01, queue_depth=99)
                return real(entries, shard=shard, timeout=timeout)

            handle.client.submit_batch_sync = busy_after_landing
            batch = [entry(seq) for seq in range(1, 9)]
            server.submit_batch(batch)
            handle.client.submit_batch_sync = real

            assert len(server) == 8  # exactly once, no duplicates
            assert server.stats()["busy_backoffs"] >= 1
            server.verify_integrity()
        finally:
            server.close()

    def test_parent_gives_up_on_a_permanently_busy_worker(self, tmp_path):
        from repro.sharding.process_server import ProcessShardedLogServer

        server = ProcessShardedLogServer(
            shards=1,
            store_dir=str(tmp_path / "shards"),
            supervise=False,
            rpc_timeout=0.1,  # bounds busy-waiting at 2x this
        )
        try:
            server.register_key("/p", _keypair().public)
            handle = server._handles[0]

            def always_busy(entries, shard=None, timeout=30.0):
                raise ServerBusy(retry_after=0.02, queue_depth=1)

            handle.client.submit_batch_sync = always_busy
            with pytest.raises(LoggingError, match="stayed busy"):
                server.submit_batch([entry(1)])
        finally:
            server.close()


def _keypair():
    from repro.crypto.keys import generate_keypair

    return generate_keypair(512, seed=424242)
