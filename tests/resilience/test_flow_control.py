"""Client-side flow control: credit window, retry budget, jitter, and
the RemoteLogger shed-mode state machine they plug into."""

from __future__ import annotations

import random
import time

import pytest

from repro.core import LogServer, LogServerEndpoint, RemoteLogger
from repro.core.entries import Direction, LogEntry, Scheme
from repro.errors import LoggingError
from repro.middleware.transport.inproc import InprocTransport
from repro.resilience import (
    AdmissionConfig,
    AdmissionController,
    CreditWindow,
    FlowControlConfig,
    RetryBudget,
    full_jitter,
)


def entry(seq, topic="/t", component="/p"):
    return LogEntry(
        component_id=component,
        topic=topic,
        type_name="std/String",
        direction=Direction.OUT,
        seq=seq,
        scheme=Scheme.ADLP,
        data=b"payload-%04d" % seq,
    )


def _keypair():
    from repro.crypto.keys import generate_keypair

    return generate_keypair(512, seed=424243)


class TestCreditWindow:
    def test_charge_accumulates_and_trips_at_window(self):
        window = CreditWindow(window_bytes=100)
        assert not window.charge(40)
        assert not window.charge(40)
        assert window.charge(40)  # 120 >= 100: sync due
        assert window.outstanding == 120

    def test_settle_resets_and_counts(self):
        window = CreditWindow(window_bytes=10)
        window.charge(25)
        window.settle()
        assert window.outstanding == 0
        assert window.credit_syncs == 1

    def test_reset_clears_without_counting_a_sync(self):
        window = CreditWindow(window_bytes=10)
        window.charge(25)
        window.reset()
        assert window.outstanding == 0
        assert window.credit_syncs == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CreditWindow(window_bytes=0)


class TestRetryBudget:
    def test_starts_full_and_exhausts(self):
        budget = RetryBudget(capacity=2.0, token_ratio=0.5, time_refill=0.0)
        assert budget.take()
        assert budget.take()
        assert not budget.take()  # empty: retry must wait
        assert budget.exhausted == 1

    def test_successes_mint_tokens_capped_at_capacity(self):
        budget = RetryBudget(capacity=2.0, token_ratio=0.5, time_refill=0.0)
        budget.take()
        budget.take()
        budget.deposit(2)  # 2 * 0.5 = one token back
        assert budget.take()
        assert not budget.take()
        budget.deposit(1000)  # capped: at most `capacity` tokens
        assert budget.tokens == pytest.approx(2.0)

    def test_time_trickle_restores_liveness(self):
        clock = {"now": 0.0}
        budget = RetryBudget(
            capacity=1.0, token_ratio=0.0, time_refill=2.0,
            clock=lambda: clock["now"],
        )
        assert budget.take()
        assert not budget.take()
        assert budget.seconds_until_token() == pytest.approx(0.5)
        clock["now"] += 0.5  # the 2 tokens/s trickle mints one
        assert budget.seconds_until_token() == 0.0
        assert budget.take()

    def test_disabled_trickle_reports_infinite_wait(self):
        budget = RetryBudget(capacity=1.0, token_ratio=0.5, time_refill=0.0)
        budget.take()
        assert budget.seconds_until_token() == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(capacity=0.5)


class TestFullJitter:
    def test_within_range_and_deterministic_when_seeded(self):
        rng = random.Random(7)
        values = [full_jitter(1.0, rng) for _ in range(100)]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert len(set(values)) > 1  # actually jittered
        replay = random.Random(7)
        assert values == [full_jitter(1.0, replay) for _ in range(100)]

    def test_nonpositive_cap_is_zero(self):
        assert full_jitter(0.0) == 0.0
        assert full_jitter(-1.0) == 0.0


class TestFlowControlConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FlowControlConfig(window_bytes=0)
        with pytest.raises(ValueError):
            FlowControlConfig(credit_timeout=0.0)
        with pytest.raises(ValueError):
            FlowControlConfig(retry_budget=0.0)
        with pytest.raises(ValueError):
            FlowControlConfig(retry_token_ratio=-1.0)
        with pytest.raises(ValueError):
            FlowControlConfig(shed_min_pause=0.5, shed_max_pause=0.1)


class TestReconnectJitter:
    """Satellite: reconnect backoff uses full jitter, not lockstep."""

    def test_failed_connect_backs_off_with_jitter_and_doubles_cap(self):
        transport = InprocTransport()  # nothing listening on this net
        client = RemoteLogger(
            ("inproc", "nowhere"),
            transport=transport,
            reconnect_backoff=0.5,
            max_reconnect_backoff=1.0,
            rng=random.Random(42),
        )
        try:
            before = time.monotonic()
            client.submit(entry(1))  # spills; schedules a jittered retry
            delay = client._next_attempt - before
            assert 0.0 <= delay <= 0.5 + 0.01
            assert client._backoff == pytest.approx(1.0)  # doubled
            client._next_attempt = 0.0  # force another attempt now
            client.submit(entry(2))
            assert client._backoff == pytest.approx(1.0)  # capped
            assert client.spilled == 2  # parked, not lost
        finally:
            client.close()

    def test_jitter_decorrelates_two_seeds(self):
        transport = InprocTransport()
        delays = []
        for seed in (1, 2):
            client = RemoteLogger(
                ("inproc", "nowhere"),
                transport=transport,
                reconnect_backoff=0.5,
                rng=random.Random(seed),
            )
            before = time.monotonic()
            client.submit(entry(1))
            delays.append(client._next_attempt - before)
            client.close()
        assert delays[0] != pytest.approx(delays[1], abs=1e-6)


def _flow(**overrides):
    kwargs = dict(
        window_bytes=1,  # every fire-and-forget send forces a credit sync
        credit_timeout=2.0,
        retry_budget=64.0,
        retry_token_ratio=0.5,
        retry_time_refill=50.0,
        shed_min_pause=0.05,
        shed_max_pause=0.2,
    )
    kwargs.update(overrides)
    return FlowControlConfig(**kwargs)


class TestRemoteLoggerShedMode:
    def _serve(self, **admission_kwargs):
        server = LogServer()
        server.register_key("/p", _keypair().public)
        admission = AdmissionController(AdmissionConfig(**admission_kwargs))
        endpoint = LogServerEndpoint(
            server, transport=InprocTransport(), admission=admission
        )
        return server, admission, endpoint

    def test_credit_sync_settles_window_and_mints_tokens(self):
        server, admission, endpoint = self._serve(high_watermark=1024)
        client = RemoteLogger(
            endpoint.address,
            transport=endpoint._transport,
            flow_control=_flow(),
            rng=random.Random(1),
        )
        try:
            client.submit(entry(1))
            stats = client.stats()
            assert stats["credit_syncs"] == 1
            assert stats["outstanding_bytes"] == 0
            assert stats["busy_responses"] == 0
            assert not client.shedding
            assert len(server) == 1  # the sync proved the frame drained
        finally:
            client.close()
            endpoint.close()

    def test_busy_credit_sync_opens_a_shed_window(self):
        server, admission, endpoint = self._serve(
            high_watermark=2, low_watermark=0, retry_after=0.05
        )
        client = RemoteLogger(
            endpoint.address,
            transport=endpoint._transport,
            flow_control=_flow(),
            rng=random.Random(2),
        )
        try:
            admission.force_admit(5)  # latch the server busy
            client.submit(entry(1))  # forced in; its credit sync sees BUSY
            assert client.busy_responses == 1
            assert client.shedding
            # While shedding, submissions divert to spill: delayed, not
            # lost, and the server sees no new load from this client.
            base = len(server)
            client.submit(entry(2))
            client.submit(entry(3))
            assert client.stats()["shed_entries"] == 2
            assert client.spilled == 2
            assert len(server) == base
        finally:
            client.close()
            endpoint.close()

    def test_shed_window_expires_and_spill_drains(self):
        server, admission, endpoint = self._serve(
            high_watermark=2, low_watermark=0, retry_after=0.01
        )
        client = RemoteLogger(
            endpoint.address,
            transport=endpoint._transport,
            flow_control=_flow(shed_min_pause=0.01, shed_max_pause=0.05),
            rng=random.Random(3),
        )
        try:
            admission.force_admit(5)
            client.submit(entry(1))
            assert client.shedding
            client.submit(entry(2))  # shed to spill
            assert client.spilled == 1
            admission.release(5)  # server recovers
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if not client.shedding and client.flush_spill():
                    break
                time.sleep(0.01)
            assert client.spilled == 0
            assert client.stats()["spill_retries"] == 1
            deadline = time.monotonic() + 5.0
            while len(server) < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(server) == 2  # everything landed exactly once
        finally:
            client.close()
            endpoint.close()

    def test_consecutive_busy_escalates_the_shed_pause(self):
        server, admission, endpoint = self._serve(
            high_watermark=2, low_watermark=0, retry_after=0.01
        )
        client = RemoteLogger(
            endpoint.address,
            transport=endpoint._transport,
            flow_control=_flow(shed_min_pause=0.01, shed_max_pause=0.5),
            rng=random.Random(4),
        )
        try:
            admission.force_admit(5)
            client.submit(entry(1))
            first = client._shed_pause
            # Expire the window, then observe BUSY again: the pause doubles.
            client._shed_until = 0.0
            client.submit(entry(2))
            assert client.busy_responses == 2
            assert client._shed_pause == pytest.approx(first * 2)
        finally:
            client.close()
            endpoint.close()

    def test_drain_pauses_when_retry_budget_is_exhausted(self):
        server, admission, endpoint = self._serve(high_watermark=1024)
        client = RemoteLogger(
            ("inproc", "nowhere"),  # park everything in the spill queue
            transport=endpoint._transport,
            flow_control=_flow(
                retry_budget=1.0, retry_token_ratio=0.0, retry_time_refill=0.0
            ),
            rng=random.Random(5),
            submit_batch_max=1,
        )
        try:
            for seq in range(1, 4):
                client.submit(entry(seq))
            assert client.spilled == 3
            client._address = endpoint.address  # server "comes back"
            client._next_attempt = 0.0
            # One token: exactly one retransmit batch goes out, then the
            # drain reports "not empty" instead of flooding.
            assert not client.flush_spill()
            assert client.stats()["spill_retries"] == 1
            assert client.stats()["retry_budget_exhausted"] >= 1
            assert client.spilled == 2
        finally:
            client.close()
            endpoint.close()
