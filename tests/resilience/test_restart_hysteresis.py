"""Supervisor restart-storm hysteresis: a crash-looping worker is
respawned on an exponentially growing schedule instead of burning its
whole restart budget in one probe-interval burst."""

from __future__ import annotations

import os
import signal
import time

import pytest


@pytest.fixture(autouse=True)
def _unix_only():
    from repro.middleware.transport.unix import unix_sockets_supported

    if not unix_sockets_supported():
        pytest.skip("needs AF_UNIX sockets")


def _wait_for(predicate, deadline_s=15.0, interval=0.02):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def test_second_crash_is_deferred_not_respawned_immediately(tmp_path):
    from repro.sharding.process_server import ProcessShardedLogServer

    server = ProcessShardedLogServer(
        shards=1,
        store_dir=str(tmp_path / "shards"),
        probe_interval=0.05,
        restart_limit=5,
        restart_backoff_base=30.0,  # park the second respawn far away
        restart_backoff_max=60.0,
        restart_backoff_reset=600.0,
    )
    try:
        os.kill(server.worker_pid(0), signal.SIGKILL)
        # First supervised restart is immediate (no backoff yet).
        assert _wait_for(lambda: server.stats()["worker_restarts"] == 1)
        assert _wait_for(lambda: server._handles[0].alive())
        # The restart armed the hysteresis; a second crash inside the
        # backoff window is observed but NOT respawned.
        os.kill(server.worker_pid(0), signal.SIGKILL)
        assert _wait_for(lambda: server.stats()["restarts_deferred"] >= 2)
        stats = server.stats()
        assert stats["worker_restarts"] == 1
        assert not server._handles[0].alive()
    finally:
        server.close()


def test_staying_healthy_earns_the_hysteresis_back(tmp_path):
    from repro.sharding.process_server import ProcessShardedLogServer

    server = ProcessShardedLogServer(
        shards=1,
        store_dir=str(tmp_path / "shards"),
        probe_interval=0.05,
        restart_limit=5,
        restart_backoff_base=0.05,
        restart_backoff_max=0.5,
        restart_backoff_reset=0.3,  # short: health quickly resets backoff
    )
    try:
        os.kill(server.worker_pid(0), signal.SIGKILL)
        assert _wait_for(lambda: server.stats()["worker_restarts"] == 1)
        assert _wait_for(lambda: server._handles[0].alive())
        # After restart_backoff_reset of continuous health the supervisor
        # clears the backoff: the worker earned its fast restarts back.
        assert _wait_for(
            lambda: server._handles[0].restart_backoff == 0.0, deadline_s=10.0
        )
        # ... so the next crash is respawned immediately again.
        os.kill(server.worker_pid(0), signal.SIGKILL)
        assert _wait_for(lambda: server.stats()["worker_restarts"] == 2)
        assert _wait_for(lambda: server._handles[0].alive())
    finally:
        server.close()
