"""Tier-1 smoke slice of the churn x fault x overload scenario matrix.

One cell per backend, covering a lossy transport, an admission-control
overload, a SIGKILL worker restart and a replica disconnect between
them.  The full grid runs under the ``overload`` marker (see
``test_overload_soak.py``); this slice is the always-on regression bar:
every cell must hold the invariant -- no acknowledged evidence lost, no
false audit verdicts.
"""

from __future__ import annotations

import pytest

from repro.resilience.matrix import (
    CELL_TIMEOUT,
    EQUIVOCATION_ROUND_BOUND,
    ScenarioCell,
    enumerate_cells,
    run_cell,
)

SMOKE = enumerate_cells(full=False)


@pytest.mark.parametrize("cell", SMOKE, ids=[c.name for c in SMOKE])
def test_smoke_cell_holds_the_invariant(cell, deterministic_seed):
    result = run_cell(cell, seed=deterministic_seed)
    assert result.ok, (
        f"{cell.name}: {result.failures} "
        f"(submitted={result.submitted} acked={result.acked} "
        f"delivered={result.delivered} busy={result.busy_responses})"
    )
    assert result.delivered > 0
    assert result.invalid == 0
    assert result.hidden == 0
    assert result.elapsed < CELL_TIMEOUT
    if cell.fault == "overload":
        # The overload cell is only meaningful if admission control
        # actually engaged: BUSY verdicts observed, shed entries counted.
        assert result.busy_responses > 0
        assert result.shed_entries > 0
    if cell.fault == "equivocation":
        # The fork must be caught within the bounded gossip rounds and
        # produce self-contained evidence (verified inside run_cell).
        assert result.equivocation_evidence > 0
        assert 0 < result.gossip_rounds <= EQUIVOCATION_ROUND_BOUND
    else:
        # Zero false positives: honest cells never manufacture evidence.
        assert result.equivocation_evidence == 0


class TestScenarioCellValidation:
    def test_rejects_unknown_axes(self):
        with pytest.raises(ValueError):
            ScenarioCell("mainframe", "none", "none", "light")
        with pytest.raises(ValueError):
            ScenarioCell("plain", "bitflip", "none", "light")
        with pytest.raises(ValueError):
            ScenarioCell("plain", "none", "rolling", "light")
        with pytest.raises(ValueError):
            ScenarioCell("plain", "none", "none", "crush")

    def test_rejects_unsound_fault_backend_combos(self):
        # dup/reorder are excluded everywhere by design (see matrix.py);
        # the process backend has no transport-fault seam and the
        # replicated backend cannot prove "no acked loss" under silent
        # fire-and-forget drop/truncate.
        with pytest.raises(ValueError):
            ScenarioCell("process", "drop", "none", "light")
        with pytest.raises(ValueError):
            ScenarioCell("replicated", "truncate", "none", "light")

    def test_rejects_overload_with_churn(self):
        with pytest.raises(ValueError):
            ScenarioCell("plain", "overload", "restart", "light")

    def test_rejects_unsound_equivocation_cells(self):
        # The fork adversary only runs on the plain backend, churn-free.
        with pytest.raises(ValueError):
            ScenarioCell("plain", "equivocation", "restart", "light")
        with pytest.raises(ValueError):
            ScenarioCell("sharded", "equivocation", "none", "light")
        with pytest.raises(ValueError):
            ScenarioCell("process", "equivocation", "none", "light")

    def test_full_grid_enumerates_only_sound_cells(self):
        cells = enumerate_cells(full=True)
        assert len(cells) == len(set(cells))  # no duplicates
        assert len(cells) == 66
        for cell in cells:
            assert ScenarioCell(
                cell.backend, cell.fault, cell.churn, cell.load
            ) == cell
