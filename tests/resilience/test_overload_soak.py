"""The full churn x fault x overload grid, plus a randomized flood soak.

Marked ``overload``: deselected from the default tier-1 run (like
``soak``), executed by the CI overload job.  Run locally with::

    PYTHONPATH=src pytest tests/resilience/test_overload_soak.py -m overload

Each cell asserts the matrix invariant -- no acknowledged evidence is
ever lost and the audit never produces a false verdict -- and the grid
run records one bench row per cell for trend tracking.
"""

from __future__ import annotations

import random

import pytest

from repro.resilience.matrix import (
    NOISE_ENTRIES,
    ScenarioCell,
    enumerate_cells,
    run_cell,
    run_matrix,
)

pytestmark = pytest.mark.overload


def test_full_grid_holds_the_invariant(deterministic_seed):
    cells = enumerate_cells(full=True)
    results = run_matrix(cells=cells, seed=deterministic_seed, record=True)
    failed = [r for r in results if not r.ok]
    detail = "; ".join(
        f"{r.cell.name}: {r.failures}" for r in failed[:10]
    )
    assert not failed, f"{len(failed)}/{len(results)} cells failed: {detail}"
    # The grid only counts as an overload soak if overload cells actually
    # saw admission control engage somewhere.
    overloaded = [r for r in results if r.cell.fault == "overload"]
    assert sum(r.busy_responses for r in overloaded) > 0
    assert sum(r.shed_entries for r in overloaded) > 0


@pytest.mark.parametrize("round_index", range(3))
def test_randomized_flood_rounds(round_index, deterministic_seed):
    """Same overload cell, distinct derived seeds: the invariant must be
    seed-independent, not an artifact of one lucky interleaving."""
    seed = deterministic_seed + 7919 * (round_index + 1)
    cell = ScenarioCell("sharded", "overload", "none", "flood")
    result = run_cell(cell, seed=seed)
    assert result.ok, f"seed {seed}: {result.failures}"
    assert result.busy_responses > 0
    assert result.shed_entries > 0
    # Shed is bounded by what the noise flood submitted: shedding honest
    # acked traffic would have failed the delivery check already, but the
    # counter itself must stay in the "delayed, not lost" regime.
    assert result.shed_entries <= NOISE_ENTRIES["flood"]
