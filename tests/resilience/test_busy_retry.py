"""LoggingThread's cooperative BUSY handling: the server's retry-after
hints are honored on a separate bound, never burned against the ordinary
retry ladder -- but a forever-busy server cannot wedge the worker."""

from __future__ import annotations

import threading

from repro.core.logging_thread import _BUSY_RETRY_LIMIT, LoggingThread
from repro.errors import ServerBusy


class _BusyThenOk:
    """Sink that answers BUSY ``n`` times, then accepts."""

    def __init__(self, busy_times: int):
        self.busy_times = busy_times
        self.calls = 0
        self.accepted = []
        self.lock = threading.Lock()

    def submit(self, entry):
        with self.lock:
            self.calls += 1
            if self.calls <= self.busy_times:
                raise ServerBusy(retry_after=0.001, queue_depth=9)
            self.accepted.append(entry)
            return len(self.accepted)


def test_busy_waits_do_not_burn_the_retry_ladder():
    sink = _BusyThenOk(busy_times=3)
    worker = LoggingThread("/node", sink.submit, max_retries=0, retry_backoff=0.001)
    try:
        worker.enqueue(b"evidence")
        assert worker.flush(timeout=5.0)
        # max_retries=0 means any ordinary failure drops the entry; the
        # three BUSY verdicts were absorbed by the busy bound instead.
        assert sink.accepted == [b"evidence"]
        assert worker.dropped == 0
        assert worker.busy_backoffs == 3
    finally:
        worker.stop()


def test_forever_busy_server_cannot_wedge_the_worker():
    class _AlwaysBusy:
        calls = 0

        def submit(self, entry):
            _AlwaysBusy.calls += 1
            raise ServerBusy(retry_after=0.001, queue_depth=9)

    worker = LoggingThread(
        "/node", _AlwaysBusy().submit, max_retries=0, retry_backoff=0.001
    )
    try:
        worker.enqueue(b"evidence")
        assert worker.flush(timeout=5.0)
        # The busy bound is spent, the retry ladder (zero retries) follows,
        # and the entry is counted dropped -- bounded, not wedged.
        assert worker.dropped == 1
        assert worker.busy_backoffs == _BUSY_RETRY_LIMIT
    finally:
        worker.stop()


def test_batch_submission_honors_busy_then_lands_whole_batch():
    accepted = []
    state = {"busy": 1}
    lock = threading.Lock()

    def submit(entry):
        raise AssertionError("batch path must be used")

    def submit_batch(batch):
        with lock:
            if state["busy"] > 0:
                state["busy"] -= 1
                raise ServerBusy(retry_after=0.001, queue_depth=4)
            accepted.extend(batch)
            return list(range(len(batch)))

    worker = LoggingThread(
        "/node",
        submit,
        submit_batch=submit_batch,
        batch_max=8,
        max_retries=0,
        retry_backoff=0.001,
    )
    try:
        # Stall the worker briefly so the queue accumulates a real batch.
        with lock:
            for i in range(4):
                worker.enqueue(b"e%d" % i)
        assert worker.flush(timeout=5.0)
        assert sorted(accepted) == [b"e0", b"e1", b"e2", b"e3"]
        assert worker.busy_backoffs >= 1
        assert worker.batches >= 1
        assert worker.dropped == 0
    finally:
        worker.stop()
