"""Cross-scheme differential battery.

The scheme layer's core promise is that swapping RSA for Ed25519 changes
*no semantics*: the same abstract workload -- honest transmissions,
fabrications, hidden entries, falsified data, bad signatures -- must audit
to the *identical verdict multiset* under either scheme.  This battery
generates >= 50 PYTEST_SEED-derived randomized workloads, materializes
each one twice (once per scheme, same structure, scheme-appropriate
keys), and compares the full audit outcome.

It also pins the two amortization paths to the plain path: an audit run
through a :class:`~repro.crypto.verifypool.VerifyPool` and a sampled
:class:`~repro.audit.online.OnlineAuditor` final audit must equal the
in-process batch audit.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, List, Tuple

import pytest

from repro.adversary.scenarios import (
    fabricate_publication_entry,
    fabricate_receipt_entry,
    forge_colluding_pair,
    forge_impersonated_entry,
)
from repro.audit import Auditor, AuditReport, Topology
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.protocol import message_digest
from repro.crypto.keys import KeyPair, generate_keypair
from repro.crypto.verifypool import VerifyPool

#: randomized workloads per scheme pair (the acceptance floor is 50)
WORKLOADS = 50

#: components shared by every workload (keys are the expensive part)
COMPONENTS = ["/c0", "/c1", "/c2", "/c3"]

KINDS = [
    "honest",
    "honest",  # weighted: most traffic is honest
    "hidden_subscriber",
    "hidden_publisher",
    "fabricated_publication",
    "fabricated_receipt",
    "impersonated",
    "falsified_data",
    "bad_own_sig",
]


@pytest.fixture(scope="module")
def ed25519_keys(deterministic_seed) -> Dict[str, KeyPair]:
    return {
        name: generate_keypair(seed=deterministic_seed + 100 + i, scheme="ed25519")
        for i, name in enumerate(COMPONENTS)
    }


@pytest.fixture(scope="module")
def rsa_keys(rsa_keypool) -> Dict[str, KeyPair]:
    return {name: rsa_keypool[i] for i, name in enumerate(COMPONENTS)}


def _abstract_workload(seed: int) -> List[Tuple]:
    """Scheme-independent description: one tuple per transmission."""
    rng = random.Random(seed)
    steps: List[Tuple] = []
    n_topics = rng.randint(1, 3)
    for t in range(n_topics):
        topic = f"/topic{t}"
        publisher, subscriber = rng.sample(COMPONENTS, 2)
        for seq in range(1, rng.randint(2, 5)):
            kind = rng.choice(KINDS)
            payload = rng.getrandbits(64).to_bytes(8, "big")
            steps.append((kind, topic, publisher, subscriber, seq, payload))
    return steps


def _materialize(
    steps: List[Tuple], keys: Dict[str, KeyPair]
) -> Tuple[List[LogEntry], Topology]:
    """Instantiate an abstract workload with one scheme's key material."""
    entries: List[LogEntry] = []
    topology = Topology()
    for kind, topic, publisher, subscriber, seq, payload in steps:
        topology.publisher_of[topic] = publisher
        topology.subscribers_of.setdefault(topic, [])
        if subscriber not in topology.subscribers_of[topic]:
            topology.subscribers_of[topic].append(subscriber)
        pub_pair, sub_pair = keys[publisher], keys[subscriber]
        if kind in ("honest", "hidden_subscriber", "hidden_publisher", "bad_own_sig"):
            pub_entry, sub_entry = forge_colluding_pair(
                publisher, pub_pair, subscriber, sub_pair, topic, "Str", seq, payload
            )
            if kind == "bad_own_sig":
                corrupted = bytearray(pub_entry.own_sig)
                corrupted[0] ^= 0x01
                pub_entry.own_sig = bytes(corrupted)
            if kind != "hidden_publisher":
                entries.append(pub_entry)
            if kind != "hidden_subscriber":
                entries.append(sub_entry)
        elif kind == "fabricated_publication":
            entries.append(
                fabricate_publication_entry(
                    publisher, pub_pair, topic, "Str", seq, payload, subscriber
                )
            )
        elif kind == "fabricated_receipt":
            entries.append(
                fabricate_receipt_entry(
                    subscriber, sub_pair, topic, "Str", seq, payload, publisher
                )
            )
        elif kind == "impersonated":
            entries.append(
                forge_impersonated_entry(
                    publisher, sub_pair, topic, "Str", seq, payload
                )
            )
        elif kind == "falsified_data":
            # the publisher really sent `payload` (the subscriber holds its
            # genuine signature) but logs a different payload
            real = message_digest(seq, payload)
            lied = payload + b"!"
            pub_entry, sub_entry = forge_colluding_pair(
                publisher, pub_pair, subscriber, sub_pair, topic, "Str", seq, payload
            )
            pub_entry.data = lied
            pub_entry.own_sig = pub_pair.private.sign_digest(
                message_digest(seq, lied)
            )
            assert pub_entry.peer_hash == real  # ACK stays over the real data
            entries.append(pub_entry)
            entries.append(sub_entry)
        else:  # pragma: no cover
            raise AssertionError(kind)
    return entries, topology


def _signature(report: AuditReport) -> Counter:
    """The scheme-independent audit outcome of a report."""
    outcome = Counter()
    for classified in report.classified:
        outcome[
            (
                "entry",
                classified.entry.component_id,
                classified.entry.topic,
                classified.entry.seq,
                classified.entry.direction.name,
                classified.verdict.name,
                tuple(r.name for r in classified.reasons),
            )
        ] += 1
    for hidden in report.hidden:
        outcome[
            (
                "hidden",
                hidden.component_id,
                hidden.transmission.topic,
                hidden.transmission.seq,
                hidden.direction.name,
            )
        ] += 1
    for anomaly in report.anomalies:
        outcome[("anomaly", anomaly.transmission.topic, anomaly.transmission.seq)] += 1
    return outcome


def _audit(entries, topology, keys, verify_pool=None) -> AuditReport:
    from repro.crypto.keystore import KeyStore

    keystore = KeyStore()
    for name, pair in keys.items():
        keystore.register(name, pair.public)
    return Auditor(keystore, topology, verify_pool=verify_pool).audit(entries)


class TestDifferentialBattery:
    def test_identical_verdict_multisets(
        self, deterministic_seed, rsa_keys, ed25519_keys
    ):
        """>= 50 randomized workloads; RSA and Ed25519 must agree exactly."""
        mismatches = []
        kinds_seen = set()
        for w in range(WORKLOADS):
            steps = _abstract_workload(deterministic_seed * 1000 + w)
            kinds_seen.update(step[0] for step in steps)
            rsa_entries, topology = _materialize(steps, rsa_keys)
            ed_entries, _ = _materialize(steps, ed25519_keys)
            rsa_outcome = _signature(_audit(rsa_entries, topology, rsa_keys))
            ed_outcome = _signature(_audit(ed_entries, topology, ed25519_keys))
            if rsa_outcome != ed_outcome:
                mismatches.append((w, rsa_outcome - ed_outcome, ed_outcome - rsa_outcome))
        assert not mismatches, f"verdicts diverged in workloads: {mismatches}"
        # the battery only proves equivalence if it exercised every path
        assert kinds_seen == set(KINDS)

    @pytest.mark.parametrize("scheme", ["rsa", "ed25519"])
    def test_forged_signature_flip_caught(
        self, scheme, deterministic_seed, rsa_keys, ed25519_keys
    ):
        """Flipping one signature byte in an otherwise-honest workload must
        surface under either scheme, in the same place."""
        keys = rsa_keys if scheme == "rsa" else ed25519_keys
        steps = [
            ("honest", "/topic0", "/c0", "/c1", seq, b"payload-%d" % seq)
            for seq in range(1, 5)
        ]
        entries, topology = _materialize(steps, keys)
        baseline = _audit(entries, topology, keys)
        assert not baseline.flagged_components()

        tampered = bytearray(entries[2].own_sig)
        tampered[3] ^= 0x40
        entries[2].own_sig = bytes(tampered)
        report = _audit(entries, topology, keys)
        flagged = report.flagged_components()
        assert entries[2].component_id in flagged
        bad = [
            c
            for c in report.classified
            if c.entry is entries[2]
        ]
        assert bad[0].verdict.name == "INVALID"

    def test_verify_pool_equals_inline(
        self, deterministic_seed, rsa_keys, ed25519_keys
    ):
        """A pooled audit of a large mixed workload returns byte-identical
        verdicts to the in-process audit, for both schemes."""
        steps = []
        for w in range(8):
            steps.extend(_abstract_workload(deterministic_seed * 77 + w))
        # de-duplicate (topic, seq, kind) collisions across concatenated
        # workloads by renaming topics per slice
        steps = [
            (kind, f"{topic}-w{i % 8}", pub, sub, seq, payload)
            for i, (kind, topic, pub, sub, seq, payload) in enumerate(steps)
        ]
        for keys in (rsa_keys, ed25519_keys):
            entries, topology = _materialize(steps, keys)
            inline = _audit(entries, topology, keys)
            with VerifyPool(workers=2) as pool:
                pooled = _audit(entries, topology, keys, verify_pool=pool)
            assert _signature(inline) == _signature(pooled)
