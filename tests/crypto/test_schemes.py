"""The pluggable signature-scheme layer: registry, tagging, defaults."""

import pytest

from repro.core.policy import AdlpConfig
from repro.crypto.hashing import sha256
from repro.crypto.keys import PublicKey, generate_keypair
from repro.crypto.schemes import (
    DEFAULT_SCHEME,
    SCHEME_ENV_VAR,
    default_scheme_name,
    get_scheme,
    register_scheme,
    scheme_for_tag,
    scheme_names,
)
from repro.errors import DecodingError, KeyGenerationError


class TestRegistry:
    def test_both_backends_registered(self):
        assert scheme_names() == ["ed25519", "rsa"]

    def test_get_scheme_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown signature scheme"):
            get_scheme("dsa")

    def test_tag_lookup(self):
        assert scheme_for_tag(0x01).name == "rsa"
        assert scheme_for_tag(0x02).name == "ed25519"

    def test_unknown_tag_is_decoding_error(self):
        with pytest.raises(DecodingError, match="unknown signature scheme tag"):
            scheme_for_tag(0x7F)

    def test_reregistering_same_instance_is_idempotent(self):
        rsa = get_scheme("rsa")
        assert register_scheme(rsa) is rsa

    def test_conflicting_registration_rejected(self):
        class Impostor:
            name = "rsa"
            tag = 0x01

        with pytest.raises(ValueError, match="already registered"):
            register_scheme(Impostor())


class TestDefaults:
    def test_default_is_rsa(self, monkeypatch):
        monkeypatch.delenv(SCHEME_ENV_VAR, raising=False)
        assert default_scheme_name() == DEFAULT_SCHEME == "rsa"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(SCHEME_ENV_VAR, "ed25519")
        assert default_scheme_name() == "ed25519"
        assert generate_keypair(seed=3).public.scheme_name == "ed25519"

    def test_explicit_scheme_beats_env(self, monkeypatch):
        monkeypatch.setenv(SCHEME_ENV_VAR, "ed25519")
        assert generate_keypair(512, seed=3, scheme="rsa").public.scheme_name == "rsa"


class TestConfig:
    def test_config_follows_env(self, monkeypatch):
        monkeypatch.setenv(SCHEME_ENV_VAR, "ed25519")
        assert AdlpConfig().signature_scheme == "ed25519"

    def test_explicit_config_scheme(self):
        assert AdlpConfig(signature_scheme="ed25519").signature_scheme == "ed25519"

    def test_unknown_scheme_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown signature scheme"):
            AdlpConfig(signature_scheme="rot13")


class TestTaggedKeys:
    @pytest.mark.parametrize("scheme", ["rsa", "ed25519"])
    def test_roundtrip(self, scheme, deterministic_seed):
        pair = generate_keypair(512, seed=deterministic_seed, scheme=scheme)
        raw = pair.public.to_bytes()
        assert raw[0] == 0xA5
        restored = PublicKey.from_bytes(raw)
        assert restored == pair.public
        assert restored.scheme_name == scheme

    def test_legacy_untagged_rsa_still_decodes(self, rsa_keypool):
        public = rsa_keypool[0].public
        # the pre-scheme encoding: payload only, no magic/tag prefix
        legacy = get_scheme("rsa").public_to_bytes(public.numbers)
        assert legacy[0] != 0xA5
        restored = PublicKey.from_bytes(legacy)
        assert restored == public
        assert restored.scheme_name == "rsa"

    def test_cross_scheme_signatures_do_not_verify(self, deterministic_seed):
        rsa_pair = generate_keypair(512, seed=deterministic_seed, scheme="rsa")
        ed_pair = generate_keypair(seed=deterministic_seed, scheme="ed25519")
        digest = sha256(b"payload")
        rsa_sig = rsa_pair.private.sign_digest(digest)
        ed_sig = ed_pair.private.sign_digest(digest)
        assert not rsa_pair.public.verify_digest(digest, ed_sig)
        assert not ed_pair.public.verify_digest(digest, rsa_sig)

    def test_ed25519_sizes(self, deterministic_seed):
        pair = generate_keypair(seed=deterministic_seed, scheme="ed25519")
        assert pair.public.signature_size == 64
        assert len(pair.public.to_bytes()) == 34  # magic + tag + 32-byte point
        assert len(pair.private.sign(b"m")) == 64

    def test_ed25519_rejects_tiny_bits(self):
        with pytest.raises(KeyGenerationError):
            generate_keypair(64, seed=1, scheme="ed25519")

    def test_private_repr_hides_secret(self, deterministic_seed):
        pair = generate_keypair(seed=deterministic_seed, scheme="ed25519")
        assert pair.private.numbers.secret.hex() not in repr(pair.private)

    def test_fingerprints_differ_across_schemes(self, deterministic_seed):
        rsa_fp = generate_keypair(
            512, seed=deterministic_seed, scheme="rsa"
        ).public.fingerprint()
        ed_fp = generate_keypair(
            seed=deterministic_seed, scheme="ed25519"
        ).public.fingerprint()
        assert rsa_fp != ed_fp
