"""RFC 8032 known-answer tests for the pure-Python Ed25519 backend.

The vectors are copied verbatim from RFC 8032, Section 7.1 (TEST 1-3 and
TEST SHA(abc)).  Pinning full sign/verify outputs means the backend can
never silently drift -- any change to the field arithmetic, the clamping,
the point compression, or the challenge hash flips at least one of these.
"""

import hashlib

import pytest

from repro.crypto import ed25519
from repro.crypto.keys import PublicKey, generate_keypair
from repro.crypto.schemes import KEY_TAG_MAGIC, get_scheme

#: (name, secret, public, message, signature) -- all hex but the message
VECTORS = [
    (
        "TEST 1",
        "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
        b"",
        "e5564300c360ac729086e2cc806e828a"
        "84877f1eb8e5d974d873e06522490155"
        "5fb8821590a33bacc61e39701cf9b46b"
        "d25bf5f0595bbe24655141438e7a100b",
    ),
    (
        "TEST 2",
        "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
        b"\x72",
        "92a009a9f0d4cab8720e820b5f642540"
        "a2b27b5416503f8fb3762223ebdb69da"
        "085ac1e43e15996e458f3613d0f11d8c"
        "387b2eaeb4302aeeb00d291612bb0c00",
    ),
    (
        "TEST 3",
        "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
        b"\xaf\x82",
        "6291d657deec24024827e69c3abe01a3"
        "0ce548a284743a445e3680d7db5ac3ac"
        "18ff9b538d16f290ae67f760984dc659"
        "4a7c15e9716ed28dc027beceea1ec40a",
    ),
    (
        "TEST SHA(abc)",
        "833fe62409237b9d62ec77587520911e9a759cec1d19755b7da901b96dca3d42",
        "ec172b93ad5e563bf4932c70e1245034c35467ef2efd4d64ebf819683467e2bf",
        hashlib.sha512(b"abc").digest(),
        "dc2a4459e7369633a52b1bf277839a00"
        "201009a3efbf3ecb69bea2186c26b589"
        "09351fc9ac90b3ecfdfbc7c66431e030"
        "3dca179c138ac17ad9bef1177331a704",
    ),
]


@pytest.mark.parametrize(
    "name,secret,public,message,signature",
    VECTORS,
    ids=[v[0] for v in VECTORS],
)
class TestRfc8032Vectors:
    def test_public_key_derivation(self, name, secret, public, message, signature):
        assert ed25519.public_from_secret(bytes.fromhex(secret)).hex() == public

    def test_signature(self, name, secret, public, message, signature):
        assert ed25519.sign(bytes.fromhex(secret), message).hex() == signature

    def test_signature_with_cached_public(
        self, name, secret, public, message, signature
    ):
        sig = ed25519.sign(
            bytes.fromhex(secret), message, public=bytes.fromhex(public)
        )
        assert sig.hex() == signature

    def test_verifies(self, name, secret, public, message, signature):
        assert ed25519.verify(
            bytes.fromhex(public), message, bytes.fromhex(signature)
        )

    def test_flipped_message_fails(self, name, secret, public, message, signature):
        assert not ed25519.verify(
            bytes.fromhex(public), message + b"x", bytes.fromhex(signature)
        )

    def test_flipped_signature_fails(
        self, name, secret, public, message, signature
    ):
        sig = bytearray(bytes.fromhex(signature))
        sig[0] ^= 0x01
        assert not ed25519.verify(bytes.fromhex(public), message, bytes(sig))

    def test_wrong_public_fails(self, name, secret, public, message, signature):
        other = VECTORS[0][2] if public != VECTORS[0][2] else VECTORS[1][2]
        assert not ed25519.verify(
            bytes.fromhex(other), message, bytes.fromhex(signature)
        )


class TestMalleabilityAndRanges:
    def test_noncanonical_s_rejected(self):
        secret = bytes.fromhex(VECTORS[0][1])
        public = bytes.fromhex(VECTORS[0][2])
        sig = ed25519.sign(secret, b"msg")
        assert ed25519.verify(public, b"msg", sig)
        # add the group order to S: same point equation, non-canonical form
        s = int.from_bytes(sig[32:], "little") + ed25519.L
        forged = sig[:32] + s.to_bytes(32, "little")
        assert not ed25519.verify(public, b"msg", forged)

    def test_wrong_lengths_fail_not_raise(self):
        public = bytes.fromhex(VECTORS[0][2])
        assert not ed25519.verify(public, b"m", b"")
        assert not ed25519.verify(public, b"m", b"\x00" * 63)
        assert not ed25519.verify(public[:-1], b"m", b"\x00" * 64)
        assert not ed25519.verify(b"", b"m", b"\x00" * 64)

    def test_non_point_public_fails(self):
        # y = 2 is not on the curve (2^2 has no matching x); the all-0x02
        # first byte makes y small and definitely off-curve
        bogus = (2).to_bytes(32, "little")
        assert ed25519.point_decompress(bogus) is None
        assert not ed25519.verify(bogus, b"m", b"\x00" * 64)

    def test_noncanonical_y_rejected(self):
        # y = p is a non-canonical encoding of y = 0
        assert ed25519.point_decompress(ed25519.P.to_bytes(32, "little")) is None

    def test_negative_zero_rejected(self):
        # x = 0 with sign bit set ("-0") must not decode
        one = (1 | (1 << 255)).to_bytes(32, "little")  # y=1 -> x=0, sign=1
        assert ed25519.point_decompress(one) is None


class TestSerializationGoldens:
    """Golden values for the scheme-tagged wire encoding."""

    def test_tag_constants(self):
        assert KEY_TAG_MAGIC == 0xA5
        assert get_scheme("rsa").tag == 0x01
        assert get_scheme("ed25519").tag == 0x02

    def test_tagged_ed25519_encoding(self):
        public = VECTORS[0][2]
        key = PublicKey(
            get_scheme("ed25519").public_from_bytes(bytes.fromhex(public)),
            "ed25519",
        )
        assert key.to_bytes().hex() == "a502" + public
        assert PublicKey.from_bytes(key.to_bytes()) == key

    def test_seeded_keypair_golden(self):
        # seeded generation is part of the test contract: a drift here
        # invalidates every cached fixture, so pin it
        pair = generate_keypair(seed=7, scheme="ed25519")
        assert pair.public.numbers.point == ed25519.public_from_secret(
            ed25519.generate_secret(7)
        )
        again = generate_keypair(seed=7, scheme="ed25519")
        assert pair.public == again.public

    def test_describe(self):
        pair = generate_keypair(seed=7, scheme="ed25519")
        assert pair.public.describe() == "ed25519"
        assert pair.public.signature_size == ed25519.SIGNATURE_SIZE
