"""Negative-path fuzzing of the scheme-tagged wire formats.

Malformed key and signature bytes are *expected* inputs for an
accountability system -- an adversary controls what it registers and
ships.  The contract under fuzz: key decoding raises exactly
:class:`~repro.errors.DecodingError` (never anything else), signature
verification returns ``False`` (never raises), a malformed registration
RPC gets an error response and leaves the server thread alive, and STH
verification is total.
"""

import random

import pytest

from repro.core import LogServer, LogServerEndpoint, RemoteLogger
from repro.crypto import ed25519
from repro.crypto.hashing import sha256
from repro.crypto.keys import PublicKey, generate_keypair
from repro.crypto.schemes import KEY_TAG_MAGIC, get_scheme
from repro.errors import DecodingError, LoggingError
from repro.gossip.sth import issue_sth

FUZZ_ROUNDS = 150


def _decode_is_total(blob: bytes) -> None:
    """from_bytes either returns a PublicKey or raises DecodingError."""
    try:
        key = PublicKey.from_bytes(blob)
    except DecodingError:
        return
    assert isinstance(key, PublicKey)
    # anything that decodes must re-encode and still verify nothing bogus
    assert not key.verify_digest(sha256(b"m"), b"\x00" * key.signature_size)


class TestKeyDecodingFuzz:
    def test_unknown_tag(self):
        with pytest.raises(DecodingError, match="unknown signature scheme tag"):
            PublicKey.from_bytes(bytes((KEY_TAG_MAGIC, 0x7F)) + b"\x00" * 32)

    def test_magic_alone(self):
        with pytest.raises(DecodingError):
            PublicKey.from_bytes(bytes((KEY_TAG_MAGIC,)))

    @pytest.mark.parametrize("scheme", ["rsa", "ed25519"])
    def test_every_truncation_rejected(self, scheme, deterministic_seed):
        pair = generate_keypair(512, seed=deterministic_seed, scheme=scheme)
        raw = pair.public.to_bytes()
        for cut in range(len(raw)):
            with pytest.raises(DecodingError):
                PublicKey.from_bytes(raw[:cut])

    @pytest.mark.parametrize("scheme", ["rsa", "ed25519"])
    def test_trailing_garbage_rejected(self, scheme, deterministic_seed):
        pair = generate_keypair(512, seed=deterministic_seed, scheme=scheme)
        with pytest.raises(DecodingError):
            PublicKey.from_bytes(pair.public.to_bytes() + b"\x01")

    def test_ed25519_wrong_payload_length(self):
        for length in (0, 1, 31, 33, 64):
            with pytest.raises(DecodingError):
                PublicKey.from_bytes(
                    bytes((KEY_TAG_MAGIC, 0x02)) + b"\x02" * length
                )

    def test_ed25519_non_canonical_points(self):
        tag = bytes((KEY_TAG_MAGIC, 0x02))
        off_curve = (2).to_bytes(32, "little")  # y=2 is not on the curve
        y_too_big = ed25519.P.to_bytes(32, "little")  # y >= p
        minus_zero = (1 | (1 << 255)).to_bytes(32, "little")  # x=0, sign=1
        for payload in (off_curve, y_too_big, minus_zero):
            with pytest.raises(DecodingError):
                PublicKey.from_bytes(tag + payload)

    def test_random_blobs_are_total(self, deterministic_seed):
        rng = random.Random(deterministic_seed)
        for _ in range(FUZZ_ROUNDS):
            _decode_is_total(bytes(rng.getrandbits(8) for _ in range(rng.randrange(0, 80))))

    @pytest.mark.parametrize("scheme", ["rsa", "ed25519"])
    def test_mutated_valid_keys_are_total(self, scheme, deterministic_seed):
        rng = random.Random(deterministic_seed)
        raw = generate_keypair(
            512, seed=deterministic_seed, scheme=scheme
        ).public.to_bytes()
        for _ in range(FUZZ_ROUNDS):
            blob = bytearray(raw)
            for _ in range(rng.randrange(1, 4)):
                blob[rng.randrange(len(blob))] ^= 1 << rng.randrange(8)
            _decode_is_total(bytes(blob))


class TestSignatureFuzz:
    @pytest.mark.parametrize("scheme", ["rsa", "ed25519"])
    def test_garbage_signatures_verify_false(self, scheme, deterministic_seed):
        rng = random.Random(deterministic_seed)
        pair = generate_keypair(512, seed=deterministic_seed, scheme=scheme)
        digest = sha256(b"payload")
        for _ in range(FUZZ_ROUNDS):
            blob = bytes(
                rng.getrandbits(8) for _ in range(rng.randrange(0, 150))
            )
            assert pair.public.verify_digest(digest, blob) is False

    @pytest.mark.parametrize("scheme", ["rsa", "ed25519"])
    def test_bitflipped_signatures_verify_false(self, scheme, deterministic_seed):
        rng = random.Random(deterministic_seed)
        pair = generate_keypair(512, seed=deterministic_seed, scheme=scheme)
        digest = sha256(b"payload")
        good = pair.private.sign_digest(digest)
        assert pair.public.verify_digest(digest, good)
        for _ in range(60):
            blob = bytearray(good)
            blob[rng.randrange(len(blob))] ^= 1 << rng.randrange(8)
            assert pair.public.verify_digest(digest, bytes(blob)) is False


class TestRegistrationRpcFuzz:
    """A hostile registration must not crash the server thread."""

    @pytest.fixture()
    def endpoint(self):
        server = LogServer()
        endpoint = LogServerEndpoint(server)
        client = RemoteLogger(endpoint.address)
        yield server, client
        client.close()
        endpoint.close()

    def test_malformed_keys_rejected_server_survives(
        self, endpoint, deterministic_seed, keypool
    ):
        server, client = endpoint
        rng = random.Random(deterministic_seed)
        bad_blobs = [
            b"",
            bytes((KEY_TAG_MAGIC,)),
            bytes((KEY_TAG_MAGIC, 0x7F)) + b"\x00" * 32,
            bytes((KEY_TAG_MAGIC, 0x02)) + b"\x02" * 31,
            bytes((KEY_TAG_MAGIC, 0x02)) + (2).to_bytes(32, "little"),
        ] + [
            bytes(rng.getrandbits(8) for _ in range(rng.randrange(1, 60)))
            for _ in range(20)
        ]
        rejected = 0
        for blob in bad_blobs:
            try:
                client.register_key("/mallory", blob)
            except LoggingError:
                rejected += 1
        assert len(server.keystore) == 0
        assert rejected >= len(bad_blobs) - 1  # a random blob may parse as RSA

        # the server thread survived all of it: real work still lands
        client.register_key("/honest", keypool[0].public)
        assert server.keystore.find("/honest") == keypool[0].public
        assert client.health().entries == 0

    @pytest.mark.parametrize("scheme", ["rsa", "ed25519"])
    def test_tagged_keys_roundtrip_the_rpc(self, endpoint, scheme, deterministic_seed):
        server, client = endpoint
        pair = generate_keypair(512, seed=deterministic_seed, scheme=scheme)
        client.register_key("/node", pair.public)
        stored = server.keystore.get("/node")
        assert stored == pair.public
        assert stored.scheme_name == scheme


class TestSthFuzz:
    @pytest.mark.parametrize("scheme", ["rsa", "ed25519"])
    def test_verify_is_total(self, scheme, deterministic_seed):
        rng = random.Random(deterministic_seed)
        pair = generate_keypair(512, seed=deterministic_seed, scheme=scheme)
        sth = issue_sth(
            pair.private, "log-1", 7, sha256(b"head"), sha256(b"root"),
            timestamp=1234.5,
        )
        assert sth.verify(pair.public)
        for _ in range(FUZZ_ROUNDS):
            sth.signature = bytes(
                rng.getrandbits(8) for _ in range(rng.randrange(0, 150))
            )
            assert sth.verify(pair.public) is False

    def test_sth_signed_by_other_scheme_fails_cleanly(self, deterministic_seed):
        rsa_pair = generate_keypair(512, seed=deterministic_seed, scheme="rsa")
        ed_pair = generate_keypair(seed=deterministic_seed, scheme="ed25519")
        sth = issue_sth(
            ed_pair.private, "log-1", 7, sha256(b"head"), sha256(b"root"),
            timestamp=1234.5,
        )
        assert sth.verify(ed_pair.public)
        assert sth.verify(rsa_pair.public) is False
