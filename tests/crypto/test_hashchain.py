import pytest
from hypothesis import given, strategies as st

from repro.crypto.hashchain import GENESIS, HashChain, chain_digest, verify_chain
from repro.errors import LogIntegrityError


class TestHashChain:
    def test_empty_chain_verifies(self):
        chain = HashChain()
        chain.verify()
        assert chain.head == GENESIS
        assert len(chain) == 0

    def test_append_returns_indexed_entries(self):
        chain = HashChain()
        e0 = chain.append(b"first")
        e1 = chain.append(b"second")
        assert (e0.index, e1.index) == (0, 1)
        assert chain[1].payload == b"second"

    def test_head_changes_per_append(self):
        chain = HashChain()
        heads = {chain.head}
        for i in range(5):
            chain.append(f"r{i}".encode())
            heads.add(chain.head)
        assert len(heads) == 6

    def test_verify_detects_payload_tamper(self):
        chain = HashChain()
        for i in range(5):
            chain.append(f"record {i}".encode())
        old = chain[2]
        chain._entries[2] = type(old)(index=2, payload=b"tampered", digest=old.digest)
        with pytest.raises(LogIntegrityError, match="entry 2"):
            chain.verify()

    def test_verify_detects_reordering(self):
        chain = HashChain()
        for i in range(4):
            chain.append(f"record {i}".encode())
        chain._entries[1], chain._entries[2] = chain._entries[2], chain._entries[1]
        with pytest.raises(LogIntegrityError):
            chain.verify()

    def test_verify_against_commitment(self):
        chain = HashChain()
        chain.append(b"x")
        head = chain.head
        chain.append(b"y")
        with pytest.raises(LogIntegrityError):
            chain.verify_against(head)
        chain.verify_against(chain.head)

    def test_payloads_in_order(self):
        chain = HashChain()
        chain.append(b"a")
        chain.append(b"b")
        assert chain.payloads() == [b"a", b"b"]

    def test_identical_payloads_get_distinct_digests(self):
        chain = HashChain()
        e0 = chain.append(b"same")
        e1 = chain.append(b"same")
        assert e0.digest != e1.digest


class TestVerifyChain:
    def test_valid_sequence(self):
        digests = []
        prev = GENESIS
        for payload in [b"1", b"2", b"3"]:
            prev = chain_digest(prev, payload)
            digests.append((payload, prev))
        assert verify_chain(digests) == (True, None)

    def test_reports_first_bad_index(self):
        records = []
        prev = GENESIS
        for payload in [b"1", b"2", b"3"]:
            prev = chain_digest(prev, payload)
            records.append([payload, prev])
        records[1][0] = b"evil"
        ok, index = verify_chain([tuple(r) for r in records])
        assert not ok and index == 1

    @given(st.lists(st.binary(max_size=32), max_size=20))
    def test_honest_chains_always_verify(self, payloads):
        chain = HashChain()
        for payload in payloads:
            chain.append(payload)
        chain.verify()
