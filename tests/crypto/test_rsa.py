import random

import pytest

from repro.crypto.rsa import (
    PUBLIC_EXPONENT,
    generate_rsa_numbers,
    rsa_private_op,
    rsa_public_op,
)
from repro.errors import KeyGenerationError, SignatureError


@pytest.fixture(scope="module")
def numbers():
    return generate_rsa_numbers(512, random.Random(11))


class TestKeyGeneration:
    def test_modulus_bit_length(self, numbers):
        assert numbers.n.bit_length() == 512

    def test_modulus_is_pq(self, numbers):
        assert numbers.p * numbers.q == numbers.n

    def test_public_exponent(self, numbers):
        assert numbers.e == PUBLIC_EXPONENT

    def test_private_exponent_inverts_e(self, numbers):
        phi = (numbers.p - 1) * (numbers.q - 1)
        assert (numbers.d * numbers.e) % phi == 1

    def test_crt_values(self, numbers):
        assert numbers.dp == numbers.d % (numbers.p - 1)
        assert numbers.dq == numbers.d % (numbers.q - 1)
        assert (numbers.qinv * numbers.q) % numbers.p == 1
        assert numbers.p > numbers.q

    def test_paper_key_size_1024(self):
        numbers = generate_rsa_numbers(1024, random.Random(3))
        assert numbers.n.bit_length() == 1024
        assert numbers.byte_size == 128  # the paper's 128-byte signatures

    def test_odd_bits_rejected(self):
        with pytest.raises(KeyGenerationError):
            generate_rsa_numbers(511)

    def test_tiny_keys_rejected(self):
        with pytest.raises(KeyGenerationError):
            generate_rsa_numbers(64)

    def test_deterministic_with_seed(self):
        a = generate_rsa_numbers(256, random.Random(9))
        b = generate_rsa_numbers(256, random.Random(9))
        assert a == b


class TestRawOps:
    def test_private_inverts_public(self, numbers):
        m = 0x123456789ABCDEF
        c = rsa_public_op(numbers.public_numbers, m)
        assert rsa_private_op(numbers, c) == m

    def test_public_inverts_private(self, numbers):
        s = rsa_private_op(numbers, 987654321)
        assert rsa_public_op(numbers.public_numbers, s) == 987654321

    def test_crt_matches_plain_pow(self, numbers):
        c = 0xDEADBEEF
        assert rsa_private_op(numbers, c) == pow(c, numbers.d, numbers.n)

    def test_out_of_range_rejected(self, numbers):
        with pytest.raises(SignatureError):
            rsa_public_op(numbers.public_numbers, numbers.n)
        with pytest.raises(SignatureError):
            rsa_private_op(numbers, -1)
