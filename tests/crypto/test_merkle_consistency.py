"""Property tests for historical Merkle proofs and RFC 6962 consistency.

The gossip layer's split-view detection rests on three algebraic facts:

- ``root_at(n)`` equals the root of a fresh tree over the first ``n``
  leaves (historical roots are well-defined);
- an inclusion proof at any historical size verifies against that size's
  root, and at no other;
- a consistency proof links any two historical sizes of the same log and
  *only* those -- a truncate-and-diverge rewrite breaks it.

Randomized sizes are drawn from the session's ``PYTEST_SEED``-derived
PRNG (reproduce any failure with ``PYTEST_SEED=<n> pytest ...``);
hypothesis covers the payload-shape space on top.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.merkle import (
    EMPTY_ROOT,
    MerkleConsistencyProof,
    MerkleTree,
    leaf_hash,
)
from repro.errors import ProofError


def _payloads(n, tag=b"r"):
    return [b"%s-%06d" % (tag, i) for i in range(n)]


class TestHistoricalRoots:
    def test_empty_tree(self):
        tree = MerkleTree()
        assert tree.root() == EMPTY_ROOT
        assert tree.root_at(0) == EMPTY_ROOT

    def test_single_leaf(self):
        tree = MerkleTree([b"only"])
        assert tree.root_at(1) == leaf_hash(b"only")
        assert tree.root_at(0) == EMPTY_ROOT

    def test_root_at_matches_prefix_tree(self, rng):
        n = rng.randrange(2, 80)
        payloads = _payloads(n)
        tree = MerkleTree(payloads)
        for size in sorted(rng.sample(range(n + 1), min(12, n + 1))):
            assert tree.root_at(size) == MerkleTree(payloads[:size]).root(), size

    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 32])
    def test_power_of_two_boundaries(self, n):
        payloads = _payloads(n + 1)
        tree = MerkleTree(payloads)
        # n is a complete tree; n+1 hangs one extra leaf off it.
        assert tree.root_at(n) == MerkleTree(payloads[:n]).root()
        assert tree.root_at(n + 1) == tree.root()

    def test_root_at_out_of_range(self):
        tree = MerkleTree(_payloads(3))
        with pytest.raises(ProofError):
            tree.root_at(4)
        with pytest.raises(ProofError):
            tree.root_at(-1)


class TestHistoricalInclusion:
    def test_inclusion_at_every_historical_size(self, rng):
        n = rng.randrange(2, 48)
        payloads = _payloads(n)
        tree = MerkleTree(payloads)
        for _ in range(10):
            size = rng.randrange(1, n + 1)
            index = rng.randrange(size)
            proof = tree.prove(index, tree_size=size)
            assert proof.verify(payloads[index], tree.root_at(size))

    def test_historical_proof_fails_against_other_size(self, rng):
        n = rng.randrange(3, 40)
        payloads = _payloads(n)
        tree = MerkleTree(payloads)
        size = rng.randrange(2, n + 1)
        proof = tree.prove(0, tree_size=size)
        other = rng.choice([s for s in range(1, n + 1) if s != size])
        if tree.root_at(other) != tree.root_at(size):
            assert not proof.verify(payloads[0], tree.root_at(other))

    def test_index_beyond_historical_size_refused(self):
        tree = MerkleTree(_payloads(8))
        with pytest.raises(ProofError):
            tree.prove(5, tree_size=5)
        with pytest.raises(ProofError):
            tree.prove(-1)
        with pytest.raises(ProofError):
            tree.prove(8)

    def test_prove_out_of_range_is_still_an_index_error(self):
        # ProofError subclasses IndexError: pre-gossip callers that caught
        # IndexError keep working.
        with pytest.raises(IndexError):
            MerkleTree([b"a"]).prove(1)


class TestConsistencyProofs:
    def test_every_size_pair_links(self, rng):
        n = rng.randrange(2, 56)
        tree = MerkleTree(_payloads(n))
        for _ in range(14):
            old = rng.randrange(0, n + 1)
            new = rng.randrange(old, n + 1)
            proof = tree.prove_consistency(old, new)
            assert proof.verify(tree.root_at(old), tree.root_at(new)), (old, new)

    def test_empty_and_single_leaf_edges(self):
        tree = MerkleTree(_payloads(5))
        assert tree.prove_consistency(0, 5).verify(EMPTY_ROOT, tree.root())
        p = tree.prove_consistency(1, 5)
        assert p.verify(tree.root_at(1), tree.root())
        same = tree.prove_consistency(5, 5)
        assert same.verify(tree.root(), tree.root())
        assert not same.verify(tree.root(), EMPTY_ROOT)

    @pytest.mark.parametrize("old", [1, 2, 4, 8, 16])
    def test_power_of_two_old_sizes(self, old):
        # A complete old tree is its own single subproof node.
        tree = MerkleTree(_payloads(17))
        proof = tree.prove_consistency(old, 17)
        assert proof.verify(tree.root_at(old), tree.root())

    def test_swapped_roots_fail(self, rng):
        n = rng.randrange(3, 40)
        tree = MerkleTree(_payloads(n))
        old = rng.randrange(1, n)
        proof = tree.prove_consistency(old, n)
        if tree.root_at(old) != tree.root():
            assert not proof.verify(tree.root(), tree.root_at(old))

    def test_forked_log_fails_consistency(self, rng):
        """The split-view core: rewrite one record past a common prefix
        and the honest old root no longer links to the forked new root."""
        n = rng.randrange(4, 40)
        payloads = _payloads(n)
        fork_at = rng.randrange(1, n)
        forked = list(payloads)
        forked[fork_at] = b"tampered"
        honest, lie = MerkleTree(payloads), MerkleTree(forked)
        for old in range(fork_at + 1, n + 1):
            proof = lie.prove_consistency(old, n)
            assert not proof.verify(honest.root_at(old), lie.root()), old

    def test_truncate_round_trip(self, rng):
        """truncate() rewinds to an exact historical state: roots, proofs
        and consistency all match the never-extended tree."""
        n = rng.randrange(3, 40)
        payloads = _payloads(n)
        tree = MerkleTree(payloads)
        size = rng.randrange(1, n)
        tree.truncate(size)
        assert len(tree) == size
        assert tree.root() == MerkleTree(payloads[:size]).root()
        # Regrow with the same suffix: full history is restored.
        for payload in payloads[size:]:
            tree.append(payload)
        assert tree.root() == MerkleTree(payloads).root()
        proof = tree.prove_consistency(size, n)
        assert proof.verify(tree.root_at(size), tree.root())

    def test_out_of_range_pairs_refused(self):
        tree = MerkleTree(_payloads(6))
        with pytest.raises(ProofError):
            tree.prove_consistency(4, 3)  # old > new
        with pytest.raises(ProofError):
            tree.prove_consistency(2, 7)  # new beyond the tree
        with pytest.raises(ProofError):
            tree.prove_consistency(-1, 3)

    @given(
        st.lists(st.binary(max_size=12), min_size=0, max_size=40),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_consistency_property(self, payloads, data):
        tree = MerkleTree(payloads)
        n = len(payloads)
        old = data.draw(st.integers(min_value=0, max_value=n))
        new = data.draw(st.integers(min_value=old, max_value=n))
        proof = tree.prove_consistency(old, new)
        assert proof.verify(tree.root_at(old), tree.root_at(new))

    def test_frontier_agrees_with_historical_roots(self, rng):
        """The incremental frontier (what LogServer signs from) equals
        the batch tree's root at every prefix."""
        n = rng.randrange(1, 48)
        payloads = _payloads(n)
        tree = MerkleTree(payloads)
        frontier = MerkleTree().frontier()
        for size, payload in enumerate(payloads, start=1):
            frontier.append(payload)
            assert frontier.root() == tree.root_at(size), size


class TestConsistencyProofWireShape:
    def test_proof_carries_its_claim(self):
        tree = MerkleTree(_payloads(9))
        proof = tree.prove_consistency(3, 9)
        assert isinstance(proof, MerkleConsistencyProof)
        assert proof.old_size == 3 and proof.new_size == 9
        assert all(isinstance(h, bytes) and len(h) == 32 for h in proof.path)
