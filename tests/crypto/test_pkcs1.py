import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import sha256
from repro.crypto.pkcs1 import (
    _emsa_pkcs1_v15_encode,
    sign,
    sign_digest,
    verify,
    verify_digest,
)
from repro.errors import SignatureError


@pytest.fixture(scope="module")
def key(rsa_keypool):
    return rsa_keypool[0]


class TestEncoding:
    def test_structure(self):
        digest = sha256(b"x")
        em = _emsa_pkcs1_v15_encode(digest, 128)
        assert len(em) == 128
        assert em[0:2] == b"\x00\x01"
        assert em.endswith(digest)
        # padding is all 0xff up to the 0x00 separator
        sep = em.index(b"\x00", 2)
        assert set(em[2:sep]) == {0xFF}

    def test_too_short_modulus_rejected(self):
        with pytest.raises(SignatureError):
            _emsa_pkcs1_v15_encode(sha256(b"x"), 48)

    def test_wrong_digest_size_rejected(self):
        with pytest.raises(SignatureError):
            _emsa_pkcs1_v15_encode(b"short", 128)


class TestSignVerify:
    def test_roundtrip(self, key):
        sig = sign(key.private.numbers, b"hello")
        assert verify(key.public.numbers, b"hello", sig)

    def test_signature_length_is_modulus_size(self, key):
        sig = sign(key.private.numbers, b"hello")
        assert len(sig) == key.public.numbers.byte_size

    def test_wrong_message_fails(self, key):
        sig = sign(key.private.numbers, b"hello")
        assert not verify(key.public.numbers, b"hellp", sig)

    def test_wrong_key_fails(self, key, rsa_keypool):
        sig = sign(key.private.numbers, b"hello")
        assert not verify(rsa_keypool[1].public.numbers, b"hello", sig)

    def test_bitflipped_signature_fails(self, key):
        sig = bytearray(sign(key.private.numbers, b"hello"))
        sig[10] ^= 0x01
        assert not verify(key.public.numbers, b"hello", bytes(sig))

    def test_wrong_length_signature_fails_not_raises(self, key):
        assert not verify(key.public.numbers, b"hello", b"short")
        assert not verify(key.public.numbers, b"hello", b"\x00" * 200)

    def test_all_ff_signature_fails(self, key):
        k = key.public.numbers.byte_size
        assert not verify(key.public.numbers, b"hello", b"\xff" * k)

    def test_digest_api_consistent_with_message_api(self, key):
        digest = sha256(b"payload")
        sig = sign_digest(key.private.numbers, digest)
        assert verify_digest(key.public.numbers, digest, sig)
        assert verify(key.public.numbers, b"payload", sig)

    def test_deterministic(self, key):
        # PKCS#1 v1.5 signing is deterministic (unlike PSS).
        assert sign(key.private.numbers, b"m") == sign(key.private.numbers, b"m")

    def test_1024_bit_signature_is_128_bytes(self, keypair_1024):
        sig = sign(keypair_1024.private.numbers, b"m")
        assert len(sig) == 128  # the paper's signed-hash size

    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=128))
    def test_roundtrip_property(self, key, message):
        sig = sign(key.private.numbers, message)
        assert verify(key.public.numbers, message, sig)

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=64, max_size=64))
    def test_random_blobs_do_not_verify(self, key, blob):
        assert not verify(key.public.numbers, b"message", blob)
