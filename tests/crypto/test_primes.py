import random

import pytest

from repro.crypto.primes import generate_prime, is_probable_prime

KNOWN_PRIMES = [2, 3, 5, 7, 97, 101, 7919, 104729, (1 << 61) - 1]
KNOWN_COMPOSITES = [0, 1, 4, 100, 7917, 104730, (1 << 61) - 3]
# Carmichael numbers fool Fermat tests; Miller-Rabin must reject them.
CARMICHAEL = [561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265]


class TestIsProbablePrime:
    @pytest.mark.parametrize("n", KNOWN_PRIMES)
    def test_accepts_primes(self, n):
        assert is_probable_prime(n)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_rejects_composites(self, n):
        assert not is_probable_prime(n)

    @pytest.mark.parametrize("n", CARMICHAEL)
    def test_rejects_carmichael_numbers(self, n):
        assert not is_probable_prime(n)

    def test_negative_not_prime(self):
        assert not is_probable_prime(-7)

    def test_agrees_with_sieve_below_10000(self):
        limit = 10000
        sieve = [True] * limit
        sieve[0] = sieve[1] = False
        for i in range(2, int(limit**0.5) + 1):
            if sieve[i]:
                for j in range(i * i, limit, i):
                    sieve[j] = False
        for n in range(limit):
            assert is_probable_prime(n) == sieve[n], n


class TestGeneratePrime:
    def test_exact_bit_length(self):
        rng = random.Random(7)
        for bits in (64, 128, 256):
            p = generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p, rng)

    def test_is_odd(self):
        p = generate_prime(64, random.Random(1))
        assert p % 2 == 1

    def test_top_two_bits_set(self):
        p = generate_prime(64, random.Random(2))
        assert p >> 62 == 0b11

    def test_deterministic_with_seed(self):
        assert generate_prime(64, random.Random(5)) == generate_prime(
            64, random.Random(5)
        )

    def test_rejects_tiny_sizes(self):
        with pytest.raises(ValueError):
            generate_prime(4)
