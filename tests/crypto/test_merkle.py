import pytest
from hypothesis import given, strategies as st

from repro.crypto.merkle import (
    EMPTY_ROOT,
    MerkleProof,
    MerkleTree,
    leaf_hash,
    node_hash,
)


class TestMerkleTree:
    def test_empty_root(self):
        assert MerkleTree().root() == EMPTY_ROOT

    def test_single_leaf_root_is_leaf_hash(self):
        tree = MerkleTree([b"only"])
        assert tree.root() == leaf_hash(b"only")

    def test_two_leaves(self):
        tree = MerkleTree([b"a", b"b"])
        assert tree.root() == node_hash(leaf_hash(b"a"), leaf_hash(b"b"))

    def test_append_changes_root(self):
        tree = MerkleTree([b"a"])
        r1 = tree.root()
        index = tree.append(b"b")
        assert index == 1
        assert tree.root() != r1

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 9, 16, 33])
    def test_proofs_verify_for_all_sizes(self, n):
        payloads = [f"record {i}".encode() for i in range(n)]
        tree = MerkleTree(payloads)
        root = tree.root()
        for i, payload in enumerate(payloads):
            assert tree.prove(i).verify(payload, root), (n, i)

    def test_proof_fails_for_wrong_payload(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        proof = tree.prove(1)
        assert not proof.verify(b"not-b", tree.root())

    def test_proof_fails_against_wrong_root(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        proof = tree.prove(0)
        other = MerkleTree([b"a", b"b", b"d"])
        assert not proof.verify(b"a", other.root())

    def test_prove_out_of_range(self):
        with pytest.raises(IndexError):
            MerkleTree([b"a"]).prove(1)

    def test_leaf_cannot_masquerade_as_node(self):
        # domain separation: h(leaf) uses a different prefix than h(node)
        left, right = leaf_hash(b"x"), leaf_hash(b"y")
        assert node_hash(left, right) != leaf_hash(left + right)

    @given(st.lists(st.binary(max_size=16), min_size=1, max_size=40))
    def test_all_proofs_verify_property(self, payloads):
        tree = MerkleTree(payloads)
        root = tree.root()
        for i, payload in enumerate(payloads):
            assert tree.prove(i).verify(payload, root)

    def test_order_matters(self):
        assert MerkleTree([b"a", b"b"]).root() != MerkleTree([b"b", b"a"]).root()
