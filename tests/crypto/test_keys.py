import pytest

from repro.crypto.hashing import sha256
from repro.crypto.keys import PublicKey, generate_keypair
from repro.errors import DecodingError


class TestGeneration:
    def test_seeded_generation_is_deterministic(self):
        a = generate_keypair(256, seed=5)
        b = generate_keypair(256, seed=5)
        assert a.public == b.public
        assert a.private == b.private

    def test_different_seeds_different_keys(self):
        assert generate_keypair(256, seed=1).public != generate_keypair(
            256, seed=2
        ).public

    def test_default_is_1024_bits(self, keypair_1024):
        assert keypair_1024.public.numbers.bits == 1024
        assert keypair_1024.public.signature_size == 128

    def test_public_matches_private(self, keypool):
        pair = keypool[0]
        assert pair.private.public_key == pair.public


class TestSigning:
    def test_sign_verify_via_key_objects(self, keypool):
        pair = keypool[0]
        digest = sha256(b"data")
        sig = pair.private.sign_digest(digest)
        assert pair.public.verify_digest(digest, sig)
        assert not pair.public.verify_digest(sha256(b"other"), sig)

    def test_message_level_api(self, keypool):
        pair = keypool[0]
        sig = pair.private.sign(b"data")
        assert pair.public.verify(b"data", sig)


class TestSerialization:
    def test_roundtrip(self, keypool):
        public = keypool[0].public
        assert PublicKey.from_bytes(public.to_bytes()) == public

    def test_roundtripped_key_verifies(self, keypool):
        pair = keypool[0]
        restored = PublicKey.from_bytes(pair.public.to_bytes())
        sig = pair.private.sign(b"m")
        assert restored.verify(b"m", sig)

    def test_truncated_rejected(self, keypool):
        raw = keypool[0].public.to_bytes()
        with pytest.raises(DecodingError):
            PublicKey.from_bytes(raw[:-3])

    def test_trailing_garbage_rejected(self, keypool):
        raw = keypool[0].public.to_bytes()
        with pytest.raises(DecodingError):
            PublicKey.from_bytes(raw + b"\x00")

    def test_empty_rejected(self):
        with pytest.raises(DecodingError):
            PublicKey.from_bytes(b"")

    def test_fingerprint_stable_and_short(self, keypool):
        fp = keypool[0].public.fingerprint()
        assert fp == keypool[0].public.fingerprint()
        assert len(fp) == 16
        assert fp != keypool[1].public.fingerprint()
