import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.crypto.hashing import HASH_LEN, data_digest, sha256, sha256_hex


class TestSha256:
    def test_known_vector(self):
        # NIST test vector for "abc"
        assert (
            sha256_hex(b"abc")
            == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_digest_length(self):
        assert len(sha256(b"anything")) == HASH_LEN

    def test_matches_hashlib(self):
        data = b"some payload" * 100
        assert sha256(data) == hashlib.sha256(data).digest()


class TestDataDigest:
    def test_depends_on_seq(self):
        assert data_digest(1, b"data") != data_digest(2, b"data")

    def test_depends_on_data(self):
        assert data_digest(1, b"data") != data_digest(1, b"datb")

    def test_fixed_width_seq_prevents_boundary_shifts(self):
        # If seq were var-width concatenated, these could collide.
        assert data_digest(0x01, b"\x02" + b"x") != data_digest(0x0102, b"x")

    def test_rejects_negative_seq(self):
        with pytest.raises(ValueError):
            data_digest(-1, b"x")

    def test_rejects_oversized_seq(self):
        with pytest.raises(ValueError):
            data_digest(1 << 64, b"x")

    def test_empty_data_allowed(self):
        assert len(data_digest(0, b"")) == HASH_LEN

    @given(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.binary(max_size=256),
    )
    def test_is_deterministic(self, seq, data):
        assert data_digest(seq, data) == data_digest(seq, data)

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_distinct_data_distinct_digest(self, a, b):
        if a != b:
            assert data_digest(5, a) != data_digest(5, b)
