"""MerkleFrontier: equivalence with the full tree, serialization, validation."""

from __future__ import annotations

import pytest

from repro.crypto.merkle import (
    EMPTY_ROOT,
    MerkleFrontier,
    MerkleTree,
    leaf_hash,
)
from repro.errors import LogIntegrityError


def payloads(n: int):
    return [b"record-%04d" % i for i in range(n)]


class TestTreeEquivalence:
    @pytest.mark.parametrize("n", list(range(0, 18)) + [31, 32, 33, 64, 65])
    def test_root_matches_full_tree_at_every_size(self, n):
        """The frontier must reproduce the promote-the-odd-node (RFC 6962)
        shape exactly -- including awkward sizes like 2^k +/- 1."""
        frontier = MerkleFrontier()
        for payload in payloads(n):
            frontier.append(payload)
        assert len(frontier) == n
        assert frontier.root() == MerkleTree(payloads(n)).root()

    def test_empty_root(self):
        assert MerkleFrontier().root() == EMPTY_ROOT

    def test_from_leaf_hashes(self):
        leaves = [leaf_hash(p) for p in payloads(13)]
        frontier = MerkleFrontier.from_leaf_hashes(leaves)
        assert frontier.root() == MerkleTree(payloads(13)).root()

    def test_continue_from_checkpointed_frontier(self):
        """The recovery pattern: restore the frontier at a checkpoint and
        append the replayed tail on top."""
        frontier = MerkleFrontier()
        for payload in payloads(10):
            frontier.append(payload)
        restored = MerkleFrontier.from_bytes(frontier.to_bytes())
        for payload in payloads(17)[10:]:
            restored.append(payload)
        assert restored.root() == MerkleTree(payloads(17)).root()


class TestSerialization:
    @pytest.mark.parametrize("n", [0, 1, 7, 16, 21])
    def test_round_trip(self, n):
        frontier = MerkleFrontier()
        for payload in payloads(n):
            frontier.append(payload)
        restored = MerkleFrontier.from_bytes(frontier.to_bytes())
        assert len(restored) == n
        assert restored.root() == frontier.root()

    def test_truncated_blob_is_rejected(self):
        frontier = MerkleFrontier()
        for payload in payloads(5):
            frontier.append(payload)
        with pytest.raises(LogIntegrityError):
            MerkleFrontier.from_bytes(frontier.to_bytes()[:-1])

    def test_non_power_of_two_peak_is_rejected(self):
        with pytest.raises(LogIntegrityError):
            MerkleFrontier([(3, b"\x00" * 32)])

    def test_non_shrinking_peaks_are_rejected(self):
        with pytest.raises(LogIntegrityError):
            MerkleFrontier([(2, b"\x00" * 32), (2, b"\x11" * 32)])

    def test_short_digest_is_rejected(self):
        with pytest.raises(LogIntegrityError):
            MerkleFrontier([(4, b"\x00" * 16)])


class TestCopy:
    def test_copy_is_independent(self):
        frontier = MerkleFrontier()
        for payload in payloads(6):
            frontier.append(payload)
        snapshot = frontier.copy()
        frontier.append(b"after-snapshot")
        assert len(snapshot) == 6
        assert snapshot.root() == MerkleTree(payloads(6)).root()
        assert snapshot.root() != frontier.root()


class TestTreeRollbackHelpers:
    def test_truncate_reverts_append(self):
        tree = MerkleTree(payloads(8))
        root = tree.root()
        tree.append(b"doomed")
        tree.truncate(8)
        assert len(tree) == 8
        assert tree.root() == root
        with pytest.raises(IndexError):
            tree.truncate(9)

    def test_frontier_snapshot_of_tree(self):
        tree = MerkleTree(payloads(11))
        assert tree.frontier().root() == tree.root()
        assert len(tree.frontier()) == 11
