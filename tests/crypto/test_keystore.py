import pytest

from repro.crypto.keystore import KeyStore
from repro.errors import UnknownComponentError


class TestKeyStore:
    def test_register_and_get(self, keypool):
        store = KeyStore()
        store.register("/a", keypool[0].public)
        assert store.get("/a") == keypool[0].public

    def test_unknown_component_raises(self):
        with pytest.raises(UnknownComponentError):
            KeyStore().get("/ghost")

    def test_find_returns_none_for_unknown(self):
        assert KeyStore().find("/ghost") is None

    def test_reregistering_same_key_is_idempotent(self, keypool):
        store = KeyStore()
        store.register("/a", keypool[0].public)
        store.register("/a", keypool[0].public)
        assert len(store) == 1

    def test_key_replacement_rejected(self, keypool):
        # A component must not be able to repudiate old signatures by
        # swapping its registered key.
        store = KeyStore()
        store.register("/a", keypool[0].public)
        with pytest.raises(UnknownComponentError):
            store.register("/a", keypool[1].public)

    def test_contains_and_len(self, keypool):
        store = KeyStore()
        store.register("/a", keypool[0].public)
        store.register("/b", keypool[1].public)
        assert "/a" in store
        assert "/c" not in store
        assert len(store) == 2

    def test_snapshot_is_a_copy(self, keypool):
        store = KeyStore()
        store.register("/a", keypool[0].public)
        snap = store.snapshot()
        snap["/b"] = keypool[1].public
        assert "/b" not in store
