"""Offline forgery helper sanity: the entries they build have exactly the
cryptographic properties the paper's scenarios require."""

from repro.adversary import (
    fabricate_publication_entry,
    fabricate_receipt_entry,
    forge_colluding_pair,
    forge_impersonated_entry,
)
from repro.core.entries import Direction
from repro.core.protocol import message_digest


class TestFabricatedPublication:
    def test_own_signature_is_valid(self, keypool):
        entry = fabricate_publication_entry(
            "/pub", keypool[0], "/t", "std/String", 1, b"fake", "/sub"
        )
        assert keypool[0].public.verify_digest(entry.reported_hash(), entry.own_sig)

    def test_peer_signature_is_invalid(self, keypool):
        entry = fabricate_publication_entry(
            "/pub", keypool[0], "/t", "std/String", 1, b"fake", "/sub"
        )
        assert not keypool[1].public.verify_digest(entry.peer_hash, entry.peer_sig)

    def test_directions_and_ids(self, keypool):
        entry = fabricate_publication_entry(
            "/pub", keypool[0], "/t", "std/String", 1, b"fake", "/sub"
        )
        assert entry.direction is Direction.OUT
        assert entry.peer_id == "/sub"


class TestFabricatedReceipt:
    def test_own_signature_is_valid(self, keypool):
        entry = fabricate_receipt_entry(
            "/sub", keypool[1], "/t", "std/String", 1, b"fake", "/pub"
        )
        assert keypool[1].public.verify_digest(entry.reported_hash(), entry.own_sig)

    def test_stores_hash_by_default(self, keypool):
        entry = fabricate_receipt_entry(
            "/sub", keypool[1], "/t", "std/String", 1, b"fake", "/pub"
        )
        assert entry.data_hash and not entry.data

    def test_store_data_option(self, keypool):
        entry = fabricate_receipt_entry(
            "/sub", keypool[1], "/t", "std/String", 1, b"fake", "/pub", store_hash=False
        )
        assert entry.data == b"fake"

    def test_replayed_signature_fails_for_new_seq(self, keypool):
        old_digest = message_digest(1, b"old")
        old_sig = keypool[0].private.sign_digest(old_digest)
        entry = fabricate_receipt_entry(
            "/sub",
            keypool[1],
            "/t",
            "std/String",
            2,
            b"",
            "/pub",
            reuse_message=(b"old", old_sig),
        )
        # the replayed s_x covers h(1||old), not h(2||old)
        assert not keypool[0].public.verify_digest(entry.reported_hash(), entry.peer_sig)


class TestImpersonation:
    def test_signature_fails_under_victim_key(self, keypool):
        entry = forge_impersonated_entry(
            "/victim", keypool[2], "/t", "std/String", 1, b"data"
        )
        assert not keypool[0].public.verify_digest(
            entry.reported_hash(), entry.own_sig
        )
        assert entry.component_id == "/victim"


class TestColludingPair:
    def test_all_four_signatures_verify(self, keypool):
        lx, ly = forge_colluding_pair(
            "/pub", keypool[0], "/sub", keypool[1], "/t", "std/String", 1, b"lie"
        )
        digest = message_digest(1, b"lie")
        assert keypool[0].public.verify_digest(digest, lx.own_sig)
        assert keypool[1].public.verify_digest(digest, lx.peer_sig)
        assert keypool[1].public.verify_digest(digest, ly.own_sig)
        assert keypool[0].public.verify_digest(digest, ly.peer_sig)

    def test_pair_is_mutually_consistent(self, keypool):
        lx, ly = forge_colluding_pair(
            "/pub", keypool[0], "/sub", keypool[1], "/t", "std/String", 1, b"lie"
        )
        assert lx.reported_hash() == ly.reported_hash()
        assert lx.peer_hash == lx.reported_hash()
