"""Chaos soak: the full pub-sub-logger-auditor stack under a lossy network.

The load-bearing claim: *network* faults (drops, duplicates, delays,
reorders, truncations) must never be mistaken for *component* misbehavior.
With retransmission enabled, every surviving transmission pair is classified
``valid``, the only ``hidden`` records are the genuinely hiding
subscriber's, and nobody is falsely convicted.

Marked ``soak`` (deselected from the tier-1 run); run with
``pytest -m soak``.  The randomized schedule derives from the shared
``deterministic_seed`` fixture, so a failure reproduces with the same
``PYTEST_SEED``.
"""

import pytest

from repro.adversary import GroundTruth, SubscriberBehavior, UnfaithfulAdlpProtocol
from repro.audit import Auditor, Topology
from repro.core import AdlpConfig, AdlpProtocol, LogServer
from repro.middleware import Master, Node, handshake
from repro.middleware.msgtypes import StringMsg
from repro.middleware.transport import FaultProfile, FaultSchedule, FaultyTransport
from repro.middleware.transport.tcp import TcpTransport
from repro.util.concurrency import wait_for

pytestmark = pytest.mark.soak

TOPIC = "/t"

#: Retransmission knobs generous enough that no publication permanently
#: fails under the probabilistic schedules below (per-round failure is
#: well under 0.5; sixteen retries make permanent loss vanishingly rare).
CHAOS_CONFIG = dict(
    key_bits=512,
    ack_timeout=0.1,
    max_retransmits=16,
    retransmit_backoff=1.5,
    max_ack_timeout=1.0,
    drop_unacked_subscriber=False,
)


class TestChaosAudit:
    def test_no_false_verdicts_under_randomized_faults(
        self, keypool, deterministic_seed, rng, monkeypatch
    ):
        """Two subscribers -- one faithful, one hiding its log entries --
        under a randomized fault schedule.  The auditor must classify every
        surviving entry valid and pin hidden records on the hiding
        subscriber alone."""
        monkeypatch.setattr(handshake, "HANDSHAKE_TIMEOUT", 1.0)
        publications = 30
        profile = FaultProfile(
            drop=round(rng.uniform(0.05, 0.15), 3),
            dup=round(rng.uniform(0.05, 0.15), 3),
            delay=round(rng.uniform(0.02, 0.08), 3),
            reorder=round(rng.uniform(0.02, 0.05), 3),
            truncate=round(rng.uniform(0.02, 0.08), 3),
            delay_by=0.002,
            # no disconnects: severed links lose frames with no redelivery
            # path (as in ROS), which is availability loss, not a verdict
        )
        schedule = FaultSchedule.symmetric(profile, seed=deterministic_seed)
        master = Master(transport=FaultyTransport(schedule=schedule))
        server = LogServer()
        truth = GroundTruth()
        config = AdlpConfig(**CHAOS_CONFIG)

        pub_protocol = UnfaithfulAdlpProtocol(
            "/pub", server, truth, config=config, keypair=keypool[0]
        )
        honest_protocol = UnfaithfulAdlpProtocol(
            "/sub0", server, truth, config=config, keypair=keypool[1]
        )
        hiding_protocol = UnfaithfulAdlpProtocol(
            "/sub1",
            server,
            truth,
            subscriber_behavior=SubscriberBehavior(hide_entries=True),
            config=config,
            keypair=keypool[2],
        )
        pub_node = Node("/pub", master, protocol=pub_protocol)
        sub0_node = Node("/sub0", master, protocol=honest_protocol)
        sub1_node = Node("/sub1", master, protocol=hiding_protocol)
        protocols = [pub_protocol, honest_protocol, hiding_protocol]
        nodes = [pub_node, sub0_node, sub1_node]
        try:
            sub0 = sub0_node.subscribe(TOPIC, StringMsg, lambda m: None)
            sub1 = sub1_node.subscribe(TOPIC, StringMsg, lambda m: None)
            pub = pub_node.advertise(TOPIC, StringMsg, queue_size=64)
            assert pub.wait_for_subscribers(2, timeout=10.0)
            assert sub0.wait_for_connection(timeout=10.0)
            assert sub1.wait_for_connection(timeout=10.0)

            for i in range(publications):
                pub.publish(StringMsg(data=f"chaos message {i}"))

            # exactly-once delivery to both, despite dups and retransmits
            assert wait_for(
                lambda: sub0.stats.received == publications
                and sub1.stats.received == publications,
                timeout=25.0,
            ), (
                f"deliveries stalled: sub0={sub0.stats.received} "
                f"sub1={sub1.stats.received} of {publications}"
            )
            # every publication eventually won an ACK from both links
            assert wait_for(
                lambda: pub_protocol.stats.acks_received == 2 * publications,
                timeout=25.0,
            )
        finally:
            for protocol in protocols:
                protocol.flush()
            for node in nodes:
                node.shutdown()
            for protocol in protocols:
                protocol.flush()

        # the schedule actually did something
        faults = master.transport.stats
        assert faults.total_faults() > 0

        topology = Topology(
            publisher_of={TOPIC: "/pub"},
            subscribers_of={TOPIC: ["/sub0", "/sub1"]},
        )
        report = Auditor.for_server(server, topology).audit_server(server)

        # no false convictions: every surviving entry is valid
        invalid = report.invalid_entries()
        assert invalid == [], [
            (c.component_id, c.entry.seq, c.reasons) for c in invalid
        ]
        # hidden records exist exactly for the hiding subscriber's receipts
        assert {h.component_id for h in report.hidden} == {"/sub1"}
        assert len(report.hidden) == publications
        assert report.flagged_components() == ["/sub1"]
        assert "/pub" in report.clean_components()
        assert "/sub0" in report.clean_components()

    def test_acceptance_tcp_drop20_dup10_seed42(self, keypool, monkeypatch):
        """The issue's acceptance scenario: ``FaultyTransport(drop=0.2,
        dup=0.1, seed=42)`` over real TCP, 200 messages, one subscriber.
        Must complete without deadlock, deliver exactly once, and audit
        with zero false invalid/hidden verdicts."""
        monkeypatch.setattr(handshake, "HANDSHAKE_TIMEOUT", 1.0)
        publications = 200
        transport = FaultyTransport(TcpTransport(), drop=0.2, dup=0.1, seed=42)
        master = Master(transport=transport)
        server = LogServer()
        config = AdlpConfig(
            key_bits=512,
            ack_timeout=0.05,
            max_retransmits=16,
            retransmit_backoff=1.5,
            max_ack_timeout=0.5,
            drop_unacked_subscriber=False,
        )
        pub_protocol = AdlpProtocol("/pub", server, config=config, keypair=keypool[0])
        sub_protocol = AdlpProtocol("/sub", server, config=config, keypair=keypool[1])
        pub_node = Node("/pub", master, protocol=pub_protocol)
        sub_node = Node("/sub", master, protocol=sub_protocol)
        try:
            delivered = []
            sub = sub_node.subscribe(TOPIC, StringMsg, lambda m: delivered.append(m.data))
            pub = pub_node.advertise(TOPIC, StringMsg, queue_size=publications + 8)
            assert pub.wait_for_subscribers(1, timeout=10.0)
            assert sub.wait_for_connection(timeout=10.0)

            for i in range(publications):
                pub.publish(StringMsg(data=f"msg-{i:04d}"))

            # no deadlock: all 200 complete within the soak budget
            assert wait_for(
                lambda: sub.stats.received == publications, timeout=25.0
            ), f"stalled at {sub.stats.received}/{publications}"
            assert wait_for(
                lambda: pub_protocol.stats.acks_received == publications,
                timeout=25.0,
            )
            # exactly-once: no message delivered twice or skipped
            assert delivered == [f"msg-{i:04d}" for i in range(publications)]
            # the chaos was real, and retransmission absorbed it
            assert transport.stats.drops > 0
            assert transport.stats.dups > 0
            assert pub_protocol.stats.retransmits > 0
            assert sub_protocol.stats.dup_frames_dropped > 0
        finally:
            pub_protocol.flush()
            sub_protocol.flush()
            pub_node.shutdown()
            sub_node.shutdown()
            pub_protocol.flush()
            sub_protocol.flush()

        topology = Topology(publisher_of={TOPIC: "/pub"})
        report = Auditor.for_server(server, topology).audit_server(server)
        assert report.invalid_entries() == []
        assert report.hidden == []
        assert report.flagged_components() == []
        # both sides logged every transmission exactly once
        assert len(server.entries(component_id="/pub")) == publications
        assert len(server.entries(component_id="/sub")) == publications
