"""Harness plumbing: ground truth recording and behavior application."""

from repro.adversary import (
    GroundTruth,
    PublisherBehavior,
    SubscriberBehavior,
    TransmissionRecord,
)
from repro.adversary.behaviors import flip_first_byte
from repro.core import Direction

from tests.helpers import run_scenario


class TestGroundTruth:
    def test_faithful_run_records_sends_and_receipts(self, keypool):
        result = run_scenario(keypool, publications=3)
        assert len(result.truth.sent) == 3
        assert len(result.truth.received) == 3
        assert len(result.truth.transmissions()) == 3

    def test_send_and_receipt_digests_agree(self, keypool):
        result = run_scenario(keypool, publications=2)
        sent = {(r.topic, r.seq): r.digest for r in result.truth.sent}
        for receipt in result.truth.received:
            assert sent[(receipt.topic, receipt.seq)] == receipt.digest

    def test_digest_of(self, keypool):
        result = run_scenario(keypool, publications=1)
        assert result.truth.digest_of("/t", 1) is not None
        assert result.truth.digest_of("/t", 99) is None

    def test_transmissions_requires_both_ends(self):
        truth = GroundTruth()
        record = TransmissionRecord("/p", "/s", "/t", 1, b"d" * 32)
        truth.record_send(record)
        assert truth.transmissions() == []
        truth.record_receipt(record)
        assert len(truth.transmissions()) == 1


class TestBehaviorApplication:
    def test_falsifying_publisher_sends_truth_logs_lie(self, keypool):
        """The wire carries the real payload; only the log lies."""
        result = run_scenario(
            keypool,
            publisher_behavior=PublisherBehavior(falsify=flip_first_byte),
            publications=2,
        )
        # subscribers received the REAL data (same digest publisher sent)
        for receipt in result.truth.received:
            assert receipt.digest == result.truth.digest_of("/t", receipt.seq)
        # but the publisher's logged digests differ from the wire truth
        for entry in result.server.entries(component_id="/pub"):
            assert entry.reported_hash() != result.truth.digest_of(
                "/t", entry.seq
            )

    def test_hiding_subscriber_still_delivers_to_app(self, keypool):
        result = run_scenario(
            keypool,
            subscriber_behaviors=[SubscriberBehavior(hide_entries=True)],
            publications=3,
        )
        assert len(result.truth.received) == 3  # data flowed normally
        assert result.server.entries(component_id="/sub0") == []

    def test_timing_offset_applied_to_log_timestamps(self, keypool):
        clean = run_scenario(keypool, publications=1)
        skewed = run_scenario(
            keypool,
            subscriber_behaviors=[SubscriberBehavior(log_clock_offset=1000.0)],
            publications=1,
        )
        t_clean = clean.server.entries(component_id="/sub0")[0].timestamp
        t_skewed = skewed.server.entries(component_id="/sub0")[0].timestamp
        assert t_skewed - t_clean > 500.0

    def test_faithful_harness_equivalent_to_plain_adlp(self, keypool):
        """Default behaviors: everything valid, nothing hidden."""
        result = run_scenario(keypool, publications=3)
        assert result.report.flagged_components() == []
        assert len(result.report.valid_entries()) == 6
        assert all(p.is_faithful for p in result.protocols.values())


class TestInvalidSignatureOnWire:
    def test_figure8_ambiguity(self, keypool):
        """Figure 8 (a): publisher ships a garbage signature.  The
        subscriber's entry then fails verification -- from the auditor's
        view this is indistinguishable from Figure 8 (b), so the subscriber
        side is flagged.  This documents why eq. (4) (transport-enforced
        signing) is load-bearing for the protocol."""
        result = run_scenario(
            keypool,
            publisher_behavior=PublisherBehavior(send_invalid_signature=True),
            publications=2,
        )
        # The pair is in dispute; at least one party must be flagged, and
        # with transport-level signing bypassed the evidence is ambiguous.
        assert result.report.flagged_components()
