from repro.adversary.behaviors import (
    PublisherBehavior,
    SubscriberBehavior,
    flip_first_byte,
)


class TestFlipFirstByte:
    def test_changes_payload(self):
        assert flip_first_byte(b"hello") != b"hello"

    def test_preserves_length(self):
        assert len(flip_first_byte(b"hello")) == 5

    def test_involution(self):
        assert flip_first_byte(flip_first_byte(b"hello")) == b"hello"

    def test_empty_payload(self):
        assert flip_first_byte(b"") == b"\x01"


class TestFaithfulnessPredicate:
    def test_defaults_are_faithful(self):
        assert PublisherBehavior().is_faithful
        assert SubscriberBehavior().is_faithful

    def test_any_deviation_is_unfaithful(self):
        assert not PublisherBehavior(hide_entries=True).is_faithful
        assert not PublisherBehavior(falsify=flip_first_byte).is_faithful
        assert not SubscriberBehavior(suppress_acks=True).is_faithful
        assert not SubscriberBehavior(log_clock_offset=1.0).is_faithful
