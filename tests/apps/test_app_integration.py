"""End-to-end tests of the self-driving application under each scheme."""

import pytest

from repro.apps.selfdriving import SelfDrivingApp
from repro.apps.selfdriving.app import seeded_keypairs
from repro.apps.selfdriving.nodes import GRAPH, TOPIC_IMAGE, TOPIC_STEERING
from repro.audit import Auditor, Topology
from repro.core import AdlpConfig, Direction
from repro.middleware.graph import end_to_end_paths


@pytest.fixture(scope="module")
def app_keypairs():
    return seeded_keypairs(bits=512)


FAST_ADLP = AdlpConfig(key_bits=512, ack_timeout=2.0)


class TestSchemes:
    def test_runs_without_logging(self):
        with SelfDrivingApp(scheme="none") as app:
            metrics = app.run_for(2.0)
        assert metrics.distance_m > 0.5
        assert metrics.log_entries == 0

    def test_runs_under_naive_logging(self):
        with SelfDrivingApp(scheme="naive") as app:
            metrics = app.run_for(2.0)
            app.flush_logs()
            metrics = app.metrics(2.0)
        assert metrics.distance_m > 0.5
        assert metrics.log_entries > 10

    def test_runs_under_adlp(self, app_keypairs):
        with SelfDrivingApp(
            scheme="adlp", keypairs=app_keypairs, adlp_config=FAST_ADLP
        ) as app:
            metrics = app.run_for(2.5)
            app.flush_logs()
            metrics = app.metrics(2.5)
        assert metrics.distance_m > 0.5
        assert metrics.log_entries > 20

    def test_invalid_scheme_rejected(self):
        with pytest.raises(ValueError):
            SelfDrivingApp(scheme="bogus")


class TestDataFlow:
    def test_camera_to_steering_path_exists(self):
        with SelfDrivingApp(scheme="none") as app:
            paths = end_to_end_paths(app.master, "/image_feeder", "/vehicle")
            assert ["/image_feeder", "/lane_detector", "/planner", "/controller", "/vehicle"] in paths

    def test_every_graph_node_publishes_its_topics(self):
        with SelfDrivingApp(scheme="none") as app:
            for node_name, topics in GRAPH.items():
                for topic in topics:
                    info = app.master.lookup_publisher(topic)
                    assert info is not None, topic
                    assert info.node_id == node_name

    def test_all_nodes_produce_messages(self, app_keypairs):
        with SelfDrivingApp(scheme="none") as app:
            metrics = app.run_for(2.5)
        for node_name in GRAPH:
            assert metrics.messages_by_node[node_name] > 0, node_name


class TestAuditOfTheApp:
    def test_faithful_app_audits_clean(self, app_keypairs):
        """The paper's demo: run the car under ADLP, audit everything."""
        with SelfDrivingApp(
            scheme="adlp", keypairs=app_keypairs, adlp_config=FAST_ADLP
        ) as app:
            app.run_for(2.5)
            app.flush_logs()
            topology = Topology.from_master(app.master)
            server = app.log_server
        app.flush_logs()
        report = Auditor.for_server(server, topology).audit_server(server)
        assert report.flagged_components() == []
        # image transmissions were logged by both ends
        image_out = server.entries(topic=TOPIC_IMAGE, direction=Direction.OUT)
        image_in = server.entries(topic=TOPIC_IMAGE, direction=Direction.IN)
        assert image_out and image_in

    def test_steering_commands_accountable(self, app_keypairs):
        with SelfDrivingApp(
            scheme="adlp", keypairs=app_keypairs, adlp_config=FAST_ADLP
        ) as app:
            app.run_for(2.5)
            app.flush_logs()
            server = app.log_server
            steering_in = server.entries(
                topic=TOPIC_STEERING, direction=Direction.IN
            )
        assert steering_in
        assert all(e.component_id == "/vehicle" for e in steering_in)
