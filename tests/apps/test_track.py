import math

import pytest

from repro.apps.selfdriving.track import (
    Obstacle,
    Track,
    TrafficSignPost,
    VehicleModel,
    World,
    default_track,
)


class TestTrackGeometry:
    def test_centerline_point_on_circle(self):
        track = Track(radius=10.0)
        x, y = track.centerline_point(0.0)
        assert (x, y) == (10.0, 0.0)
        x, y = track.centerline_point(math.pi / 2)
        assert x == pytest.approx(0.0, abs=1e-9)
        assert y == pytest.approx(10.0)

    def test_lateral_offset_sign(self):
        track = Track(radius=10.0)
        assert track.lateral_offset(11.0, 0.0) == pytest.approx(1.0)  # outside
        assert track.lateral_offset(9.0, 0.0) == pytest.approx(-1.0)  # inside
        assert track.lateral_offset(10.0, 0.0) == pytest.approx(0.0)

    def test_heading_error_zero_on_tangent(self):
        track = Track(radius=10.0)
        # at angle 0, CCW tangent points toward +y (heading pi/2)
        assert track.heading_error(10.0, 0.0, math.pi / 2) == pytest.approx(0.0)

    def test_heading_error_normalized(self):
        track = Track(radius=10.0)
        err = track.heading_error(10.0, 0.0, math.pi / 2 + 2 * math.pi + 0.1)
        assert err == pytest.approx(0.1)

    def test_sign_ahead_within_range(self):
        sign = TrafficSignPost(kind="stop", angle_rad=0.3, visible_range_m=6.0)
        track = Track(radius=10.0, signs=(sign,))
        # car at angle 0: sign is 3m of arc ahead
        found = track.sign_ahead(10.0, 0.0)
        assert found is not None
        assert found[0].kind == "stop"
        assert found[1] == pytest.approx(3.0)

    def test_sign_behind_not_visible(self):
        sign = TrafficSignPost(kind="stop", angle_rad=0.3, visible_range_m=6.0)
        track = Track(radius=10.0, signs=(sign,))
        x, y = track.centerline_point(0.4)  # just past the sign
        assert track.sign_ahead(x, y) is None

    def test_nearest_of_multiple_signs(self):
        track = Track(
            radius=10.0,
            signs=(
                TrafficSignPost(kind="speed_1", angle_rad=0.5, visible_range_m=20.0),
                TrafficSignPost(kind="stop", angle_rad=0.2, visible_range_m=20.0),
            ),
        )
        found = track.sign_ahead(10.0, 0.0)
        assert found[0].kind == "stop"


class TestVehicleModel:
    def test_straight_motion(self):
        v = VehicleModel(speed=1.0, target_speed=1.0)
        for _ in range(100):
            v.step(0.01)
        assert v.x == pytest.approx(1.0, rel=1e-6)
        assert v.y == pytest.approx(0.0, abs=1e-9)

    def test_acceleration_limited(self):
        v = VehicleModel(target_speed=10.0, accel_limit=2.0)
        v.step(0.1)
        assert v.speed == pytest.approx(0.2)

    def test_steering_turns_left(self):
        v = VehicleModel(speed=1.0, target_speed=1.0, steering_angle=0.3)
        for _ in range(100):
            v.step(0.01)
        assert v.heading > 0  # positive steering = CCW

    def test_heading_stays_normalized(self):
        v = VehicleModel(speed=5.0, target_speed=5.0, steering_angle=0.5)
        for _ in range(2000):
            v.step(0.01)
        assert -math.pi <= v.heading <= math.pi


class TestWorld:
    def test_starts_on_centerline(self):
        world = World()
        assert world.lateral_offset() == pytest.approx(0.0, abs=1e-9)

    def test_apply_command_and_step(self):
        world = World()
        world.apply_command(steering_angle=0.0, target_speed=1.0)
        for _ in range(100):
            world.step(0.01)
        assert world.distance_traveled > 0.3

    def test_snapshot_is_isolated_copy(self):
        world = World()
        snap = world.snapshot()
        snap.x = 1e9
        assert world.snapshot().x != 1e9

    def test_lap_counting(self):
        world = World(track=Track(radius=1.0))
        world.apply_command(steering_angle=0.0, target_speed=0.0)
        # teleport-free check: drive the model along the circle manually
        vehicle = world._vehicle
        steering = math.atan(vehicle.wheelbase / 1.0)
        world.apply_command(steering_angle=steering, target_speed=1.0)
        for _ in range(1500):
            world.step(0.01)
        assert world.laps > 1.0

    def test_default_track_has_signs_and_obstacle(self):
        track = default_track()
        kinds = {s.kind for s in track.signs}
        assert "stop" in kinds
        assert track.obstacles
