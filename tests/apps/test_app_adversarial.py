"""The paper's end-to-end story: one unfaithful node inside the full
self-driving application is pinpointed by the audit."""

import pytest

from repro.adversary import GroundTruth, SubscriberBehavior, UnfaithfulAdlpProtocol
from repro.adversary.behaviors import flip_first_byte
from repro.apps.selfdriving import SelfDrivingApp
from repro.apps.selfdriving.app import seeded_keypairs
from repro.audit import Auditor, Topology
from repro.core import AdlpConfig, LogServer

FAST_ADLP = AdlpConfig(key_bits=512, ack_timeout=2.0)


@pytest.fixture(scope="module")
def app_keypairs():
    return seeded_keypairs(bits=512)


def run_app_with_liar(app_keypairs, behavior):
    log_server = LogServer()
    truth = GroundTruth()
    liar = UnfaithfulAdlpProtocol(
        "/sign_recognizer",
        log_server,
        truth,
        subscriber_behavior=behavior,
        config=FAST_ADLP,
        keypair=app_keypairs["/sign_recognizer"],
    )
    with SelfDrivingApp(
        scheme="adlp",
        log_server=log_server,
        keypairs=app_keypairs,
        adlp_config=FAST_ADLP,
        protocol_overrides={"/sign_recognizer": liar},
    ) as app:
        topology = Topology.from_master(app.master)
        app.run_for(2.5)
        app.flush_logs()
    app.flush_logs()
    report = Auditor.for_server(log_server, topology).audit_server(log_server)
    return report


class TestUnfaithfulNodeInTheApp:
    def test_falsifying_sign_recognizer_is_the_only_flagged_node(
        self, app_keypairs
    ):
        """The Figure 3 scenario at full-application scale: the sign
        recognizer falsifies its camera-input logs; the audit flags it and
        nothing else."""
        report = run_app_with_liar(
            app_keypairs, SubscriberBehavior(falsify=flip_first_byte)
        )
        assert report.flagged_components() == ["/sign_recognizer"]
        # all seven other nodes are provably clean (Theorem 1)
        assert len(report.clean_components()) == 7

    def test_hiding_sign_recognizer_exposed_via_publisher_entries(
        self, app_keypairs
    ):
        report = run_app_with_liar(
            app_keypairs, SubscriberBehavior(hide_entries=True)
        )
        assert "/sign_recognizer" in report.flagged_components()
        hidden_owners = {h.component_id for h in report.hidden}
        assert hidden_owners == {"/sign_recognizer"}
        # Note: the recognizer's own /perception/sign PUBLICATIONS are
        # still logged faithfully (hide_entries only suppresses its
        # subscription entries); unfaithfulness is per-relation, exactly
        # as the trust model allows (Section II-A).
