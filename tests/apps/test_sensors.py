import math

import pytest

from repro.apps.selfdriving.sensors import (
    IMAGE_HEIGHT,
    IMAGE_WIDTH,
    LIDAR_BEAMS,
    LIDAR_RANGE_MAX,
    Camera,
    Lidar,
    decode_lane,
    decode_obstacles,
    decode_sign,
)
from repro.apps.selfdriving.track import Obstacle, Track, TrafficSignPost, VehicleModel


@pytest.fixture(scope="module")
def track():
    return Track(
        radius=10.0,
        signs=(TrafficSignPost(kind="stop", angle_rad=0.3, visible_range_m=6.0),),
        obstacles=(Obstacle(x=12.0, y=0.0, radius_m=0.5),),
    )


def vehicle_at(track, angle, offset=0.0, heading_err=0.0):
    radius = track.radius + offset
    return VehicleModel(
        x=radius * math.cos(angle),
        y=radius * math.sin(angle),
        heading=angle + math.pi / 2 + heading_err,
    )


class TestCamera:
    def test_frame_size_matches_paper(self, track):
        frame = Camera(track).render(vehicle_at(track, 1.0))
        assert len(frame) == IMAGE_HEIGHT * IMAGE_WIDTH * 3 == 921600

    def test_lane_decoding_recovers_offset(self, track):
        camera = Camera(track)
        for true_offset in (-0.4, 0.0, 0.3):
            frame = camera.render(vehicle_at(track, 1.0, offset=true_offset))
            offset, _ = decode_lane(frame)
            assert offset == pytest.approx(true_offset, abs=0.05)

    def test_lane_decoding_recovers_heading_error(self, track):
        camera = Camera(track)
        frame = camera.render(vehicle_at(track, 1.0, heading_err=0.2))
        _, heading_err = decode_lane(frame)
        assert heading_err == pytest.approx(0.2, abs=0.05)

    def test_sign_detected_when_close(self, track):
        camera = Camera(track)
        frame = camera.render(vehicle_at(track, 0.0))  # sign 3m ahead
        found = decode_sign(frame)
        assert found is not None
        kind, distance = found
        assert kind == "stop"
        assert distance == pytest.approx(3.0, rel=0.3)

    def test_no_sign_when_far(self, track):
        camera = Camera(track)
        frame = camera.render(vehicle_at(track, math.pi))  # opposite side
        assert decode_sign(frame) is None

    def test_decode_rejects_non_frames(self):
        with pytest.raises(ValueError):
            decode_lane(b"not an image")
        with pytest.raises(ValueError):
            decode_sign(b"junk")


class TestLidar:
    def test_scan_sizes(self, track):
        ranges, intensities = Lidar(track).scan(vehicle_at(track, 1.0))
        assert len(ranges) == LIDAR_BEAMS * 4
        assert len(intensities) == LIDAR_BEAMS * 4

    def test_obstacle_detected_at_right_distance(self, track):
        # vehicle at angle 0 (position (10,0)), obstacle at (12,0): dead
        # ahead is +y for CCW travel, so the obstacle is to the right.
        vehicle = VehicleModel(x=10.0, y=0.0, heading=0.0)  # facing +x
        ranges, _ = Lidar(track).scan(vehicle)
        angles, distances = decode_obstacles(ranges)
        assert len(distances) > 0
        # nearest return: obstacle surface at 2.0 - 0.5 = 1.5 m
        assert min(distances) == pytest.approx(1.5, abs=0.1)
        # dead ahead (angle ~ 0 relative to heading)
        nearest_angle = angles[distances.argmin()]
        assert abs(nearest_angle) < 0.1

    def test_empty_world_all_max_range(self):
        empty = Track(radius=10.0)
        ranges, _ = Lidar(empty).scan(VehicleModel(x=10.0, y=0.0))
        angles, distances = decode_obstacles(ranges)
        assert len(distances) == 0

    def test_scan_size_near_paper(self, track):
        # packed ranges+intensities ~ 8640 B, close to the paper's 8705 B Scan
        ranges, intensities = Lidar(track).scan(vehicle_at(track, 0.0))
        assert abs((len(ranges) + len(intensities)) - 8705) < 128
