"""Test helpers: run a pub/sub scenario under configurable behaviors.

Used heavily by the audit tests: spin up one publisher and N subscribers
(faithful or adversarial), run a fixed number of publications, and return
the log server, ground truth, and audit report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adversary import (
    GroundTruth,
    PublisherBehavior,
    SubscriberBehavior,
    UnfaithfulAdlpProtocol,
)
from repro.audit import Auditor, AuditReport, Topology
from repro.core import AdlpConfig, LogServer
from repro.crypto.keys import KeyPair
from repro.middleware import Master, Node
from repro.middleware.msgtypes import StringMsg
from repro.util.concurrency import wait_for

TOPIC = "/t"


@dataclass
class ScenarioResult:
    server: LogServer
    truth: GroundTruth
    report: AuditReport
    topology: Topology
    protocols: Dict[str, UnfaithfulAdlpProtocol]


def run_scenario(
    keypool: Sequence[KeyPair],
    publisher_behavior: Optional[PublisherBehavior] = None,
    subscriber_behaviors: Optional[List[Optional[SubscriberBehavior]]] = None,
    publications: int = 3,
    config: Optional[AdlpConfig] = None,
    settle: float = 0.2,
) -> ScenarioResult:
    """One publisher, N subscribers, ``publications`` messages, full audit.

    ``subscriber_behaviors`` gives one entry per subscriber (``None`` =
    faithful); defaults to a single faithful subscriber.
    """
    if subscriber_behaviors is None:
        subscriber_behaviors = [None]
    config = config or AdlpConfig(key_bits=512, ack_timeout=1.0)

    master = Master()
    server = LogServer()
    truth = GroundTruth()
    protocols: Dict[str, UnfaithfulAdlpProtocol] = {}
    nodes: List[Node] = []

    pub_name = "/pub"
    pub_protocol = UnfaithfulAdlpProtocol(
        pub_name,
        server,
        truth,
        publisher_behavior=publisher_behavior,
        config=config,
        keypair=keypool[0],
    )
    protocols[pub_name] = pub_protocol
    pub_node = Node(pub_name, master, protocol=pub_protocol)
    nodes.append(pub_node)

    sub_names = []
    subscribers = []
    for i, behavior in enumerate(subscriber_behaviors):
        name = f"/sub{i}"
        sub_names.append(name)
        protocol = UnfaithfulAdlpProtocol(
            name,
            server,
            truth,
            subscriber_behavior=behavior,
            config=config,
            keypair=keypool[1 + i],
        )
        protocols[name] = protocol
        node = Node(name, master, protocol=protocol)
        nodes.append(node)
        subscribers.append(node.subscribe(TOPIC, StringMsg, lambda m: None))

    publisher = pub_node.advertise(TOPIC, StringMsg)
    publisher.wait_for_subscribers(len(subscriber_behaviors))
    for i in range(publications):
        publisher.publish(StringMsg(data=f"message {i}"))

    # Wait until every receipt that will happen has happened.
    expected = publications * len(
        [b for b in subscriber_behaviors if b is None or not b.suppress_acks]
    )
    wait_for(lambda: len(truth.received) >= expected, timeout=5.0)
    time.sleep(settle)
    for protocol in protocols.values():
        protocol.flush()
    for node in nodes:
        node.shutdown()
    for protocol in protocols.values():
        protocol.flush()

    topology = Topology(
        publisher_of={TOPIC: pub_name},
        subscribers_of={TOPIC: sub_names},
    )
    report = Auditor.for_server(server, topology).audit_server(server)
    return ScenarioResult(
        server=server,
        truth=truth,
        report=report,
        topology=topology,
        protocols=protocols,
    )
