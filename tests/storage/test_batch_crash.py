"""Crash injection inside a group-commit batch.

A batch is one WAL write burst with a single fsync, so a crash mid-burst
may leave any *prefix* of the batch on disk.  The acceptance bar mirrors
the per-entry one: recovery yields a store byte-identical to an uncrashed
per-entry reference fed the same prefix -- never a torn or reordered
record, and the live (crashing) store never claims more than one
consistent prefix.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import pytest

from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.log_server import LogServer
from repro.core.log_store import InMemoryLogStore
from repro.storage.crashpoints import (
    CRASH_EXIT_STATUS,
    KNOWN_CRASHPOINTS,
    SimulatedCrash,
    arm,
    reset,
)
from repro.storage.durable_store import DurableLogStore

GEOMETRY = dict(fsync="always", segment_max_bytes=512, checkpoint_every=6)


def make_records(n: int):
    return [b"record-%04d-" % i + b"y" * (i % 11) for i in range(n)]


def make_entry(i: int) -> LogEntry:
    return LogEntry(
        component_id="/pub",
        topic="/t",
        type_name="std/String",
        direction=Direction.OUT,
        seq=i,
        timestamp=float(i),
        scheme=Scheme.ADLP,
        data=b"payload-%04d" % i,
        own_sig=b"\x5a" * 16,
    )


def reference_store(tmp_path, records):
    ref = DurableLogStore(str(tmp_path / "reference"), **GEOMETRY)
    for record in records:
        ref.append(record)
    return ref


class TestBatchCrashpoint:
    def test_batch_mid_is_known(self):
        assert "wal.batch_mid" in KNOWN_CRASHPOINTS

    @pytest.mark.parametrize("fire_on", [1, 3, 7])
    @pytest.mark.parametrize("batch_size", [2, 5, 16])
    def test_recovery_is_consistent_prefix(self, tmp_path, fire_on, batch_size):
        records = make_records(64)
        arm("wal.batch_mid", action="raise", fire_on=fire_on)
        store = DurableLogStore(str(tmp_path / "crashing"), **GEOMETRY)
        accepted = 0
        crashed = False
        i = 0
        while i < len(records):
            batch = records[i : i + batch_size]
            try:
                store.append_batch(batch)
                accepted += len(batch)
            except SimulatedCrash:
                crashed = True
                break
            i += batch_size
        assert crashed, "wal.batch_mid never fired"
        # The crashing store rolled the whole batch back: the live object
        # claims exactly the pre-batch prefix.
        assert len(store) == accepted
        store.abandon()
        reset()

        recovered = DurableLogStore(str(tmp_path / "crashing"), **GEOMETRY)
        n = len(recovered)
        # An in-process failure truncates the abandoned burst from the
        # WAL: disk agrees with what the live store claimed.
        assert n == accepted
        reference = reference_store(tmp_path, records[:n])
        assert recovered.head() == reference.head()
        assert recovered.merkle_root() == reference.merkle_root()
        assert recovered.records() == reference.records()
        recovered.verify()
        recovered.close()
        reference.close()

    def test_live_continue_after_failed_batch(self, tmp_path):
        """The hazard that forces WAL truncation on batch failure: after a
        failed group commit the store keeps running and the caller falls
        back to per-entry submission.  Were the abandoned burst's complete
        prefix left in the WAL, those per-entry re-appends would land
        after it as non-chaining duplicates and wedge recovery forever."""
        records = make_records(30)
        store = DurableLogStore(str(tmp_path / "crashing"), **GEOMETRY)
        store.append_batch(records[:4])
        arm("wal.batch_mid", action="raise", fire_on=3)
        with pytest.raises(SimulatedCrash):
            store.append_batch(records[4:12])
        reset()
        # Per-entry fallback on the SAME live store, then keep batching.
        for record in records[4:12]:
            store.append(record)
        store.append_batch(records[12:])
        store.verify()  # live store and disk agree
        head, root = store.head(), store.merkle_root()
        store.close()

        reopened = DurableLogStore(str(tmp_path / "crashing"), **GEOMETRY)
        reference = reference_store(tmp_path, records)
        assert len(reopened) == len(records)
        assert reopened.head() == head == reference.head()
        assert reopened.merkle_root() == root == reference.merkle_root()
        reopened.verify()
        reopened.close()
        reference.close()

    def test_recovered_store_accepts_new_batches(self, tmp_path):
        records = make_records(48)
        arm("wal.batch_mid", action="raise", fire_on=2)
        store = DurableLogStore(str(tmp_path / "crashing"), **GEOMETRY)
        crashed = False
        i = 0
        while i < len(records):
            try:
                store.append_batch(records[i : i + 8])
            except SimulatedCrash:
                crashed = True
                break
            i += 8
        assert crashed
        store.abandon()
        reset()

        recovered = DurableLogStore(str(tmp_path / "crashing"), **GEOMETRY)
        n = len(recovered)
        remaining = records[n:]
        # Finish the stream batched; the result must equal a per-entry run.
        for j in range(0, len(remaining), 8):
            recovered.append_batch(remaining[j : j + 8])
        reference = reference_store(tmp_path, records)
        assert recovered.head() == reference.head()
        assert recovered.merkle_root() == reference.merkle_root()
        recovered.verify()
        recovered.close()
        reference.close()


class TestServerBatchCrash:
    def test_submit_batch_crash_rolls_back_then_recovers(self, tmp_path, rng):
        """SimulatedCrash inside a LogServer group commit: the live server
        rolls the batch back; recovery equals a per-entry reference over
        the surviving prefix (the S5 property, raise-mode half)."""
        entries = [make_entry(i) for i in range(1, 41)]
        arm("wal.batch_mid", action="raise", fire_on=2)
        store = DurableLogStore(str(tmp_path / "crashing"), **GEOMETRY)
        server = LogServer(store)
        accepted = 0
        crashed = False
        i = 0
        while i < len(entries):
            size = rng.randrange(2, 9)
            batch = entries[i : i + size]
            try:
                server.submit_batch(batch)
                accepted += len(batch)
            except SimulatedCrash:
                crashed = True
                break
            i += size
        assert crashed
        # Derived state rolled back with the store: memory never claims
        # more than the pre-batch prefix.
        assert len(server) == accepted
        server.verify_integrity()
        store.abandon()
        reset()

        recovered = LogServer(DurableLogStore(str(tmp_path / "crashing"), **GEOMETRY))
        n = len(recovered)
        reference = LogServer(InMemoryLogStore())
        for entry in entries[:n]:
            reference.submit(entry)
        rec_c, ref_c = recovered.commitment(), reference.commitment()
        assert (rec_c.entries, rec_c.chain_head, rec_c.merkle_root) == (
            ref_c.entries,
            ref_c.chain_head,
            ref_c.merkle_root,
        )
        recovered.verify_integrity()
        recovered.close()


_BATCH_CHILD_SCRIPT = textwrap.dedent(
    """
    import sys
    store_dir = sys.argv[1]
    from repro.core.entries import Direction, LogEntry, Scheme
    from repro.storage.durable_store import DurableLogStore

    store = DurableLogStore(
        store_dir, fsync="always", segment_max_bytes=512, checkpoint_every=6
    )
    i = len(store)
    print("READY", flush=True)
    while True:
        batch = []
        for _ in range(8):
            i += 1
            entry = LogEntry(
                component_id="/pub", topic="/t", type_name="std/String",
                direction=Direction.OUT, seq=i, timestamp=float(i),
                scheme=Scheme.ADLP, data=b"payload-%04d" % i, own_sig=b"Z" * 16,
            )
            batch.append(entry.encode())
        store.append_batch(batch)
    """
)


class TestBatchProcessDeath:
    def test_hard_exit_mid_batch(self, tmp_path):
        """The S5 property, process-death half: kill the process inside a
        group-commit burst (no flush, no goodbye); the recovered store is
        a clean per-entry-identical prefix."""
        store_dir = str(tmp_path / "store")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        env["ADLP_CRASHPOINT"] = "wal.batch_mid:5"
        child = subprocess.Popen(
            [sys.executable, "-c", _BATCH_CHILD_SCRIPT, store_dir],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
        assert child.returncode == CRASH_EXIT_STATUS

        recovered = DurableLogStore(store_dir, **GEOMETRY)
        n = len(recovered)
        assert n > 0
        # The recovered entries are exactly the deterministic prefix 1..n
        # -- a mid-burst death never reorders or tears a record.
        seqs = [LogEntry.decode(r).seq for r in recovered.records()]
        assert seqs == list(range(1, n + 1))
        reference = reference_store(tmp_path, recovered.records())
        assert recovered.head() == reference.head()
        assert recovered.merkle_root() == reference.merkle_root()
        recovered.verify()
        recovered.close()
        reference.close()
