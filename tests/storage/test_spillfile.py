"""Disk spill FIFO: ordering, restart resume, torn tails, space reclaim."""

from __future__ import annotations

import os

import pytest

from repro.storage.crashpoints import SimulatedCrash, arm
from repro.storage.spillfile import DiskSpillFile


def spill_path(tmp_path) -> str:
    return str(tmp_path / "spill.dat")


class TestFifo:
    def test_append_peek_consume_order(self, tmp_path):
        spill = DiskSpillFile(spill_path(tmp_path))
        for payload in (b"one", b"two", b"three"):
            spill.append(payload)
        assert len(spill) == 3
        seen = []
        while len(spill):
            seen.append(spill.peek())
            spill.consume()
        assert seen == [b"one", b"two", b"three"]
        spill.close()

    def test_consume_empty_raises(self, tmp_path):
        spill = DiskSpillFile(spill_path(tmp_path))
        assert spill.peek() is None
        with pytest.raises(IndexError):
            spill.consume()
        spill.close()

    def test_drain_reclaims_disk_space(self, tmp_path):
        path = spill_path(tmp_path)
        spill = DiskSpillFile(path)
        for i in range(5):
            spill.append(b"x" * 100)
        while len(spill):
            spill.consume()
        spill.close()
        assert os.path.getsize(path) == 0


class TestRestart:
    def test_pending_records_survive_reopen(self, tmp_path):
        path = spill_path(tmp_path)
        spill = DiskSpillFile(path)
        for payload in (b"a", b"b", b"c"):
            spill.append(payload)
        spill.close()
        reopened = DiskSpillFile(path)
        assert len(reopened) == 3
        assert reopened.peek() == b"a"
        reopened.close()

    def test_consumed_records_stay_consumed_across_restart(self, tmp_path):
        """The sidecar offset file prevents the restart-duplicate bug:
        re-sending already-delivered evidence would fabricate duplicate
        entries and false ``replayed_sequence`` verdicts."""
        path = spill_path(tmp_path)
        spill = DiskSpillFile(path)
        for payload in (b"sent-1", b"sent-2", b"pending-3", b"pending-4"):
            spill.append(payload)
        spill.consume()
        spill.consume()
        spill.close()
        reopened = DiskSpillFile(path)
        assert len(reopened) == 2
        assert reopened.peek() == b"pending-3"
        reopened.consume()
        assert reopened.peek() == b"pending-4"
        reopened.close()

    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        path = spill_path(tmp_path)
        spill = DiskSpillFile(path)
        spill.append(b"whole")
        spill.append(b"doomed")
        spill.close()
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) - 3)
        reopened = DiskSpillFile(path)
        assert len(reopened) == 1
        assert reopened.peek() == b"whole"
        reopened.close()

    def test_crash_mid_spill_write(self, tmp_path):
        path = spill_path(tmp_path)
        spill = DiskSpillFile(path)
        spill.append(b"durable")
        arm("spill.mid_record")
        with pytest.raises(SimulatedCrash):
            spill.append(b"torn-in-half")
        reopened = DiskSpillFile(path)
        assert len(reopened) == 1
        assert reopened.peek() == b"durable"
        reopened.close()


class TestSidecarRecovery:
    """The read-offset sidecar is bookkeeping, never evidence: a torn or
    stale offset must cost at most duplicate re-sends (auditable), never
    discard spilled records."""

    def test_stale_offset_off_a_record_boundary_rescans_from_zero(
        self, tmp_path
    ):
        path = spill_path(tmp_path)
        spill = DiskSpillFile(path)
        for payload in (b"alpha", b"bravo", b"charlie"):
            spill.append(payload)
        spill.close()
        # Corrupt the sidecar to point mid-record: a naive reopen would
        # trip the CRC check immediately and truncate everything after
        # the bogus offset -- evidence lost to a bookkeeping file.
        with open(path + ".offset", "wb") as f:
            f.write((3).to_bytes(8, "little"))
        reopened = DiskSpillFile(path)
        assert len(reopened) == 3  # worst case: duplicates, never loss
        assert reopened.peek() == b"alpha"
        assert os.path.getsize(path) > 0  # nothing truncated away
        reopened.close()

    def test_offset_past_eof_is_clamped(self, tmp_path):
        path = spill_path(tmp_path)
        spill = DiskSpillFile(path)
        spill.append(b"only")
        spill.close()
        with open(path + ".offset", "wb") as f:
            f.write((10_000).to_bytes(8, "little"))
        reopened = DiskSpillFile(path)
        # Clamped to EOF: scan finds nothing pending there, and the
        # boundary-check self-heal rescans from 0 -- the record survives.
        assert len(reopened) == 1
        assert reopened.peek() == b"only"
        reopened.close()

    def test_torn_offset_write_rescans_from_zero(self, tmp_path):
        path = spill_path(tmp_path)
        spill = DiskSpillFile(path)
        spill.append(b"kept-1")
        spill.append(b"kept-2")
        spill.consume()  # sidecar now points at kept-2
        spill.close()
        with open(path + ".offset", "wb") as f:
            f.write(b"\x01\x02")  # torn: fewer than 8 bytes
        reopened = DiskSpillFile(path)
        # A torn offset reads as 0: both records come back (kept-1 is a
        # duplicate re-send, which the auditor flags, never silent loss).
        assert len(reopened) == 2
        assert reopened.peek() == b"kept-1"
        reopened.close()

    def test_stale_offset_with_torn_tail_recovers_both(self, tmp_path):
        path = spill_path(tmp_path)
        spill = DiskSpillFile(path)
        for payload in (b"first", b"second"):
            spill.append(payload)
        spill.close()
        with open(path, "ab") as f:
            f.write(b"\x40\x00\x00\x00partial")  # torn tail record
        with open(path + ".offset", "wb") as f:
            f.write((2).to_bytes(8, "little"))  # and a bogus offset
        reopened = DiskSpillFile(path)
        assert len(reopened) == 2
        assert reopened.peek() == b"first"
        reopened.consume()
        assert reopened.peek() == b"second"
        reopened.close()


class TestBatchPaths:
    """append_many / peek_many / consume_many: the shedding client's
    batched park-and-drain surface."""

    def test_append_many_preserves_fifo_with_append(self, tmp_path):
        path = spill_path(tmp_path)
        spill = DiskSpillFile(path)
        spill.append(b"solo")
        spill.append_many([b"batch-1", b"batch-2", b"batch-3"])
        assert len(spill) == 4
        assert spill.peek_many(10) == [
            b"solo", b"batch-1", b"batch-2", b"batch-3"
        ]
        spill.close()

    def test_peek_many_does_not_consume(self, tmp_path):
        spill = DiskSpillFile(spill_path(tmp_path))
        spill.append_many([b"a", b"b"])
        assert spill.peek_many(1) == [b"a"]
        assert len(spill) == 2
        assert spill.peek_many(0) == []
        spill.close()

    def test_consume_many_bounds(self, tmp_path):
        spill = DiskSpillFile(spill_path(tmp_path))
        spill.append_many([b"a", b"b", b"c"])
        spill.consume_many(2)
        assert spill.peek() == b"c"
        with pytest.raises(IndexError):
            spill.consume_many(2)
        spill.consume_many(0)  # no-op, not an error
        assert len(spill) == 1
        spill.close()

    def test_append_many_survives_reopen(self, tmp_path):
        path = spill_path(tmp_path)
        spill = DiskSpillFile(path)
        spill.append_many([b"x%d" % i for i in range(10)])
        spill.consume_many(4)
        spill.close()
        reopened = DiskSpillFile(path)
        assert len(reopened) == 6
        assert reopened.peek() == b"x4"
        reopened.close()
