"""Disk spill FIFO: ordering, restart resume, torn tails, space reclaim."""

from __future__ import annotations

import os

import pytest

from repro.storage.crashpoints import SimulatedCrash, arm
from repro.storage.spillfile import DiskSpillFile


def spill_path(tmp_path) -> str:
    return str(tmp_path / "spill.dat")


class TestFifo:
    def test_append_peek_consume_order(self, tmp_path):
        spill = DiskSpillFile(spill_path(tmp_path))
        for payload in (b"one", b"two", b"three"):
            spill.append(payload)
        assert len(spill) == 3
        seen = []
        while len(spill):
            seen.append(spill.peek())
            spill.consume()
        assert seen == [b"one", b"two", b"three"]
        spill.close()

    def test_consume_empty_raises(self, tmp_path):
        spill = DiskSpillFile(spill_path(tmp_path))
        assert spill.peek() is None
        with pytest.raises(IndexError):
            spill.consume()
        spill.close()

    def test_drain_reclaims_disk_space(self, tmp_path):
        path = spill_path(tmp_path)
        spill = DiskSpillFile(path)
        for i in range(5):
            spill.append(b"x" * 100)
        while len(spill):
            spill.consume()
        spill.close()
        assert os.path.getsize(path) == 0


class TestRestart:
    def test_pending_records_survive_reopen(self, tmp_path):
        path = spill_path(tmp_path)
        spill = DiskSpillFile(path)
        for payload in (b"a", b"b", b"c"):
            spill.append(payload)
        spill.close()
        reopened = DiskSpillFile(path)
        assert len(reopened) == 3
        assert reopened.peek() == b"a"
        reopened.close()

    def test_consumed_records_stay_consumed_across_restart(self, tmp_path):
        """The sidecar offset file prevents the restart-duplicate bug:
        re-sending already-delivered evidence would fabricate duplicate
        entries and false ``replayed_sequence`` verdicts."""
        path = spill_path(tmp_path)
        spill = DiskSpillFile(path)
        for payload in (b"sent-1", b"sent-2", b"pending-3", b"pending-4"):
            spill.append(payload)
        spill.consume()
        spill.consume()
        spill.close()
        reopened = DiskSpillFile(path)
        assert len(reopened) == 2
        assert reopened.peek() == b"pending-3"
        reopened.consume()
        assert reopened.peek() == b"pending-4"
        reopened.close()

    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        path = spill_path(tmp_path)
        spill = DiskSpillFile(path)
        spill.append(b"whole")
        spill.append(b"doomed")
        spill.close()
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) - 3)
        reopened = DiskSpillFile(path)
        assert len(reopened) == 1
        assert reopened.peek() == b"whole"
        reopened.close()

    def test_crash_mid_spill_write(self, tmp_path):
        path = spill_path(tmp_path)
        spill = DiskSpillFile(path)
        spill.append(b"durable")
        arm("spill.mid_record")
        with pytest.raises(SimulatedCrash):
            spill.append(b"torn-in-half")
        reopened = DiskSpillFile(path)
        assert len(reopened) == 1
        assert reopened.peek() == b"durable"
        reopened.close()
