"""The write-ahead log: framing, rotation, torn tails, tamper evidence."""

from __future__ import annotations

import os

import pytest

from repro.errors import LogIntegrityError
from repro.storage.crashpoints import SimulatedCrash, arm
from repro.storage.wal import (
    SEGMENT_HEADER_SIZE,
    FsyncPolicy,
    WriteAheadLog,
    scan,
    segment_paths,
)


def wal_dir(tmp_path) -> str:
    return str(tmp_path / "wal")


def replay(directory):
    """Reopen a WAL and collect every replayed record."""
    seen = []
    wal = WriteAheadLog(directory, fsync="never", replay_sink=seen.append)
    return wal, seen


class TestRoundTrip:
    def test_records_survive_reopen(self, tmp_path):
        d = wal_dir(tmp_path)
        wal = WriteAheadLog(d, fsync="never")
        payloads = [b"alpha", b"", b"x" * 300]
        for i, payload in enumerate(payloads):
            wal.append(i + 1, payload)
        wal.close()

        reopened, seen = replay(d)
        reopened.close()
        assert [(r.rtype, r.payload) for r in seen] == [
            (1, b"alpha"),
            (2, b""),
            (3, b"x" * 300),
        ]

    def test_append_after_reopen_continues_log(self, tmp_path):
        d = wal_dir(tmp_path)
        wal = WriteAheadLog(d, fsync="never")
        wal.append(1, b"first")
        wal.close()
        wal2, seen = replay(d)
        wal2.append(1, b"second")
        wal2.close()
        records, torn = scan(d)
        assert [r.payload for r in records] == [b"first", b"second"]
        assert torn == 0

    def test_fsync_policy_coercion(self):
        assert FsyncPolicy.of("always").mode == "always"
        assert FsyncPolicy.of(None).mode == "interval"
        policy = FsyncPolicy(mode="interval", interval=0.5)
        assert FsyncPolicy.of(policy) is policy
        with pytest.raises(ValueError):
            FsyncPolicy.of("sometimes")


class TestRotation:
    def test_rotates_into_consecutive_segments(self, tmp_path):
        d = wal_dir(tmp_path)
        wal = WriteAheadLog(d, fsync="never", segment_max_bytes=256)
        for i in range(20):
            wal.append(1, b"payload-%02d" % i)
        assert wal.segment_index > 1
        wal.close()
        indices = [index for index, _ in segment_paths(d)]
        assert indices == list(range(1, len(indices) + 1))
        records, torn = scan(d)
        assert len(records) == 20 and torn == 0

    def test_missing_segment_is_detected(self, tmp_path):
        d = wal_dir(tmp_path)
        wal = WriteAheadLog(d, fsync="never", segment_max_bytes=128)
        for i in range(20):
            wal.append(1, b"payload-%02d" % i)
        wal.close()
        paths = segment_paths(d)
        assert len(paths) >= 3
        os.remove(paths[1][1])  # a middle segment vanishes
        with pytest.raises(LogIntegrityError):
            scan(d)


class TestTornTail:
    def _torn_wal(self, tmp_path, cut: int):
        d = wal_dir(tmp_path)
        wal = WriteAheadLog(d, fsync="never")
        for i in range(5):
            wal.append(1, b"payload-%02d" % i)
        wal.close()
        path = segment_paths(d)[-1][1]
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.truncate(size - cut)
        return d, size

    def test_lenient_scan_reports_torn_bytes(self, tmp_path):
        d, _ = self._torn_wal(tmp_path, cut=3)
        records, torn = scan(d, strict=False)
        assert len(records) == 4
        assert torn > 0

    def test_strict_scan_refuses_torn_tail(self, tmp_path):
        d, _ = self._torn_wal(tmp_path, cut=3)
        with pytest.raises(LogIntegrityError):
            scan(d, strict=True)

    def test_reopen_truncates_and_resumes(self, tmp_path):
        d, _ = self._torn_wal(tmp_path, cut=3)
        wal, seen = replay(d)
        assert len(seen) == 4
        assert wal.truncated_bytes > 0
        wal.append(1, b"after-crash")
        wal.close()
        records, torn = scan(d, strict=True)  # strict: the tear is healed
        assert torn == 0
        assert [r.payload for r in records][-1] == b"after-crash"

    def test_corrupt_sealed_segment_is_tamper_not_tear(self, tmp_path):
        """Only the *last* segment may have a torn tail; damage anywhere
        else survived an fsync-at-rotation and must raise."""
        d = wal_dir(tmp_path)
        wal = WriteAheadLog(d, fsync="never", segment_max_bytes=128)
        for i in range(20):
            wal.append(1, b"payload-%02d" % i)
        wal.close()
        first = segment_paths(d)[0][1]
        with open(first, "r+b") as f:
            f.seek(SEGMENT_HEADER_SIZE + 6)
            byte = f.read(1)
            f.seek(SEGMENT_HEADER_SIZE + 6)
            f.write(bytes([byte[0] ^ 0x01]))
        with pytest.raises(LogIntegrityError):
            scan(d, strict=False)  # even the lenient scan refuses
        with pytest.raises(LogIntegrityError):
            WriteAheadLog(d, fsync="never")


class TestCrashpoints:
    def test_mid_record_crash_recovers_prefix(self, tmp_path):
        d = wal_dir(tmp_path)
        wal = WriteAheadLog(d, fsync="never")
        wal.append(1, b"safe-one")
        wal.append(1, b"safe-two")
        arm("wal.mid_record")
        with pytest.raises(SimulatedCrash):
            wal.append(1, b"torn")
        wal.abandon()

        reopened, seen = replay(d)
        reopened.close()
        assert [r.payload for r in seen] == [b"safe-one", b"safe-two"]

    def test_pre_fsync_crash_keeps_flushed_record(self, tmp_path):
        """wal.pre_fsync fires after the record bytes left the process;
        the record is complete on disk, so recovery keeps it."""
        d = wal_dir(tmp_path)
        wal = WriteAheadLog(d, fsync="always")
        wal.append(1, b"durable")
        arm("wal.pre_fsync")
        with pytest.raises(SimulatedCrash):
            wal.append(1, b"flushed-not-synced")
        wal.abandon()
        _, seen = replay(d)
        assert [r.payload for r in seen] == [b"durable", b"flushed-not-synced"]

    def test_pre_rotate_crash(self, tmp_path):
        d = wal_dir(tmp_path)
        wal = WriteAheadLog(d, fsync="never", segment_max_bytes=64)
        arm("wal.pre_rotate")
        attempted = []
        with pytest.raises(SimulatedCrash):
            for i in range(10):
                attempted.append(b"payload-%02d" % i)
                wal.append(1, attempted[-1])
        wal.abandon()
        _, seen = replay(d)
        # The record whose append triggered the rotation was fully written
        # and fsynced before the crashpoint; only the segment handover was
        # interrupted, so every attempted record survives.
        assert [r.payload for r in seen] == attempted
