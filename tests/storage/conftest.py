"""Storage-suite fixtures: crashpoints never leak between tests."""

from __future__ import annotations

import pytest

from repro.storage import crashpoints


@pytest.fixture(autouse=True)
def clean_crashpoints():
    crashpoints.reset()
    yield
    crashpoints.reset()
