"""DurableLogStore: LogStore semantics, recovery equality, tamper evidence."""

from __future__ import annotations

import os

import pytest

from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.log_server import LogServer
from repro.core.log_store import InMemoryLogStore
from repro.errors import LogIntegrityError
from repro.storage.durable_store import (
    CHECKPOINT_SUBDIR,
    WAL_SUBDIR,
    DurableLogStore,
)
from repro.storage.wal import SEGMENT_HEADER_SIZE, segment_paths


def make_records(n: int):
    return [b"record-%04d-" % i + b"x" * (i % 7) for i in range(n)]


def make_entry(i: int) -> LogEntry:
    return LogEntry(
        component_id="/pub",
        topic="/t",
        type_name="std/String",
        direction=Direction.OUT,
        seq=i,
        timestamp=float(i),
        scheme=Scheme.ADLP,
        data=b"payload-%04d" % i,
        own_sig=b"\x5a" * 16,
    )


def open_store(tmp_path, **kwargs):
    kwargs.setdefault("fsync", "never")
    kwargs.setdefault("checkpoint_every", 10)
    return DurableLogStore(str(tmp_path / "store"), **kwargs)


class TestLogStoreSemantics:
    def test_matches_in_memory_store(self, tmp_path):
        durable = open_store(tmp_path)
        memory = InMemoryLogStore()
        for record in make_records(25):
            assert durable.append(record) == memory.append(record)
        assert len(durable) == len(memory)
        assert durable.total_bytes == memory.total_bytes
        assert durable.head() == memory.head()
        assert durable.records() == memory.records()
        durable.verify()
        durable.close()

    def test_reopen_restores_identical_state(self, tmp_path):
        durable = open_store(tmp_path)
        for record in make_records(25):
            durable.append(record)
        head, count, total = durable.head(), len(durable), durable.total_bytes
        root = durable.merkle_root()
        durable.close()

        reopened = open_store(tmp_path)
        assert (
            reopened.head(),
            len(reopened),
            reopened.total_bytes,
            reopened.merkle_root(),
        ) == (head, count, total, root)
        # Recovery is checkpoint-anchored: only the post-checkpoint tail
        # was chain-re-verified.
        assert reopened.recovery.checkpoint_entries == 20
        assert reopened.recovery.replayed == 5
        assert reopened.recovery.truncated_bytes == 0
        reopened.verify()
        reopened.close()

    def test_append_continues_recovered_chain(self, tmp_path):
        records = make_records(30)
        durable = open_store(tmp_path)
        for record in records[:17]:
            durable.append(record)
        durable.close()
        reopened = open_store(tmp_path)
        for record in records[17:]:
            reopened.append(record)
        reference = InMemoryLogStore()
        for record in records:
            reference.append(record)
        assert reopened.head() == reference.head()
        reopened.verify()
        reopened.close()

    def test_key_records_survive_restart_without_touching_chain(self, tmp_path):
        durable = open_store(tmp_path)
        durable.append(b"entry-before")
        head_before = durable.head()
        durable.append_key("/pub", b"\x01\x02\x03")
        durable.append_key("/pub", b"\x01\x02\x03")  # idempotent
        assert durable.head() == head_before  # keys are unchained
        durable.close()
        reopened = open_store(tmp_path)
        assert reopened.recovered_keys == {"/pub": b"\x01\x02\x03"}
        assert len(reopened) == 1
        reopened.close()

    def test_checkpoint_cadence_and_manual_checkpoint(self, tmp_path):
        durable = open_store(tmp_path, checkpoint_every=8)
        for record in make_records(20):
            durable.append(record)
        assert durable.last_checkpoint_entries == 16  # appends 8 and 16
        durable.checkpoint()
        assert durable.last_checkpoint_entries == 20
        durable.close()


class TestTornTail:
    def test_torn_tail_truncates_never_corrupts(self, tmp_path):
        durable = open_store(tmp_path)
        records = make_records(12)
        for record in records:
            durable.append(record)
        durable.close()
        wal_path = segment_paths(
            str(tmp_path / "store" / WAL_SUBDIR)
        )[-1][1]
        with open(wal_path, "r+b") as f:
            f.truncate(os.path.getsize(wal_path) - 5)

        reopened = open_store(tmp_path)
        assert reopened.recovery.truncated_bytes > 0
        assert len(reopened) == 11  # last entry absent, not mangled
        assert reopened.records() == records[:11]
        reference = InMemoryLogStore()
        for record in records[:11]:
            reference.append(record)
        assert reopened.head() == reference.head()
        reopened.verify()  # post-truncation disk state is self-consistent
        reopened.close()

    def test_wal_shorter_than_checkpoint_is_evidence_loss(self, tmp_path):
        durable = open_store(tmp_path, checkpoint_every=10)
        for record in make_records(12):
            durable.append(record)
        durable.close()
        # Wipe the WAL entirely: the checkpoint still promises 10 entries.
        wal_dir = str(tmp_path / "store" / WAL_SUBDIR)
        for _, path in segment_paths(wal_dir):
            os.remove(path)
        with pytest.raises(LogIntegrityError):
            open_store(tmp_path)


class TestTamperDetection:
    """Satellite: flipped bytes anywhere must fail the strict check."""

    def _flip_byte(self, path: str, offset: int) -> None:
        with open(path, "r+b") as f:
            f.seek(offset)
            byte = f.read(1)
            f.seek(offset)
            f.write(bytes([byte[0] ^ 0x01]))

    def test_flipped_wal_byte_fails_verify(self, tmp_path):
        durable = open_store(tmp_path)
        for record in make_records(12):
            durable.append(record)
        wal_path = segment_paths(
            str(tmp_path / "store" / WAL_SUBDIR)
        )[-1][1]
        self._flip_byte(wal_path, SEGMENT_HEADER_SIZE + 9)
        with pytest.raises(LogIntegrityError):
            durable.verify()
        durable.close()

    def test_flipped_sealed_segment_byte_fails_recovery(self, tmp_path):
        durable = open_store(tmp_path, segment_max_bytes=256)
        for record in make_records(30):
            durable.append(record)
        durable.close()
        sealed = segment_paths(str(tmp_path / "store" / WAL_SUBDIR))[0][1]
        self._flip_byte(sealed, SEGMENT_HEADER_SIZE + 9)
        with pytest.raises(LogIntegrityError):
            open_store(tmp_path, segment_max_bytes=256)

    def test_flipped_checkpoint_byte_fails_verify(self, tmp_path):
        durable = open_store(tmp_path, checkpoint_every=5)
        for record in make_records(12):
            durable.append(record)
        durable.close()
        ckpt_dir = str(tmp_path / "store" / CHECKPOINT_SUBDIR)
        newest = sorted(os.listdir(ckpt_dir))[-1]
        self._flip_byte(os.path.join(ckpt_dir, newest), 30)
        # Lenient recovery still works (it falls back / replays the WAL) ...
        reopened = open_store(tmp_path, checkpoint_every=5)
        assert len(reopened) == 12
        # ... but the tamper check reports the damaged checkpoint.
        with pytest.raises(LogIntegrityError):
            reopened.verify()
        reopened.close()

    def test_forged_checkpoint_head_fails_recovery(self, tmp_path):
        """A checkpoint whose chain head disagrees with the WAL prefix is
        rejected outright -- it would otherwise vouch for a different
        history."""
        from repro.crypto.merkle import MerkleFrontier
        from repro.storage.checkpoint import Checkpoint, CheckpointManager

        durable = open_store(tmp_path, checkpoint_every=0)
        for record in make_records(6):
            durable.append(record)
        frontier = MerkleFrontier()
        for record in make_records(6):
            frontier.append(record)
        durable.close()
        manager = CheckpointManager(str(tmp_path / "store" / CHECKPOINT_SUBDIR))
        manager.write(
            Checkpoint(
                entry_count=6,
                chain_head=b"\x66" * 32,  # a lie
                total_bytes=sum(len(r) for r in make_records(6)),
                frontier=frontier,
                extra={},
            )
        )
        with pytest.raises(LogIntegrityError):
            open_store(tmp_path)


class TestServerAfterTamper:
    """Satellite: after recovery, verify_integrity() raises on tamper while
    the auditor still classifies the untampered in-memory entries."""

    def test_audit_still_works_while_verify_raises(self, tmp_path, keypool):
        from repro.audit import Auditor

        store = DurableLogStore(
            str(tmp_path / "store"), fsync="never", checkpoint_every=4
        )
        server = LogServer(store)
        server.register_key("/pub", keypool[0].public)
        entries = [make_entry(i) for i in range(1, 11)]
        for entry in entries:
            server.submit(entry)
        server.close()

        # Recover cleanly, then flip a byte in a checkpoint file.
        ckpt_dir = str(tmp_path / "store" / CHECKPOINT_SUBDIR)
        newest = os.path.join(ckpt_dir, sorted(os.listdir(ckpt_dir))[-1])
        data = bytearray(open(newest, "rb").read())
        data[25] ^= 0x10
        open(newest, "wb").write(bytes(data))

        recovered = LogServer(
            DurableLogStore(
                str(tmp_path / "store"), fsync="never", checkpoint_every=4
            )
        )
        assert len(recovered) == 10
        with pytest.raises(LogIntegrityError):
            recovered.verify_integrity()
        auditor = Auditor.for_server(recovered)
        # audit_server verifies first, so it refuses the tampered store ...
        with pytest.raises(LogIntegrityError):
            auditor.audit_server(recovered)
        # ... but the recovered entries themselves are untampered, and
        # classifying them directly still works and flags nothing new.
        report = auditor.audit(recovered.entries())
        assert len(report.classified) == 10
        recovered.close()
