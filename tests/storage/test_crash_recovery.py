"""Crash-injection: every named crashpoint plus a real SIGKILL.

The acceptance bar: recovery after a crash at *any* instant yields a store
whose ``merkle_root()``, entry count, and audit verdicts equal those of an
uncrashed reference run fed the same prefix of appends -- minus at most the
single torn-tail entry, which is absent, never corrupt.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.audit import Auditor
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.log_server import LogServer
from repro.core.log_store import InMemoryLogStore
from repro.storage.crashpoints import (
    CRASH_EXIT_STATUS,
    KNOWN_CRASHPOINTS,
    SimulatedCrash,
    arm,
    reset,
)
from repro.storage.durable_store import DurableLogStore
from repro.storage.wal import segment_paths

#: Store geometry shared by the crashing and the reference run; small
#: segments and a short cadence make every crashpoint reachable quickly.
GEOMETRY = dict(fsync="always", segment_max_bytes=512, checkpoint_every=6)

STORE_CRASHPOINTS = [
    "wal.mid_record",
    "wal.pre_fsync",
    "wal.pre_rotate",
    "checkpoint.partial",
    "checkpoint.pre_rename",
]


def make_records(n: int):
    return [b"record-%04d-" % i + b"y" * (i % 11) for i in range(n)]


def make_entry(i: int) -> LogEntry:
    return LogEntry(
        component_id="/pub",
        topic="/t",
        type_name="std/String",
        direction=Direction.OUT,
        seq=i,
        timestamp=float(i),
        scheme=Scheme.ADLP,
        data=b"payload-%04d" % i,
        own_sig=b"\x5a" * 16,
    )


def reference_store(tmp_path, records):
    ref = DurableLogStore(str(tmp_path / "reference"), **GEOMETRY)
    for record in records:
        ref.append(record)
    return ref


class TestNamedCrashpoints:
    def test_every_store_crashpoint_is_known(self):
        assert set(STORE_CRASHPOINTS) <= set(KNOWN_CRASHPOINTS)

    @pytest.mark.parametrize("point", STORE_CRASHPOINTS)
    @pytest.mark.parametrize("fire_on", [1, 3])
    def test_recovery_equals_uncrashed_reference(self, tmp_path, point, fire_on):
        records = make_records(60)
        arm(point, action="raise", fire_on=fire_on)
        store = DurableLogStore(str(tmp_path / "crashing"), **GEOMETRY)
        accepted = 0
        crashed = False
        for record in records:
            try:
                store.append(record)
                accepted += 1
            except SimulatedCrash:
                crashed = True
                break
        assert crashed, f"{point} (fire_on={fire_on}) never fired in 60 appends"
        store.abandon()
        reset()

        recovered = DurableLogStore(str(tmp_path / "crashing"), **GEOMETRY)
        n = len(recovered)
        # The in-flight append is the only entry allowed to differ: it is
        # either fully durable (post-write crashpoints) or wholly absent
        # (torn tail) -- never partially there.
        assert accepted <= n <= accepted + 1
        if point == "wal.mid_record":
            assert n == accepted  # torn mid-write: the record must be gone
            assert recovered.recovery.truncated_bytes > 0

        reference = reference_store(tmp_path, records[:n])
        assert recovered.head() == reference.head()
        assert recovered.merkle_root() == reference.merkle_root()
        assert recovered.records() == reference.records()
        assert recovered.total_bytes == reference.total_bytes
        recovered.verify()
        recovered.close()
        reference.close()

    @pytest.mark.parametrize("point", STORE_CRASHPOINTS)
    def test_recovered_store_accepts_new_appends(self, tmp_path, point):
        records = make_records(40)
        arm(point, action="raise", fire_on=2)
        store = DurableLogStore(str(tmp_path / "crashing"), **GEOMETRY)
        crashed = False
        for record in records:
            try:
                store.append(record)
            except SimulatedCrash:
                crashed = True
                break
        assert crashed
        store.abandon()
        reset()

        recovered = DurableLogStore(str(tmp_path / "crashing"), **GEOMETRY)
        n = len(recovered)
        for record in records[n:]:
            recovered.append(record)
        reference = reference_store(tmp_path, records)
        assert recovered.head() == reference.head()
        assert recovered.merkle_root() == reference.merkle_root()
        recovered.verify()
        recovered.close()
        reference.close()


class TestServerCrashRecovery:
    """Crash the whole trusted logger mid-ingest; audit verdicts must be
    indistinguishable from a never-crashed run over the same prefix."""

    def test_audit_verdicts_match_uncrashed_run(self, tmp_path, keypool):
        entries = [make_entry(i) for i in range(1, 31)]
        arm("wal.mid_record", action="raise", fire_on=20)
        store = DurableLogStore(str(tmp_path / "crashing"), **GEOMETRY)
        server = LogServer(store)
        server.register_key("/pub", keypool[0].public)
        crashed = False
        for entry in entries:
            try:
                server.submit(entry)
            except SimulatedCrash:
                crashed = True
                break
        assert crashed
        store.abandon()
        reset()

        recovered = LogServer(
            DurableLogStore(str(tmp_path / "crashing"), **GEOMETRY)
        )
        n = len(recovered)
        assert recovered.public_key("/pub") == keypool[0].public
        recovered.verify_integrity()

        reference = LogServer(InMemoryLogStore())
        reference.register_key("/pub", keypool[0].public)
        for entry in entries[:n]:
            reference.submit(entry)

        assert recovered.merkle_root() == reference.merkle_root()
        assert recovered.total_bytes == reference.total_bytes
        assert recovered.bytes_by_component() == reference.bytes_by_component()

        def verdict_set(server):
            report = Auditor.for_server(server).audit_server(server)
            return {
                (c.component_id, c.entry.topic, c.entry.seq, c.verdict, c.reasons)
                for c in report.classified
            }

        assert verdict_set(recovered) == verdict_set(reference)
        recovered.close()

    def test_double_crash(self, tmp_path, keypool):
        """Crash, recover, crash again during the catch-up -- the second
        recovery must still reproduce a clean prefix."""
        entries = [make_entry(i) for i in range(1, 31)]

        def ingest(from_index: int) -> int:
            store = DurableLogStore(str(tmp_path / "crashing"), **GEOMETRY)
            server = LogServer(store)
            server.register_key("/pub", keypool[0].public)
            count = len(server)
            try:
                for entry in entries[count:]:
                    server.submit(entry)
                    count += 1
            except SimulatedCrash:
                store.abandon()
                return -1
            server.close()
            return count

        arm("checkpoint.partial", action="raise", fire_on=2)
        assert ingest(0) == -1
        reset()
        arm("wal.mid_record", action="raise", fire_on=5)
        assert ingest(0) == -1
        reset()
        assert ingest(0) == 30

        recovered = LogServer(
            DurableLogStore(str(tmp_path / "crashing"), **GEOMETRY)
        )
        reference = LogServer(InMemoryLogStore())
        reference.register_key("/pub", keypool[0].public)
        for entry in entries:
            reference.submit(entry)
        assert len(recovered) == 30
        assert recovered.merkle_root() == reference.merkle_root()
        recovered.verify_integrity()
        recovered.close()


_CHILD_SCRIPT = textwrap.dedent(
    """
    import sys
    store_dir = sys.argv[1]
    from repro.core.entries import Direction, LogEntry, Scheme
    from repro.storage.durable_store import DurableLogStore

    store = DurableLogStore(
        store_dir, fsync="always", segment_max_bytes=512, checkpoint_every=6
    )
    i = len(store)
    print("READY", flush=True)
    while True:
        i += 1
        entry = LogEntry(
            component_id="/pub", topic="/t", type_name="std/String",
            direction=Direction.OUT, seq=i, timestamp=float(i),
            scheme=Scheme.ADLP, data=b"payload-%04d" % i, own_sig=b"Z" * 16,
        )
        store.append(entry.encode())
    """
)


def _spawn_child(store_dir: str, extra_env=None) -> subprocess.Popen:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    env.pop("ADLP_CRASHPOINT", None)
    if extra_env:
        env.update(extra_env)
    return subprocess.Popen(
        [sys.executable, "-c", _CHILD_SCRIPT, store_dir],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


def _wait_for_entries(store_dir: str, min_bytes: int, timeout: float = 30.0):
    wal_dir = os.path.join(store_dir, "wal")
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            total = sum(
                os.path.getsize(path) for _, path in segment_paths(wal_dir)
            )
        except Exception:  # directory not created yet, file mid-rename, ...
            total = 0
        if total >= min_bytes:
            return
        time.sleep(0.01)
    raise AssertionError("child process never wrote enough WAL data")


def _check_recovered_prefix(store_dir: str, tmp_path) -> int:
    """Recover ``store_dir`` and prove it equals an uncrashed run."""
    recovered = DurableLogStore(store_dir, **GEOMETRY)
    n = len(recovered)
    assert n > 0
    # The recovered entries are exactly the deterministic prefix 1..n.
    seqs = [LogEntry.decode(r).seq for r in recovered.records()]
    assert seqs == list(range(1, n + 1))
    reference = reference_store(tmp_path, recovered.records())
    assert recovered.head() == reference.head()
    assert recovered.merkle_root() == reference.merkle_root()
    recovered.verify()
    recovered.close()
    reference.close()
    return n


class TestProcessDeath:
    def test_sigkill_mid_ingest(self, tmp_path):
        """The real thing: SIGKILL the logger process mid-append."""
        store_dir = str(tmp_path / "store")
        child = _spawn_child(store_dir)
        try:
            assert child.stdout.readline().strip() == b"READY"
            _wait_for_entries(store_dir, min_bytes=2048)
            child.kill()  # SIGKILL: no atexit, no flush, no goodbye
            child.wait(timeout=10)
        finally:
            if child.poll() is None:
                child.kill()
        assert child.returncode == -signal.SIGKILL
        _check_recovered_prefix(store_dir, tmp_path)

    def test_env_armed_crashpoint_kills_subprocess(self, tmp_path):
        """ADLP_CRASHPOINT arms a hard exit (os._exit) in a child process
        -- crash-at-a-named-instant without cooperation from the code
        under test."""
        store_dir = str(tmp_path / "store")
        child = _spawn_child(
            store_dir, extra_env={"ADLP_CRASHPOINT": "wal.mid_record:12"}
        )
        try:
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
        assert child.returncode == CRASH_EXIT_STATUS
        n = _check_recovered_prefix(store_dir, tmp_path)
        assert n < 12  # the torn record and everything after are absent

    def test_sigkill_then_resume_then_sigkill(self, tmp_path):
        """Two generations of crashes; the WAL keeps growing across both."""
        store_dir = str(tmp_path / "store")
        for round_bytes in (1536, 4096):
            child = _spawn_child(store_dir)
            try:
                assert child.stdout.readline().strip() == b"READY"
                _wait_for_entries(store_dir, min_bytes=round_bytes)
                child.kill()
                child.wait(timeout=10)
            finally:
                if child.poll() is None:
                    child.kill()
        _check_recovered_prefix(store_dir, tmp_path)
