"""Checkpoint encoding, atomic commit, pruning, and corruption handling."""

from __future__ import annotations

import os

import pytest

from repro.crypto.merkle import MerkleFrontier
from repro.errors import LogIntegrityError
from repro.storage.checkpoint import Checkpoint, CheckpointManager
from repro.storage.crashpoints import SimulatedCrash, arm


def make_checkpoint(n: int, extra=None) -> Checkpoint:
    frontier = MerkleFrontier()
    for i in range(n):
        frontier.append(b"record-%04d" % i)
    return Checkpoint(
        entry_count=n,
        chain_head=bytes([n % 256]) * 32,
        total_bytes=11 * n,
        frontier=frontier,
        extra=extra or {},
    )


class TestEncoding:
    def test_round_trip(self):
        original = make_checkpoint(7, extra={"keys": {"/pub": "aa55"}})
        decoded = Checkpoint.decode(original.encode())
        assert decoded.entry_count == 7
        assert decoded.chain_head == original.chain_head
        assert decoded.total_bytes == original.total_bytes
        assert decoded.frontier.root() == original.frontier.root()
        assert len(decoded.frontier) == 7
        assert decoded.extra == {"keys": {"/pub": "aa55"}}

    def test_any_flipped_byte_is_detected(self):
        blob = bytearray(make_checkpoint(3).encode())
        blob[len(blob) // 2] ^= 0x40
        with pytest.raises(LogIntegrityError):
            Checkpoint.decode(bytes(blob))


class TestManager:
    def test_write_and_load_latest(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "ckpt"))
        manager.write(make_checkpoint(5))
        manager.write(make_checkpoint(9))
        latest = manager.load_latest()
        assert latest is not None and latest.entry_count == 9

    def test_prunes_to_keep(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "ckpt"), keep=2)
        for n in (3, 6, 9, 12):
            manager.write(make_checkpoint(n))
        assert [n for n, _ in manager.paths()] == [9, 12]

    def test_empty_directory(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "ckpt"))
        assert manager.load_latest() is None
        assert manager.load_all_strict() == []

    def test_corrupt_newest_falls_back_to_previous(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "ckpt"))
        manager.write(make_checkpoint(5))
        path = manager.write(make_checkpoint(9))
        with open(path, "r+b") as f:
            f.seek(20)
            f.write(b"\xff")
        # Recovery (lenient) skips the damaged file ...
        latest = manager.load_latest()
        assert latest is not None and latest.entry_count == 5
        # ... but the tamper check does not excuse it.
        with pytest.raises(LogIntegrityError):
            manager.load_all_strict()

    def test_tmp_litter_is_ignored_and_removed(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        manager = CheckpointManager(directory)
        manager.write(make_checkpoint(4))
        litter = os.path.join(directory, "checkpoint-000000000009.ckpt.tmp")
        with open(litter, "wb") as f:
            f.write(b"half a checkpoint")
        latest = manager.load_latest()
        assert latest is not None and latest.entry_count == 4
        assert not os.path.exists(litter)


class TestCrashpoints:
    @pytest.mark.parametrize("point", ["checkpoint.partial", "checkpoint.pre_rename"])
    def test_crashed_write_commits_nothing(self, tmp_path, point):
        manager = CheckpointManager(str(tmp_path / "ckpt"))
        manager.write(make_checkpoint(5))
        arm(point)
        with pytest.raises(SimulatedCrash):
            manager.write(make_checkpoint(9))
        # A fresh manager (the restarted process) sees only the old one.
        recovered = CheckpointManager(str(tmp_path / "ckpt"))
        latest = recovered.load_latest()
        assert latest is not None and latest.entry_count == 5
        recovered.load_all_strict()  # the half-written tmp is not tamper
