"""Persisted sequence counters: journal semantics and restart-safe freshness."""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from repro.core.adlp_protocol import AdlpProtocol
from repro.core.log_server import LogServer
from repro.core.log_store import InMemoryLogStore
from repro.storage.seqstate import SequenceStateFile


def state_path(tmp_path) -> str:
    return str(tmp_path / "comp.seqstate")


class TestJournal:
    def test_round_trip(self, tmp_path):
        state = SequenceStateFile(state_path(tmp_path))
        state.record_published("/t", 3)
        state.record_received("/t", "/pub", 7)
        state.close()
        reopened = SequenceStateFile(state_path(tmp_path))
        assert reopened.last_published("/t") == 3
        assert reopened.last_received("/t", "/pub") == 7
        reopened.close()

    def test_unknown_keys_are_zero(self, tmp_path):
        state = SequenceStateFile(state_path(tmp_path))
        assert state.last_published("/other") == 0
        assert state.last_received("/other") == 0
        state.close()

    def test_counters_are_monotonic(self, tmp_path):
        state = SequenceStateFile(state_path(tmp_path))
        state.record_published("/t", 9)
        state.record_published("/t", 4)  # late/out-of-order: must not regress
        state.record_received("/t", "/pub", 9)
        state.record_received("/t", "/pub", 4)
        assert state.last_published("/t") == 9
        assert state.last_received("/t", "/pub") == 9
        state.close()

    def test_per_key_maximum_across_topics_and_publishers(self, tmp_path):
        state = SequenceStateFile(state_path(tmp_path))
        state.record_published("/a", 2)
        state.record_published("/b", 5)
        state.record_received("/a", "/pub1", 3)
        state.record_received("/a", "/pub2", 8)
        state.close()
        reopened = SequenceStateFile(state_path(tmp_path))
        assert reopened.last_published("/a") == 2
        assert reopened.last_published("/b") == 5
        assert reopened.last_received("/a", "/pub1") == 3
        assert reopened.last_received("/a", "/pub2") == 8
        # publisher=None: max over all publishers on the topic
        assert reopened.last_received("/a") == 8
        reopened.close()

    def test_torn_last_line_is_ignored(self, tmp_path):
        path = state_path(tmp_path)
        state = SequenceStateFile(path)
        state.record_published("/t", 6)
        state.close()
        with open(path, "a", encoding="utf-8") as f:
            f.write("P\t/t\t9")  # crash mid-append: no trailing newline
        reopened = SequenceStateFile(path)
        # Under-resuming is safe (audits as a gap); the torn line must not
        # be trusted.
        assert reopened.last_published("/t") == 6
        reopened.close()

    def test_alien_lines_are_skipped(self, tmp_path):
        path = state_path(tmp_path)
        with open(path, "w", encoding="utf-8") as f:
            f.write("P\t/t\t4\n")
            f.write("garbage line\n")
            f.write("P\t/t\tnot-a-number\n")
            f.write("S\t/t\t/pub\t2\n")
        state = SequenceStateFile(path)
        assert state.last_published("/t") == 4
        assert state.last_received("/t", "/pub") == 2
        state.close()

    def test_compaction_rewrites_grown_journal(self, tmp_path):
        path = state_path(tmp_path)
        with open(path, "w", encoding="utf-8") as f:
            for i in range(1, 5001):
                f.write(f"P\t/t\t{i}\n")
        state = SequenceStateFile(path)
        assert state.last_published("/t") == 5000
        state.close()
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        assert lines == ["P\t/t\t5000"]
        # Compaction must not lose anything across the next restart.
        reopened = SequenceStateFile(path)
        assert reopened.last_published("/t") == 5000
        reopened.close()


class _StubConnection:
    """Just enough Connection for a subscriber protocol: collects ACKs."""

    closed = False

    def __init__(self):
        self.sent = []

    def send_frame(self, frame: bytes) -> None:
        self.sent.append(frame)


@pytest.fixture
def stateful_config(fast_config, tmp_path):
    return replace(fast_config, state_dir=str(tmp_path / "state"))


class TestProtocolIntegration:
    """With ``state_dir`` set, restarts neither reuse nor re-accept seqs."""

    def test_journal_lives_inside_state_dir(self, keypool, stateful_config):
        """Component ids are slash-prefixed ("/pub"); a naive path join
        would escape state_dir into the filesystem root."""
        server = LogServer(InMemoryLogStore())
        protocol = AdlpProtocol(
            "/pub", server, config=stateful_config, keypair=keypool[0]
        )
        path = os.path.abspath(protocol.seq_state.path)
        protocol.close()
        assert path.startswith(os.path.abspath(stateful_config.state_dir) + os.sep)

    def test_publisher_resumes_after_restart(self, tmp_path, keypool, stateful_config):
        server = LogServer(InMemoryLogStore())

        def run_publisher(count: int) -> int:
            protocol = AdlpProtocol(
                "/pub", server, config=stateful_config, keypair=keypool[0]
            )
            pub = protocol.publisher_protocol("/t", "std/String")
            seq = pub.initial_seq()
            for _ in range(count):
                pub.make_frame(seq, b"payload")
                seq += 1
            protocol.close()
            return seq

        assert run_publisher(3) == 4  # started at 1, published 1..3
        # The restarted publisher must not re-sign 1..3.
        protocol = AdlpProtocol(
            "/pub", server, config=stateful_config, keypair=keypool[0]
        )
        assert protocol.publisher_protocol("/t", "std/String").initial_seq() == 4
        protocol.close()

    def test_publisher_without_state_dir_restarts_at_one(
        self, keypool, fast_config
    ):
        server = LogServer(InMemoryLogStore())
        protocol = AdlpProtocol(
            "/pub", server, config=fast_config, keypair=keypool[0]
        )
        assert protocol.publisher_protocol("/t", "std/String").initial_seq() == 1
        protocol.close()

    def test_subscriber_rejects_replay_across_restart(
        self, keypool, stateful_config
    ):
        server = LogServer(InMemoryLogStore())
        pub = AdlpProtocol(
            "/pub", server, config=stateful_config, keypair=keypool[0]
        )
        pub_proto = pub.publisher_protocol("/t", "std/String")
        frames = {
            seq: pub_proto.make_frame(seq, b"msg-%d" % seq) for seq in (1, 2, 3)
        }

        sub = AdlpProtocol(
            "/sub", server, config=stateful_config, keypair=keypool[1]
        )
        sub_proto = sub.subscriber_protocol("/t", "std/String")
        connection = _StubConnection()
        for seq in (1, 2):
            assert sub_proto.on_frame("/pub", connection, frames[seq]) is not None
        sub.close()

        # Restart the subscriber: a replay of seq 2 must be refused, the
        # genuinely fresh seq 3 delivered.
        sub2 = AdlpProtocol(
            "/sub", server, config=stateful_config, keypair=keypool[1]
        )
        sub2_proto = sub2.subscriber_protocol("/t", "std/String")
        assert sub2_proto.on_frame("/pub", connection, frames[2]) is None
        assert sub2_proto.on_frame("/pub", connection, frames[3]) == b"msg-3"
        pub.close()
        sub2.close()
