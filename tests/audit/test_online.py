"""Streaming audit: findings surface during operation, not just post hoc."""

import pytest

from repro.audit.auditor import Topology
from repro.audit.online import OnlineAuditor, OnlineFinding
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.protocol import message_digest
from repro.crypto.keystore import KeyStore
from repro.util.clock import SimulatedClock

TOPOLOGY = Topology(publisher_of={"/t": "/pub"})


@pytest.fixture()
def keystore(keypool):
    store = KeyStore()
    store.register("/pub", keypool[0].public)
    store.register("/sub", keypool[1].public)
    return store


def honest_pair(keypool, seq=1, payload=b"data"):
    digest = message_digest(seq, payload)
    s_x = keypool[0].private.sign_digest(digest)
    s_y = keypool[1].private.sign_digest(digest)
    pub = LogEntry(
        component_id="/pub", topic="/t", type_name="std/String",
        direction=Direction.OUT, seq=seq, scheme=Scheme.ADLP,
        data=payload, own_sig=s_x,
        peer_id="/sub", peer_hash=digest, peer_sig=s_y,
    )
    sub = LogEntry(
        component_id="/sub", topic="/t", type_name="std/String",
        direction=Direction.IN, seq=seq, scheme=Scheme.ADLP,
        data_hash=digest, own_sig=s_y, peer_id="/pub", peer_sig=s_x,
    )
    return pub, sub


class TestHappyStream:
    def test_complete_pairs_judged_immediately(self, keystore, keypool):
        clock = SimulatedClock()
        auditor = OnlineAuditor(keystore, TOPOLOGY, clock=clock)
        pub, sub = honest_pair(keypool)
        auditor.ingest(pub)
        assert auditor.pending_transmissions == 1
        auditor.ingest(sub)
        assert auditor.pending_transmissions == 0
        assert auditor.findings == []
        assert auditor.judged_entries == 2

    def test_order_independent(self, keystore, keypool):
        clock = SimulatedClock()
        auditor = OnlineAuditor(keystore, TOPOLOGY, clock=clock)
        pub, sub = honest_pair(keypool)
        auditor.ingest(sub)  # subscriber's entry first
        auditor.ingest(pub)
        assert auditor.findings == []


class TestGracePeriod:
    def test_one_sided_transmission_flagged_after_grace(self, keystore, keypool):
        clock = SimulatedClock()
        auditor = OnlineAuditor(keystore, TOPOLOGY, grace_period=5.0, clock=clock)
        pub, _ = honest_pair(keypool)
        auditor.ingest(pub)
        auditor.poll()
        assert auditor.findings == []  # counterpart may still arrive
        clock.advance(6.0)
        auditor.poll()
        hidden = [f for f in auditor.findings if f.kind == "hidden"]
        assert len(hidden) == 1
        assert hidden[0].component_id == "/sub"  # the subscriber hid

    def test_late_counterpart_beats_the_clock(self, keystore, keypool):
        clock = SimulatedClock()
        auditor = OnlineAuditor(keystore, TOPOLOGY, grace_period=5.0, clock=clock)
        pub, sub = honest_pair(keypool)
        auditor.ingest(pub)
        clock.advance(4.0)
        auditor.ingest(sub)  # arrives within grace
        clock.advance(10.0)
        auditor.poll()
        assert auditor.findings == []

    def test_drain_judges_everything_now(self, keystore, keypool):
        clock = SimulatedClock()
        auditor = OnlineAuditor(keystore, TOPOLOGY, grace_period=100.0, clock=clock)
        pub, _ = honest_pair(keypool)
        auditor.ingest(pub)
        auditor.drain()
        assert auditor.pending_transmissions == 0
        assert any(f.kind == "hidden" for f in auditor.findings)


class TestStreamingDetection:
    def test_falsified_pair_flagged_on_completion(self, keystore, keypool):
        clock = SimulatedClock()
        found = []
        auditor = OnlineAuditor(
            keystore, TOPOLOGY, clock=clock, on_finding=found.append
        )
        pub, _ = honest_pair(keypool, payload=b"real")
        # subscriber claims different data (self-signed)
        fake_digest = message_digest(1, b"fake")
        sub = LogEntry(
            component_id="/sub", topic="/t", type_name="std/String",
            direction=Direction.IN, seq=1, scheme=Scheme.ADLP,
            data_hash=fake_digest,
            own_sig=keypool[1].private.sign_digest(fake_digest),
            peer_id="/pub", peer_sig=pub.own_sig,
        )
        auditor.ingest(pub)
        auditor.ingest(sub)
        assert [f.kind for f in found].count("invalid") == 1
        assert auditor.flagged_components() == ["/sub"]

    def test_callback_receives_findings(self, keystore, keypool):
        clock = SimulatedClock()
        found = []
        auditor = OnlineAuditor(
            keystore, TOPOLOGY, grace_period=1.0, clock=clock,
            on_finding=found.append,
        )
        pub, _ = honest_pair(keypool)
        auditor.ingest(pub)
        clock.advance(2.0)
        auditor.poll()
        assert found and isinstance(found[0], OnlineFinding)

    def test_attached_to_live_log_server(self, keypool):
        """The watchdog deployment: attach to a LogServer and catch a
        hiding subscriber while the system runs."""
        from repro.adversary import SubscriberBehavior
        from tests.helpers import run_scenario

        # run_scenario builds its own server, so attach via a wrapper run:
        from repro.core import LogServer

        found = []
        result = run_scenario(
            keypool,
            subscriber_behaviors=[SubscriberBehavior(hide_entries=True)],
            publications=2,
        )
        # replay the ingestion stream through an attached online auditor
        server = LogServer()
        for component in result.server.components():
            server.register_key(component, result.server.public_key(component))
        auditor = OnlineAuditor.attach(
            server, result.topology, grace_period=0.0, on_finding=found.append
        )
        for entry in result.server.entries():
            server.submit(entry)
        auditor.drain()
        auditor.detach()
        hidden = [f for f in found if f.kind == "hidden"]
        assert hidden and all(f.component_id == "/sub0" for f in hidden)
        # detached: further submissions are not observed
        before = auditor.judged_entries
        server.submit(result.server.entries()[0])
        auditor.drain()
        assert auditor.judged_entries == before

    def test_observer_errors_do_not_break_ingestion(self, keypool):
        from repro.core import LogServer
        from repro.core.entries import LogEntry

        server = LogServer()
        server.add_observer(lambda entry: (_ for _ in ()).throw(RuntimeError))
        server.submit(LogEntry(component_id="/a", topic="/t", seq=1))
        assert len(server) == 1

    def test_multiple_transmissions_independent(self, keystore, keypool):
        clock = SimulatedClock()
        auditor = OnlineAuditor(keystore, TOPOLOGY, grace_period=1.0, clock=clock)
        for seq in range(1, 4):
            pub, sub = honest_pair(keypool, seq=seq)
            auditor.ingest(pub)
            auditor.ingest(sub)
        # one more left dangling
        pub, _ = honest_pair(keypool, seq=9)
        auditor.ingest(pub)
        clock.advance(2.0)
        auditor.poll()
        assert auditor.judged_entries == 7
        assert len(auditor.findings) == 1
