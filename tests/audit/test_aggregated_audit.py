"""Auditing aggregated publisher entries (§VI-E) -- the auditor must see
through the packed representation."""

import os

import pytest

from repro.audit import Auditor, EntryClass, Topology
from repro.core import LogServer
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.protocol import message_digest

TOPOLOGY = Topology(publisher_of={"/t": "/pub"})


@pytest.fixture()
def server(keypool):
    server = LogServer()
    server.register_key("/pub", keypool[0].public)
    for i, name in enumerate(["/s0", "/s1", "/s2"]):
        server.register_key(name, keypool[1 + i].public)
    return server


def aggregated_entry(keypool, payload=b"data", seq=1, subscribers=("/s0", "/s1", "/s2")):
    digest = message_digest(seq, payload)
    entry = LogEntry(
        component_id="/pub",
        topic="/t",
        type_name="std/String",
        direction=Direction.OUT,
        seq=seq,
        scheme=Scheme.ADLP,
        data=payload,
        own_sig=keypool[0].private.sign_digest(digest),
        aggregated=True,
        ack_peer_ids=list(subscribers),
        ack_peer_hashes=[digest] * len(subscribers),
        ack_peer_sigs=[
            keypool[1 + i].private.sign_digest(digest)
            for i in range(len(subscribers))
        ],
    )
    return entry, digest


def subscriber_entry(keypool, index, digest, seq=1):
    name = f"/s{index}"
    return LogEntry(
        component_id=name,
        topic="/t",
        type_name="std/String",
        direction=Direction.IN,
        seq=seq,
        scheme=Scheme.ADLP,
        data_hash=digest,
        own_sig=keypool[1 + index].private.sign_digest(digest),
        peer_id="/pub",
        peer_sig=digest and keypool[0].private.sign_digest(digest),
    )


class TestAggregatedAuditing:
    def test_fully_consistent_aggregate_is_valid(self, server, keypool):
        entry, digest = aggregated_entry(keypool)
        server.submit(entry)
        for i in range(3):
            server.submit(subscriber_entry(keypool, i, digest))
        report = Auditor.for_server(server, TOPOLOGY).audit_server(server)
        assert report.flagged_components() == []
        assert len(report.valid_entries()) == 4

    def test_one_hiding_subscriber_inferred_from_aggregate(self, server, keypool):
        entry, digest = aggregated_entry(keypool)
        server.submit(entry)
        for i in (0, 2):  # /s1 hides
            server.submit(subscriber_entry(keypool, i, digest))
        report = Auditor.for_server(server, TOPOLOGY).audit_server(server)
        assert [h.component_id for h in report.hidden] == ["/s1"]
        # the aggregate itself is still fully valid
        pub_entries = report.entries_for("/pub")
        assert all(c.verdict is EntryClass.VALID for c in pub_entries)

    def test_one_forged_ack_invalidates_the_aggregate(self, server, keypool):
        entry, digest = aggregated_entry(keypool)
        sigs = list(entry.ack_peer_sigs)
        sigs[1] = os.urandom(len(sigs[1]))  # fabricate /s1's acknowledgement
        entry.ack_peer_sigs = sigs
        server.submit(entry)
        for i in range(3):
            server.submit(subscriber_entry(keypool, i, digest))
        report = Auditor.for_server(server, TOPOLOGY).audit_server(server)
        pub_entries = report.entries_for("/pub")
        assert all(c.verdict is EntryClass.INVALID for c in pub_entries)
        # but the subscribers, whose own evidence verifies, stay valid
        for i in range(3):
            assert f"/s{i}" in report.clean_components()

    def test_aggregate_against_falsified_subscriber(self, server, keypool):
        entry, digest = aggregated_entry(keypool)
        server.submit(entry)
        server.submit(subscriber_entry(keypool, 0, digest))
        server.submit(subscriber_entry(keypool, 1, digest))
        # /s2 claims different data (self-signed)
        fake = message_digest(1, b"something else")
        lying = LogEntry(
            component_id="/s2",
            topic="/t",
            type_name="std/String",
            direction=Direction.IN,
            seq=1,
            scheme=Scheme.ADLP,
            data_hash=fake,
            own_sig=keypool[3].private.sign_digest(fake),
            peer_id="/pub",
            peer_sig=os.urandom(64),
        )
        server.submit(lying)
        report = Auditor.for_server(server, TOPOLOGY).audit_server(server)
        assert report.flagged_components() == ["/s2"]
        pub_entries = report.entries_for("/pub")
        assert all(c.verdict is EntryClass.VALID for c in pub_entries)
