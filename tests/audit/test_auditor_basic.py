"""Auditor mechanics: obvious detection, topology, naive entries, replay."""

import os

import pytest

from repro.adversary import forge_impersonated_entry
from repro.audit import Auditor, EntryClass, Reason, Topology
from repro.core import LogServer
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.protocol import message_digest
from repro.errors import LogIntegrityError

from tests.helpers import run_scenario


@pytest.fixture()
def server(keypool):
    server = LogServer()
    server.register_key("/pub", keypool[0].public)
    server.register_key("/sub", keypool[1].public)
    return server


TOPOLOGY = Topology(publisher_of={"/t": "/pub"}, subscribers_of={"/t": ["/sub"]})


def signed_out_entry(keypool, component="/pub", seq=1, payload=b"data", **extra):
    digest = message_digest(seq, payload)
    return LogEntry(
        component_id=component,
        topic="/t",
        type_name="std/String",
        direction=Direction.OUT,
        seq=seq,
        scheme=Scheme.ADLP,
        data=payload,
        own_sig=keypool[0].private.sign_digest(digest),
        **extra,
    )


class TestObviousDetection:
    def test_unknown_component(self, server, keypool):
        entry = signed_out_entry(keypool, component="/ghost")
        server.submit(entry)
        report = Auditor.for_server(server, TOPOLOGY).audit_server(server)
        [c] = report.invalid_entries()
        assert Reason.UNKNOWN_COMPONENT in c.reasons

    def test_missing_commitment(self, server):
        entry = LogEntry(
            component_id="/pub",
            topic="/t",
            type_name="std/String",
            direction=Direction.OUT,
            seq=1,
            scheme=Scheme.ADLP,
        )
        server.submit(entry)
        report = Auditor.for_server(server, TOPOLOGY).audit_server(server)
        [c] = report.invalid_entries()
        assert Reason.MISSING_COMMITMENT in c.reasons

    def test_impersonation_caught_by_signature(self, server, keypool):
        entry = forge_impersonated_entry(
            "/pub", keypool[1], "/t", "std/String", 1, b"data"
        )
        server.submit(entry)
        report = Auditor.for_server(server, TOPOLOGY).audit_server(server)
        [c] = report.invalid_entries()
        assert Reason.BAD_OWN_SIGNATURE in c.reasons

    def test_out_entry_by_non_publisher(self, server, keypool):
        digest = message_digest(1, b"data")
        entry = LogEntry(
            component_id="/sub",  # not the topic's publisher
            topic="/t",
            type_name="std/String",
            direction=Direction.OUT,
            seq=1,
            scheme=Scheme.ADLP,
            data=b"data",
            own_sig=keypool[1].private.sign_digest(digest),
        )
        server.submit(entry)
        report = Auditor.for_server(server, TOPOLOGY).audit_server(server)
        [c] = report.invalid_entries()
        assert Reason.NOT_TOPIC_PUBLISHER in c.reasons

    def test_duplicate_in_entries_flagged_as_replay(self, server, keypool):
        digest = message_digest(1, b"data")
        for _ in range(2):
            entry = LogEntry(
                component_id="/sub",
                topic="/t",
                type_name="std/String",
                direction=Direction.IN,
                seq=1,
                scheme=Scheme.ADLP,
                data_hash=digest,
                own_sig=keypool[1].private.sign_digest(digest),
                peer_id="/pub",
                peer_sig=keypool[0].private.sign_digest(digest),
            )
            server.submit(entry)
        report = Auditor.for_server(server, TOPOLOGY).audit_server(server)
        replays = [
            c
            for c in report.invalid_entries()
            if Reason.REPLAYED_SEQUENCE in c.reasons
        ]
        assert len(replays) == 1  # second copy flagged, first judged normally


class TestTypeConsistency:
    def test_type_mismatch_is_obviously_detectable(self, server, keypool):
        """Section IV-B: type(D) disagreement is caught immediately."""
        digest = message_digest(1, b"data")
        entry = LogEntry(
            component_id="/pub",
            topic="/t",
            type_name="wrong/Type",
            direction=Direction.OUT,
            seq=1,
            scheme=Scheme.ADLP,
            data=b"data",
            own_sig=keypool[0].private.sign_digest(digest),
        )
        server.submit(entry)
        topology = Topology(
            publisher_of={"/t": "/pub"}, type_of={"/t": "std/String"}
        )
        report = Auditor.for_server(server, topology).audit_server(server)
        [c] = report.invalid_entries()
        assert Reason.TYPE_MISMATCH in c.reasons

    def test_matching_type_passes_phase1(self, server, keypool):
        digest = message_digest(1, b"data")
        entry = LogEntry(
            component_id="/pub",
            topic="/t",
            type_name="std/String",
            direction=Direction.OUT,
            seq=1,
            scheme=Scheme.ADLP,
            data=b"data",
            own_sig=keypool[0].private.sign_digest(digest),
        )
        server.submit(entry)
        topology = Topology(
            publisher_of={"/t": "/pub"}, type_of={"/t": "std/String"}
        )
        report = Auditor.for_server(server, topology).audit_server(server)
        [c] = report.invalid_entries()
        # fails later (no ACK), but not on the type check
        assert Reason.TYPE_MISMATCH not in c.reasons


class TestNaiveEntriesAreUnverifiable:
    def test_naive_scheme_cannot_be_audited(self, server):
        entry = LogEntry(
            component_id="/pub",
            topic="/t",
            type_name="std/String",
            direction=Direction.OUT,
            seq=1,
            scheme=Scheme.NAIVE,
            data=b"data",
        )
        server.submit(entry)
        report = Auditor.for_server(server, TOPOLOGY).audit_server(server)
        [c] = report.invalid_entries()
        assert Reason.UNVERIFIABLE_SCHEME in c.reasons


class TestTopology:
    def test_from_entries_majority_vote(self, keypool):
        result = run_scenario(keypool, publications=2)
        entries = result.server.entries()
        topology = Topology.from_entries(entries)
        assert topology.publisher_of["/t"] == "/pub"
        assert topology.subscribers_of["/t"] == ["/sub0"]

    def test_audit_without_explicit_topology(self, keypool):
        result = run_scenario(keypool, publications=2)
        report = Auditor.for_server(result.server).audit_server(result.server)
        assert report.flagged_components() == []
        assert len(report.valid_entries()) == 4


class TestStoreIntegration:
    def test_audit_server_checks_tamper_evidence_first(self, keypool):
        result = run_scenario(keypool, publications=1)
        result.server.store.tamper(0, b"rewritten history")
        with pytest.raises(LogIntegrityError):
            Auditor.for_server(result.server).audit_server(result.server)


class TestReportAccounting:
    def test_component_verdict_counts(self, keypool):
        result = run_scenario(keypool, publications=3)
        report = result.report
        assert report.components["/pub"].valid_entries == 3
        assert report.components["/pub"].invalid_entries == 0
        assert not report.components["/pub"].flagged

    def test_reasons_for(self, keypool):
        from repro.adversary import SubscriberBehavior
        from repro.adversary.behaviors import flip_first_byte

        result = run_scenario(
            keypool,
            subscriber_behaviors=[SubscriberBehavior(falsify=flip_first_byte)],
            publications=2,
        )
        reasons = result.report.reasons_for("/sub0")
        assert reasons  # at least one invalidity reason recorded
