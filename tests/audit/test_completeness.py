"""Lemma 2 (Completeness): hiding against a faithful counterpart is
detected -- the counterpart's entry proves the transmission happened."""

from repro.adversary import PublisherBehavior, SubscriberBehavior
from repro.audit import Reason
from repro.core.entries import Direction

from tests.helpers import run_scenario


class TestSubscriberHiding:
    def test_acking_subscriber_cannot_hide_receipt(self, keypool):
        """The subscriber ACKs (to keep receiving) but writes no log; the
        publisher's entries, holding the signed ACKs, expose it."""
        result = run_scenario(
            keypool,
            subscriber_behaviors=[SubscriberBehavior(hide_entries=True)],
            publications=3,
        )
        report = result.report
        hidden = [h for h in report.hidden if h.component_id == "/sub0"]
        assert len(hidden) == 3
        assert all(h.direction is Direction.IN for h in hidden)
        assert all(h.reason is Reason.PEER_PROVED_TRANSMISSION for h in hidden)
        # the faithful publisher's entries are all valid (Theorem 1)
        assert "/pub" in report.clean_components()

    def test_fully_stealthy_subscriber_is_starved(self, keypool):
        """No ACK at all: the protocol's penalty stops serving it, so the
        subscriber received (at most) one unacknowledged message."""
        result = run_scenario(
            keypool,
            subscriber_behaviors=[SubscriberBehavior(suppress_acks=True)],
            publications=4,
        )
        deliveries = [r for r in result.truth.received if r.subscriber == "/sub0"]
        assert len(deliveries) <= 1  # withhold-until-ACK cut it off

    def test_hidden_count_matches_ground_truth(self, keypool):
        result = run_scenario(
            keypool,
            subscriber_behaviors=[SubscriberBehavior(hide_entries=True)],
            publications=5,
        )
        transmissions = result.truth.transmissions()
        assert len(result.report.hidden) == len(transmissions) == 5


class TestPublisherHiding:
    def test_publisher_cannot_hide_publication(self, keypool):
        """The faithful subscriber's entry, holding the publisher's valid
        signature, proves the publication (Lemma 2, first part)."""
        result = run_scenario(
            keypool,
            publisher_behavior=PublisherBehavior(hide_entries=True),
            publications=3,
        )
        report = result.report
        hidden = [h for h in report.hidden if h.component_id == "/pub"]
        assert len(hidden) == 3
        assert all(h.direction is Direction.OUT for h in hidden)
        assert "/sub0" in report.clean_components()
        # every subscriber entry is valid despite the missing counterparts
        sub_entries = report.entries_for("/sub0")
        assert all(c.verdict.value == "valid" for c in sub_entries)

    def test_both_sides_hiding_within_noncolluding_pair(self, keypool):
        """If the publisher hides and the subscriber hides-but-ACKs, the
        auditor sees nothing for those transmissions -- this is effectively
        collusion, which the paper concedes is invisible.  But ground truth
        confirms the data flowed."""
        result = run_scenario(
            keypool,
            publisher_behavior=PublisherBehavior(hide_entries=True),
            subscriber_behaviors=[SubscriberBehavior(hide_entries=True)],
            publications=3,
        )
        assert len(result.truth.transmissions()) == 3
        assert len(result.report.classified) == 0
        assert len(result.report.hidden) == 0


class TestMultipleSubscribers:
    def test_one_hiding_subscriber_among_faithful(self, keypool):
        result = run_scenario(
            keypool,
            subscriber_behaviors=[
                None,
                SubscriberBehavior(hide_entries=True),
                None,
            ],
            publications=2,
        )
        report = result.report
        assert report.flagged_components() == ["/sub1"]
        assert set(report.clean_components()) == {"/pub", "/sub0", "/sub2"}
        assert len([h for h in report.hidden if h.component_id == "/sub1"]) == 2
