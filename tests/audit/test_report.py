from repro.adversary import PublisherBehavior
from repro.adversary.behaviors import flip_first_byte
from repro.audit import render_report

from tests.helpers import run_scenario


class TestRenderReport:
    def test_clean_run_renders(self, keypool):
        result = run_scenario(keypool, publications=2)
        text = render_report(result.report)
        assert "valid: 4" in text
        assert "clean" in text
        assert "FLAGGED" not in text

    def test_flagged_run_shows_findings(self, keypool):
        result = run_scenario(
            keypool,
            publisher_behavior=PublisherBehavior(falsify=flip_first_byte),
            publications=2,
        )
        text = render_report(result.report)
        assert "FLAGGED" in text
        assert "falsified_data" in text
        assert "/pub" in text

    def test_findings_truncation(self, keypool):
        result = run_scenario(
            keypool,
            publisher_behavior=PublisherBehavior(falsify=flip_first_byte),
            publications=5,
        )
        text = render_report(result.report, max_findings=2)
        assert "more" in text
