"""Lemma 1 (Unforgeability): components cannot fabricate entries for
transmissions that never happened."""

import pytest

from repro.adversary import (
    fabricate_publication_entry,
    fabricate_receipt_entry,
)
from repro.audit import Auditor, EntryClass, Reason, Topology
from repro.core import LogServer
from repro.core.protocol import AdlpMessage, message_digest


@pytest.fixture()
def server(keypool):
    server = LogServer()
    server.register_key("/pub", keypool[0].public)
    server.register_key("/sub", keypool[1].public)
    return server


TOPOLOGY = Topology(publisher_of={"/t": "/pub"}, subscribers_of={"/t": ["/sub"]})


class TestFabricatedPublication:
    def test_random_ack_signature_detected(self, server, keypool):
        entry = fabricate_publication_entry(
            "/pub", keypool[0], "/t", "std/String", 3, b"fake data", "/sub"
        )
        server.submit(entry)
        report = Auditor.for_server(server, TOPOLOGY).audit_server(server)
        [classified] = report.invalid_entries()
        assert Reason.FABRICATED in classified.reasons
        assert report.flagged_components() == ["/pub"]

    def test_reused_old_ack_defeated_by_sequence_number(self, server, keypool):
        """The Lemma 1 proof: reusing an old M_y fails because the signature
        covers h(seq || D) and the seq differs."""
        # A legitimate transmission happened at seq=1:
        old_digest = message_digest(1, b"real data")
        old_ack_sig = keypool[1].private.sign_digest(old_digest)
        # The publisher fabricates seq=2 reusing that ACK:
        entry = fabricate_publication_entry(
            "/pub",
            keypool[0],
            "/t",
            "std/String",
            2,
            b"real data",
            "/sub",
            reuse_ack=(old_digest, old_ack_sig),
        )
        server.submit(entry)
        report = Auditor.for_server(server, TOPOLOGY).audit_server(server)
        [classified] = report.invalid_entries()
        assert classified.verdict is EntryClass.INVALID

    def test_entry_without_any_ack_cannot_prove_publication(self, server, keypool):
        """'The publisher's log entry L_x alone cannot prove its
        publication' -- Lemma 1."""
        digest = message_digest(1, b"data")
        from repro.core.entries import Direction, LogEntry, Scheme

        entry = LogEntry(
            component_id="/pub",
            topic="/t",
            type_name="std/String",
            direction=Direction.OUT,
            seq=1,
            scheme=Scheme.ADLP,
            data=b"data",
            own_sig=keypool[0].private.sign_digest(digest),
        )
        server.submit(entry)
        report = Auditor.for_server(server, TOPOLOGY).audit_server(server)
        [classified] = report.invalid_entries()
        assert Reason.UNPROVEN_PUBLICATION in classified.reasons


class TestFabricatedReceipt:
    def test_random_publisher_signature_detected(self, server, keypool):
        entry = fabricate_receipt_entry(
            "/sub", keypool[1], "/t", "std/String", 3, b"fake data", "/pub"
        )
        server.submit(entry)
        report = Auditor.for_server(server, TOPOLOGY).audit_server(server)
        [classified] = report.invalid_entries()
        assert Reason.FABRICATED in classified.reasons
        assert report.flagged_components() == ["/sub"]

    def test_replayed_message_defeated_by_sequence_number(self, server, keypool):
        """Subscriber reuses an old (D, s_x) pair under a new seq."""
        old_digest = message_digest(1, b"old payload")
        old_sig = keypool[0].private.sign_digest(old_digest)
        entry = fabricate_receipt_entry(
            "/sub",
            keypool[1],
            "/t",
            "std/String",
            2,
            b"",
            "/pub",
            reuse_message=(b"old payload", old_sig),
        )
        server.submit(entry)
        report = Auditor.for_server(server, TOPOLOGY).audit_server(server)
        [classified] = report.invalid_entries()
        assert classified.verdict is EntryClass.INVALID

    def test_fabrication_cannot_frame_the_publisher(self, server, keypool):
        """A fabricated receipt must not cause blame to land on /pub."""
        entry = fabricate_receipt_entry(
            "/sub", keypool[1], "/t", "std/String", 9, b"never sent", "/pub"
        )
        server.submit(entry)
        report = Auditor.for_server(server, TOPOLOGY).audit_server(server)
        assert "/pub" not in report.flagged_components()
        # And crucially, no hidden OUT entry is attributed to /pub.
        assert not any(h.component_id == "/pub" for h in report.hidden)
