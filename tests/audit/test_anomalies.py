"""Double-signing anomalies: provable pairwise collusion traces."""

from repro.audit import Auditor, Topology
from repro.core import LogServer
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.protocol import message_digest


def build_double_signed_pair(keypool):
    """Colluders who tell two different stories -- and sign both.

    The publisher's entry claims story A with the subscriber's genuine ACK
    for story A; the subscriber's entry claims story B with the
    publisher's genuine signature for story B.  Everything verifies, yet
    the digests disagree.
    """
    pub_kp, sub_kp = keypool[0], keypool[1]
    seq = 1
    d_a = message_digest(seq, b"story A")
    d_b = message_digest(seq, b"story B")
    pub_entry = LogEntry(
        component_id="/pub", topic="/t", type_name="std/String",
        direction=Direction.OUT, seq=seq, scheme=Scheme.ADLP,
        data=b"story A",
        own_sig=pub_kp.private.sign_digest(d_a),
        peer_id="/sub", peer_hash=d_a,
        peer_sig=sub_kp.private.sign_digest(d_a),
    )
    sub_entry = LogEntry(
        component_id="/sub", topic="/t", type_name="std/String",
        direction=Direction.IN, seq=seq, scheme=Scheme.ADLP,
        data_hash=d_b,
        own_sig=sub_kp.private.sign_digest(d_b),
        peer_id="/pub",
        peer_sig=pub_kp.private.sign_digest(d_b),
    )
    return pub_entry, sub_entry


class TestPairAnomalies:
    def test_double_signing_detected_as_anomaly(self, keypool):
        server = LogServer()
        server.register_key("/pub", keypool[0].public)
        server.register_key("/sub", keypool[1].public)
        pub_entry, sub_entry = build_double_signed_pair(keypool)
        server.submit(pub_entry)
        server.submit(sub_entry)
        topology = Topology(publisher_of={"/t": "/pub"})
        report = Auditor.for_server(server, topology).audit_server(server)
        # both entries individually verify (they carry genuine signatures)
        assert len(report.valid_entries()) == 2
        # but the pair is exposed as an anomaly
        assert len(report.anomalies) == 1
        anomaly = report.anomalies[0]
        assert set(anomaly.suspects) == {"/pub", "/sub"}
        assert anomaly.publisher_digest != anomaly.subscriber_digest

    def test_honest_runs_produce_no_anomalies(self, keypool):
        from tests.helpers import run_scenario

        result = run_scenario(keypool, publications=3)
        assert result.report.anomalies == []

    def test_ordinary_falsification_is_not_an_anomaly(self, keypool):
        """A lone falsifier cannot produce a double-signing trace: its
        counterpart proof fails, so the case resolves via Lemma 3, not as
        an anomaly."""
        from repro.adversary import SubscriberBehavior
        from repro.adversary.behaviors import flip_first_byte
        from tests.helpers import run_scenario

        result = run_scenario(
            keypool,
            subscriber_behaviors=[SubscriberBehavior(falsify=flip_first_byte)],
            publications=2,
        )
        assert result.report.anomalies == []
        assert result.report.flagged_components() == ["/sub0"]
