"""Amortized verification: the online auditor's sampling mode.

With ``verify_sample_rate < 1`` only a fraction of completed
transmissions is judged inline; everything else waits for
:meth:`OnlineAuditor.final_audit`, which batch-audits the full ingest
history.  The invariant: sampling trades detection *latency*, never
detection itself -- the final audit must equal an unsampled batch audit
of the same entries.
"""

import pytest

from repro.audit.auditor import Auditor, Topology
from repro.audit.online import OnlineAuditor
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.protocol import message_digest
from repro.crypto.keystore import KeyStore
from repro.util.clock import SimulatedClock

TOPOLOGY = Topology(publisher_of={"/t": "/pub"})


@pytest.fixture()
def keystore(keypool):
    store = KeyStore()
    store.register("/pub", keypool[0].public)
    store.register("/sub", keypool[1].public)
    return store


def make_pair(keypool, seq, payload=None, forge_pub_sig=False):
    payload = payload if payload is not None else b"data-%d" % seq
    digest = message_digest(seq, payload)
    s_x = keypool[0].private.sign_digest(digest)
    s_y = keypool[1].private.sign_digest(digest)
    own_sig = s_x
    if forge_pub_sig:
        corrupted = bytearray(s_x)
        corrupted[0] ^= 0x01
        own_sig = bytes(corrupted)
    pub = LogEntry(
        component_id="/pub", topic="/t", type_name="std/String",
        direction=Direction.OUT, seq=seq, scheme=Scheme.ADLP,
        data=payload, own_sig=own_sig,
        peer_id="/sub", peer_hash=digest, peer_sig=s_y,
    )
    sub = LogEntry(
        component_id="/sub", topic="/t", type_name="std/String",
        direction=Direction.IN, seq=seq, scheme=Scheme.ADLP,
        data_hash=digest, own_sig=s_y, peer_id="/pub", peer_sig=s_x,
    )
    return pub, sub


class TestSamplingGate:
    def test_rate_validation(self, keystore):
        with pytest.raises(ValueError):
            OnlineAuditor(keystore, verify_sample_rate=1.5)
        with pytest.raises(ValueError):
            OnlineAuditor(keystore, verify_sample_rate=-0.1)

    def test_rate_one_samples_everything(self, keystore, keypool, deterministic_seed):
        auditor = OnlineAuditor(
            keystore, TOPOLOGY, clock=SimulatedClock(),
            verify_sample_rate=1.0, sample_seed=deterministic_seed,
        )
        for seq in range(1, 6):
            pub, sub = make_pair(keypool, seq)
            auditor.ingest(pub)
            auditor.ingest(sub)
        assert auditor.sampled_transmissions == 5
        assert auditor.deferred_transmissions == 0
        assert auditor.judged_entries == 10

    def test_rate_zero_defers_everything(self, keystore, keypool, deterministic_seed):
        auditor = OnlineAuditor(
            keystore, TOPOLOGY, clock=SimulatedClock(),
            verify_sample_rate=0.0, sample_seed=deterministic_seed,
        )
        for seq in range(1, 6):
            pub, sub = make_pair(keypool, seq, forge_pub_sig=True)
            auditor.ingest(pub)
            auditor.ingest(sub)
        assert auditor.sampled_transmissions == 0
        assert auditor.deferred_transmissions == 5
        assert auditor.findings == []  # nothing verified inline...
        report = auditor.final_audit()
        assert "/pub" in report.flagged_components()  # ...but nothing escapes
        assert any(f.component_id == "/pub" for f in auditor.findings)

    def test_partial_rate_splits_deterministically(
        self, keystore, keypool, deterministic_seed
    ):
        auditor = OnlineAuditor(
            keystore, TOPOLOGY, clock=SimulatedClock(),
            verify_sample_rate=0.4, sample_seed=deterministic_seed,
        )
        for seq in range(1, 21):
            pub, sub = make_pair(keypool, seq)
            auditor.ingest(pub)
            auditor.ingest(sub)
        assert auditor.sampled_transmissions + auditor.deferred_transmissions == 20
        assert 0 < auditor.sampled_transmissions < 20

        # the same seed gives the same split
        again = OnlineAuditor(
            keystore, TOPOLOGY, clock=SimulatedClock(),
            verify_sample_rate=0.4, sample_seed=deterministic_seed,
        )
        for seq in range(1, 21):
            pub, sub = make_pair(keypool, seq)
            again.ingest(pub)
            again.ingest(sub)
        assert again.sampled_transmissions == auditor.sampled_transmissions


class TestFinalAudit:
    def _entries(self, keypool):
        entries = []
        for seq in range(1, 9):
            pub, sub = make_pair(keypool, seq, forge_pub_sig=(seq % 3 == 0))
            entries.extend([pub, sub])
        # one hidden subscriber entry: publisher logs, subscriber doesn't
        pub, _ = make_pair(keypool, 9)
        entries.append(pub)
        return entries

    def test_final_audit_equals_batch_audit(
        self, keystore, keypool, deterministic_seed
    ):
        entries = self._entries(keypool)
        online = OnlineAuditor(
            keystore, TOPOLOGY, grace_period=1.0, clock=SimulatedClock(),
            verify_sample_rate=0.25, sample_seed=deterministic_seed,
        )
        for entry in entries:
            online.ingest(entry)
        report = online.final_audit()
        batch = Auditor(keystore, TOPOLOGY).audit(entries)

        def signature(r):
            return sorted(
                (c.entry.component_id, c.entry.seq, c.verdict.name, c.reasons)
                for c in r.classified
            )

        assert signature(report) == signature(batch)
        assert sorted(h.component_id for h in report.hidden) == sorted(
            h.component_id for h in batch.hidden
        )

    def test_final_audit_emits_only_fresh_findings(
        self, keystore, keypool, deterministic_seed
    ):
        entries = self._entries(keypool)
        seen = []
        online = OnlineAuditor(
            keystore, TOPOLOGY, grace_period=1.0, clock=SimulatedClock(),
            verify_sample_rate=1.0, sample_seed=deterministic_seed,
            on_finding=seen.append,
        )
        for entry in entries:
            online.ingest(entry)
        online.drain()
        inline_count = len(seen)
        online.final_audit()
        # everything was already verified inline; the final audit must not
        # re-report the same findings
        assert len(seen) == inline_count

    def test_final_audit_supports_verify_pool(
        self, keystore, keypool, deterministic_seed
    ):
        from repro.crypto.verifypool import VerifyPool

        entries = self._entries(keypool)
        online = OnlineAuditor(
            keystore, TOPOLOGY, clock=SimulatedClock(),
            verify_sample_rate=0.0, sample_seed=deterministic_seed,
        )
        for entry in entries:
            online.ingest(entry)
        with VerifyPool(workers=1) as pool:  # inline path, same verdicts
            pooled = online.final_audit(verify_pool=pool)
        batch = Auditor(keystore, TOPOLOGY).audit(entries)
        assert len(pooled.classified) == len(batch.classified)
        assert pooled.flagged_components() == batch.flagged_components()
