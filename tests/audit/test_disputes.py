"""Standalone dispute resolution (the paper's forensic headline)."""

import os

import pytest

from repro.adversary import forge_colluding_pair
from repro.audit.disputes import Blame, resolve_dispute
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.protocol import message_digest
from repro.crypto.keystore import KeyStore
from repro.errors import AuditError


@pytest.fixture()
def keystore(keypool):
    store = KeyStore()
    store.register("/pub", keypool[0].public)
    store.register("/sub", keypool[1].public)
    return store


def honest_pair(keypool, payload=b"the real data", seq=1):
    """Entries as a faithful run would produce them."""
    digest = message_digest(seq, payload)
    s_x = keypool[0].private.sign_digest(digest)
    s_y = keypool[1].private.sign_digest(digest)
    pub = LogEntry(
        component_id="/pub",
        topic="/t",
        type_name="std/String",
        direction=Direction.OUT,
        seq=seq,
        scheme=Scheme.ADLP,
        data=payload,
        own_sig=s_x,
        peer_id="/sub",
        peer_hash=digest,
        peer_sig=s_y,
    )
    sub = LogEntry(
        component_id="/sub",
        topic="/t",
        type_name="std/String",
        direction=Direction.IN,
        seq=seq,
        scheme=Scheme.ADLP,
        data_hash=digest,
        own_sig=s_y,
        peer_id="/pub",
        peer_sig=s_x,
    )
    return pub, sub


class TestNoDispute:
    def test_agreeing_entries(self, keypool, keystore):
        pub, sub = honest_pair(keypool)
        verdict = resolve_dispute(pub, sub, keystore)
        assert verdict.blame is Blame.NONE
        assert verdict.digests_agree


class TestPublisherLied:
    def test_falsified_publisher_entry(self, keypool, keystore):
        pub, sub = honest_pair(keypool)
        # publisher claims different data (and re-signs it properly)
        fake = b"what I wish I had sent"
        fake_digest = message_digest(1, fake)
        pub.data = fake
        pub.own_sig = keypool[0].private.sign_digest(fake_digest)
        verdict = resolve_dispute(pub, sub, keystore)
        assert verdict.blame is Blame.PUBLISHER
        assert "Lemma 3 i" in verdict.explanation

    def test_publisher_with_invalid_own_signature(self, keypool, keystore):
        pub, sub = honest_pair(keypool)
        pub.own_sig = os.urandom(len(pub.own_sig))
        verdict = resolve_dispute(pub, sub, keystore)
        assert verdict.blame is Blame.PUBLISHER
        assert "eq. 3" in verdict.explanation


class TestSubscriberLied:
    def test_falsified_subscriber_entry(self, keypool, keystore):
        pub, sub = honest_pair(keypool)
        fake_digest = message_digest(1, b"claimed different data")
        sub.data_hash = fake_digest
        sub.own_sig = keypool[1].private.sign_digest(fake_digest)
        verdict = resolve_dispute(pub, sub, keystore)
        assert verdict.blame is Blame.SUBSCRIBER
        assert "Lemma 3 ii" in verdict.explanation

    def test_subscriber_with_invalid_own_signature(self, keypool, keystore):
        pub, sub = honest_pair(keypool)
        sub.own_sig = os.urandom(len(sub.own_sig))
        verdict = resolve_dispute(pub, sub, keystore)
        assert verdict.blame is Blame.SUBSCRIBER


class TestDegenerateCases:
    def test_both_unverifiable(self, keypool, keystore):
        pub, sub = honest_pair(keypool)
        fake_digest_p = message_digest(1, b"pub lie")
        fake_digest_s = message_digest(1, b"sub lie")
        pub.data = b"pub lie"
        pub.own_sig = keypool[0].private.sign_digest(fake_digest_p)
        sub.data_hash = fake_digest_s
        sub.own_sig = keypool[1].private.sign_digest(fake_digest_s)
        verdict = resolve_dispute(pub, sub, keystore)
        assert verdict.blame is Blame.BOTH

    def test_colluders_are_unresolvable_or_clean(self, keypool, keystore):
        """Colluders signing two stories: both proofs verify although the
        digests disagree -- only possible with cooperation."""
        pub, _ = honest_pair(keypool, payload=b"story A")
        _, sub = honest_pair(keypool, payload=b"story B")
        # Give the publisher a genuine ACK for story A (the colluding
        # subscriber signed both stories).
        verdict = resolve_dispute(pub, sub, keystore)
        assert verdict.blame is Blame.UNRESOLVABLE
        assert "collu" in verdict.explanation

    def test_mismatched_transmissions_rejected(self, keypool, keystore):
        pub, sub = honest_pair(keypool)
        sub.seq = 99
        with pytest.raises(AuditError):
            resolve_dispute(pub, sub, keystore)

    def test_wrong_directions_rejected(self, keypool, keystore):
        pub, sub = honest_pair(keypool)
        with pytest.raises(AuditError):
            resolve_dispute(sub, pub, keystore)
