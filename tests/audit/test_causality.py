"""Lemma 4 (Temporal Causality): a single timestamp-disrupting component
cannot reverse the precedence of a transmission chain undetected."""

import pytest

from repro.audit.causality import (
    ChainHop,
    ViolationKind,
    check_chain_precedence,
    check_pair_precedence,
    precedence_holds,
)
from repro.core.entries import Direction, LogEntry, Scheme


def entry(component, topic, seq, direction, timestamp):
    return LogEntry(
        component_id=component,
        topic=topic,
        type_name="std/String",
        direction=direction,
        seq=seq,
        timestamp=timestamp,
        scheme=Scheme.ADLP,
    )


#: the Figure 10 chain: x -(A)-> y -(B)-> z
CHAIN = [ChainHop("/x", "/A", 1, "/y"), ChainHop("/y", "/B", 1, "/z")]


def faithful_entries():
    """t_x,out < t_y,in < t_y,out < t_z,in -- Figure 10 (b)."""
    return [
        entry("/x", "/A", 1, Direction.OUT, 1.0),
        entry("/y", "/A", 1, Direction.IN, 2.0),
        entry("/y", "/B", 1, Direction.OUT, 3.0),
        entry("/z", "/B", 1, Direction.IN, 4.0),
    ]


class TestFaithfulTimestamps:
    def test_no_violations(self):
        assert check_chain_precedence(faithful_entries(), CHAIN) == []

    def test_precedence_holds(self):
        assert precedence_holds(faithful_entries(), CHAIN)


class TestSingleDisruptor:
    def test_middle_component_inversion_detected_locally(self):
        """Figure 10 (c): c_y sets t_y,out < t_y,in; the chain precedence
        survives, and the local inversion implicates exactly /y."""
        entries = [
            entry("/x", "/A", 1, Direction.OUT, 1.0),
            entry("/y", "/A", 1, Direction.IN, 3.5),  # disrupted
            entry("/y", "/B", 1, Direction.OUT, 0.5),  # disrupted
            entry("/z", "/B", 1, Direction.IN, 4.0),
        ]
        violations = check_chain_precedence(entries, CHAIN)
        kinds = {v.kind for v in violations}
        assert ViolationKind.LOCAL_ORDER in kinds
        local = [v for v in violations if v.kind is ViolationKind.LOCAL_ORDER]
        assert local[0].suspects == ("/y",)
        # the end-to-end precedence is still observable (Lemma 4)
        assert precedence_holds(entries, CHAIN)

    def test_first_component_backdating_detected_on_pair(self):
        """c_x stamps its publication after the subscriber's receipt."""
        entries = [
            entry("/x", "/A", 1, Direction.OUT, 2.5),  # disrupted
            entry("/y", "/A", 1, Direction.IN, 2.0),
            entry("/y", "/B", 1, Direction.OUT, 3.0),
            entry("/z", "/B", 1, Direction.IN, 4.0),
        ]
        violations = check_pair_precedence(entries, CHAIN[0])
        assert len(violations) == 1
        assert violations[0].kind is ViolationKind.PAIR_ORDER
        assert set(violations[0].suspects) == {"/x", "/y"}

    def test_last_component_cannot_flip_chain_alone(self):
        """c_z backdates its receipt below everything: pairwise violation
        appears, implicating the /y -> /z hop."""
        entries = [
            entry("/x", "/A", 1, Direction.OUT, 1.0),
            entry("/y", "/A", 1, Direction.IN, 2.0),
            entry("/y", "/B", 1, Direction.OUT, 3.0),
            entry("/z", "/B", 1, Direction.IN, 0.1),  # disrupted
        ]
        violations = check_chain_precedence(entries, CHAIN)
        assert any(v.kind is ViolationKind.PAIR_ORDER for v in violations)


class TestFullCollusion:
    def test_all_colluding_can_reverse_order_but_flagged_as_group(self):
        """Figure 10 (d): only a full-chain collusion reverses the
        precedence; the chain-order check names the whole group."""
        entries = [
            entry("/x", "/A", 1, Direction.OUT, 3.0),
            entry("/y", "/A", 1, Direction.IN, 4.0),
            entry("/y", "/B", 1, Direction.OUT, 1.0),
            entry("/z", "/B", 1, Direction.IN, 2.0),
        ]
        violations = check_chain_precedence(entries, CHAIN)
        chain_violations = [
            v for v in violations if v.kind is ViolationKind.CHAIN_ORDER
        ]
        assert len(chain_violations) == 1
        assert set(chain_violations[0].suspects) == {"/x", "/y", "/z"}
        assert not precedence_holds(entries, CHAIN)


class TestEdgeCases:
    def test_missing_entries_tolerated(self):
        entries = faithful_entries()[:2]
        assert check_chain_precedence(entries, CHAIN) == []

    def test_non_causal_chain_rejected(self):
        bad_chain = [ChainHop("/x", "/A", 1, "/y"), ChainHop("/w", "/B", 1, "/z")]
        with pytest.raises(ValueError):
            check_chain_precedence(faithful_entries(), bad_chain)

    def test_equal_timestamps_not_a_violation(self):
        entries = [
            entry("/x", "/A", 1, Direction.OUT, 1.0),
            entry("/y", "/A", 1, Direction.IN, 1.0),
        ]
        assert check_pair_precedence(entries, CHAIN[0]) == []
