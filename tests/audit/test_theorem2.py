"""Theorem 2: in a collusion-free system, EVERY unfaithful act is detected
and attributed to the unfaithful component."""

import pytest

from repro.adversary import PublisherBehavior, SubscriberBehavior, forge_colluding_pair
from repro.adversary.behaviors import flip_first_byte
from repro.audit import Auditor, Topology
from repro.audit.collusion import CollusionModel
from repro.core import LogServer

from tests.helpers import run_scenario


UNFAITHFUL_PUB = [
    ("hide", PublisherBehavior(hide_entries=True)),
    ("falsify", PublisherBehavior(falsify=flip_first_byte)),
]
UNFAITHFUL_SUB = [
    ("hide", SubscriberBehavior(hide_entries=True)),
    ("falsify", SubscriberBehavior(falsify=flip_first_byte)),
    ("fabricate_sig", SubscriberBehavior(fabricate_peer_signature=True)),
]


class TestCollusionFreeDetection:
    @pytest.mark.parametrize("label,behavior", UNFAITHFUL_PUB, ids=[l for l, _ in UNFAITHFUL_PUB])
    def test_every_unfaithful_publisher_act_detected(self, keypool, label, behavior):
        result = run_scenario(
            keypool, publisher_behavior=behavior, publications=3
        )
        assert "/pub" in result.report.flagged_components(), label

    @pytest.mark.parametrize("label,behavior", UNFAITHFUL_SUB, ids=[l for l, _ in UNFAITHFUL_SUB])
    def test_every_unfaithful_subscriber_act_detected(self, keypool, label, behavior):
        result = run_scenario(
            keypool, subscriber_behaviors=[behavior], publications=3
        )
        assert "/sub0" in result.report.flagged_components(), label

    def test_mixed_system_attribution_is_exact(self, keypool):
        """Three subscribers with distinct behaviors: flagged set == the
        truly unfaithful set, nothing more, nothing less."""
        result = run_scenario(
            keypool,
            subscriber_behaviors=[
                None,
                SubscriberBehavior(hide_entries=True),
                SubscriberBehavior(falsify=flip_first_byte),
            ],
            publications=3,
        )
        assert result.report.flagged_components() == ["/sub1", "/sub2"]


class TestCollusionBreaksTheGuarantee:
    def test_colluding_pair_fabrication_classified_valid(self, keypool):
        """The contrast case: with collusion the premise of Theorem 2 fails,
        and mutually consistent lies pass the audit (the paper's concession
        that \\hat{L_V} ⊆ L_{V,f} need not hold)."""
        server = LogServer()
        server.register_key("/b", keypool[0].public)
        server.register_key("/c", keypool[1].public)
        lx, ly = forge_colluding_pair(
            "/c", keypool[1], "/b", keypool[0], "/fake", "std/String", 1, b"lie"
        )
        server.submit(lx)
        server.submit(ly)
        topology = Topology(publisher_of={"/fake": "/c"})
        report = Auditor.for_server(server, topology).audit_server(server)
        assert len(report.valid_entries()) == 2
        assert report.flagged_components() == []

    def test_collusion_model_identifies_structure(self):
        model = CollusionModel(
            ["/a", "/b", "/c", "/d"], colluding_pairs=[("/b", "/c")]
        )
        assert not model.is_collusion_free
        assert model.colludes("/b", "/c")
        assert not model.colludes("/a", "/b")
        singleton_free = CollusionModel(["/a", "/b"])
        assert singleton_free.is_collusion_free
