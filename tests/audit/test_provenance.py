"""Provenance reconstruction from log entries."""

import pytest

from repro.audit.provenance import DataItem, ProvenanceGraph
from repro.core.entries import Direction, LogEntry, Scheme


def entry(component, topic, seq, direction, t):
    return LogEntry(
        component_id=component,
        topic=topic,
        type_name="demo/Data",
        direction=direction,
        seq=seq,
        timestamp=t,
        scheme=Scheme.ADLP,
    )


@pytest.fixture()
def pipeline_entries():
    """camera -> detector -> controller, two frames.

    frame#1 at t=1 produces lane#1 at t=3 produces steer#1 at t=5;
    frame#2 at t=6 produces lane#2 at t=8 produces steer#2 at t=10.
    """
    rows = []
    for i, base in ((1, 0.0), (2, 5.0)):
        rows += [
            entry("/camera", "/image", i, Direction.OUT, base + 1.0),
            entry("/detector", "/image", i, Direction.IN, base + 2.0),
            entry("/detector", "/lane", i, Direction.OUT, base + 3.0),
            entry("/controller", "/lane", i, Direction.IN, base + 4.0),
            entry("/controller", "/steer", i, Direction.OUT, base + 5.0),
        ]
    return rows


class TestLineage:
    def test_full_chain(self, pipeline_entries):
        graph = ProvenanceGraph(pipeline_entries)
        lineage = graph.lineage("/steer", 1)
        assert DataItem("/image", 1) in lineage
        assert DataItem("/lane", 1) in lineage

    def test_frames_do_not_cross_contaminate(self, pipeline_entries):
        graph = ProvenanceGraph(pipeline_entries)
        lineage = graph.lineage("/steer", 1)
        # frame 2 happened after steer 1 was produced
        assert DataItem("/image", 2) not in lineage

    def test_latest_input_wins(self, pipeline_entries):
        # steer#2's lineage uses lane#2 (the latest lane before t=10),
        # not lane#1
        graph = ProvenanceGraph(pipeline_entries)
        lineage = graph.lineage("/steer", 2)
        assert DataItem("/lane", 2) in lineage
        assert DataItem("/image", 2) in lineage

    def test_unknown_item_raises(self, pipeline_entries):
        graph = ProvenanceGraph(pipeline_entries)
        with pytest.raises(KeyError):
            graph.lineage("/steer", 99)


class TestDescendants:
    def test_blast_radius_of_a_frame(self, pipeline_entries):
        graph = ProvenanceGraph(pipeline_entries)
        downstream = graph.descendants("/image", 1)
        assert DataItem("/lane", 1) in downstream
        assert DataItem("/steer", 1) in downstream
        assert DataItem("/lane", 2) not in downstream

    def test_terminal_item_has_no_descendants(self, pipeline_entries):
        graph = ProvenanceGraph(pipeline_entries)
        assert graph.descendants("/steer", 2) == []


class TestSuspects:
    def test_suspects_cover_the_chain(self, pipeline_entries):
        graph = ProvenanceGraph(pipeline_entries)
        assert graph.suspects("/steer", 1) == [
            "/camera",
            "/controller",
            "/detector",
        ]

    def test_producer_of(self, pipeline_entries):
        graph = ProvenanceGraph(pipeline_entries)
        assert graph.producer_of("/lane", 1) == "/detector"
        assert graph.producer_of("/nope", 1) is None


class TestMultiInputFusion:
    def test_output_depends_on_all_input_topics(self):
        rows = [
            entry("/lidar", "/scan", 1, Direction.OUT, 1.0),
            entry("/camera", "/image", 1, Direction.OUT, 1.5),
            entry("/planner", "/scan", 1, Direction.IN, 2.0),
            entry("/planner", "/image", 1, Direction.IN, 2.5),
            entry("/planner", "/path", 1, Direction.OUT, 3.0),
        ]
        graph = ProvenanceGraph(rows)
        lineage = graph.lineage("/path", 1)
        assert DataItem("/scan", 1) in lineage
        assert DataItem("/image", 1) in lineage

    def test_input_after_output_excluded(self):
        rows = [
            entry("/camera", "/image", 1, Direction.OUT, 1.0),
            entry("/planner", "/path", 1, Direction.OUT, 2.0),
            entry("/planner", "/image", 1, Direction.IN, 3.0),  # too late
        ]
        graph = ProvenanceGraph(rows)
        assert graph.lineage("/path", 1) == []
