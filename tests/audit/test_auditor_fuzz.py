"""Robustness: the auditor processes adversary-controlled input by
definition, so it must never crash, hang, or mis-account -- whatever the
log contains."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.audit import Auditor, EntryClass, Topology
from repro.core.entries import Direction, LogEntry, Scheme
from repro.crypto.keystore import KeyStore


def _keystore(keypool):
    store = KeyStore()
    store.register("/pub", keypool[0].public)
    store.register("/sub", keypool[1].public)
    return store


arbitrary_entries = st.builds(
    LogEntry,
    component_id=st.sampled_from(["/pub", "/sub", "/ghost", ""]),
    topic=st.sampled_from(["/t", "/other", ""]),
    type_name=st.sampled_from(["std/String", "x/Y", ""]),
    direction=st.sampled_from(list(Direction)),
    seq=st.integers(min_value=0, max_value=1 << 32),
    timestamp=st.floats(allow_nan=False, allow_infinity=False, width=32),
    scheme=st.sampled_from(list(Scheme)),
    data=st.binary(max_size=64),
    data_hash=st.binary(max_size=64),  # deliberately wrong sizes too
    own_sig=st.binary(max_size=80),
    peer_id=st.sampled_from(["/pub", "/sub", "/ghost", ""]),
    peer_hash=st.binary(max_size=64),
    peer_sig=st.binary(max_size=80),
    aggregated=st.booleans(),
    ack_peer_ids=st.lists(st.sampled_from(["/sub", "/x"]), max_size=3),
    ack_peer_hashes=st.lists(st.binary(max_size=32), max_size=3),
    ack_peer_sigs=st.lists(st.binary(max_size=64), max_size=3),
)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(st.lists(arbitrary_entries, max_size=12))
def test_auditor_never_crashes_and_accounts_every_entry(keypool, entries):
    auditor = Auditor(_keystore(keypool), Topology(publisher_of={"/t": "/pub"}))
    report = auditor.audit(entries)
    # partition property: every input entry gets exactly one verdict
    assert len(report.classified) == len(entries)
    assert all(c.verdict in (EntryClass.VALID, EntryClass.INVALID) for c in report.classified)
    # accounting matches
    total = sum(
        v.valid_entries + v.invalid_entries for v in report.components.values()
    )
    assert total == len(entries)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(st.lists(arbitrary_entries, max_size=10))
def test_audit_is_deterministic(keypool, entries):
    auditor = Auditor(_keystore(keypool), Topology(publisher_of={"/t": "/pub"}))
    a = auditor.audit(entries)
    b = auditor.audit(entries)
    assert [(c.verdict, c.reasons) for c in a.classified] == [
        (c.verdict, c.reasons) for c in b.classified
    ]
    assert a.hidden == b.hidden


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(st.lists(arbitrary_entries, max_size=10))
def test_random_entries_never_convict_uninvolved_components(keypool, entries):
    """A flood of garbage must not produce hidden-entry accusations against
    components that no *valid* counterpart evidence implicates."""
    auditor = Auditor(_keystore(keypool), Topology(publisher_of={"/t": "/pub"}))
    report = auditor.audit(entries)
    for hidden in report.hidden:
        # hidden records may only arise from a VALID counterpart entry
        witnesses = [
            c
            for c in report.classified
            if c.verdict is EntryClass.VALID
            and c.transmission == hidden.transmission
        ]
        assert witnesses, hidden
