import pytest

from repro.audit.collusion import CollusionModel, maximal_collusion_groups


class TestMaximalCollusionGroups:
    def test_no_pairs_all_singletons(self):
        groups = maximal_collusion_groups(["/a", "/b", "/c"], [])
        assert groups == [frozenset({"/a"}), frozenset({"/b"}), frozenset({"/c"})]

    def test_single_pair(self):
        groups = maximal_collusion_groups(["/a", "/b", "/c"], [("/a", "/b")])
        assert frozenset({"/a", "/b"}) in groups
        assert frozenset({"/c"}) in groups

    def test_transitive_merging(self):
        # Figure 2's structure: B-C collude, E-F-G chain, A and D alone.
        groups = maximal_collusion_groups(
            ["/A", "/B", "/C", "/D", "/E", "/F", "/G"],
            [("/B", "/C"), ("/E", "/F"), ("/F", "/G")],
        )
        assert frozenset({"/B", "/C"}) in groups
        assert frozenset({"/E", "/F", "/G"}) in groups
        assert frozenset({"/A"}) in groups
        assert frozenset({"/D"}) in groups

    def test_self_collusion_rejected(self):
        with pytest.raises(ValueError):
            maximal_collusion_groups(["/a"], [("/a", "/a")])


class TestCollusionModel:
    @pytest.fixture()
    def model(self):
        return CollusionModel(
            ["/A", "/B", "/C", "/D"], colluding_pairs=[("/B", "/C")]
        )

    def test_group_of(self, model):
        assert model.group_of("/B") == frozenset({"/B", "/C"})
        assert model.group_of("/A") == frozenset({"/A"})

    def test_group_of_unknown(self, model):
        with pytest.raises(KeyError):
            model.group_of("/zzz")

    def test_colludes_symmetric(self, model):
        assert model.colludes("/B", "/C")
        assert model.colludes("/C", "/B")

    def test_component_does_not_collude_with_itself(self, model):
        assert not model.colludes("/B", "/B")

    def test_collusion_free_predicate(self, model):
        assert not model.is_collusion_free
        assert CollusionModel(["/A", "/B"]).is_collusion_free

    def test_non_colluding_pairs_filter(self, model):
        transmissions = [("/A", "/B"), ("/B", "/C"), ("/C", "/D")]
        assert model.non_colluding_pairs(transmissions) == [
            ("/A", "/B"),
            ("/C", "/D"),
        ]

    def test_edge_components(self, model):
        # B and C form the only non-singleton group; both are 'edge' members
        # whose outside-facing transmissions remain auditable (Theorem 1).
        assert model.edge_components() == {"/B", "/C"}
