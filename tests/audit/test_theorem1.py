"""Theorem 1: a faithful component's entries are ALWAYS classified valid,
whatever the rest of the system does.

Property-based: hypothesis draws arbitrary mixes of unfaithful behaviors
for the publisher and two subscribers; whoever happens to be faithful must
come out clean, and every entry a faithful component wrote must be valid.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.adversary import PublisherBehavior, SubscriberBehavior
from repro.adversary.behaviors import flip_first_byte
from repro.audit import EntryClass

from tests.helpers import run_scenario

publisher_behaviors = st.sampled_from(
    [
        None,
        PublisherBehavior(hide_entries=True),
        PublisherBehavior(falsify=flip_first_byte),
    ]
)

subscriber_behaviors = st.sampled_from(
    [
        None,
        SubscriberBehavior(hide_entries=True),
        SubscriberBehavior(falsify=flip_first_byte),
        SubscriberBehavior(fabricate_peer_signature=True),
    ]
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture, HealthCheck.too_slow],
)
@given(pub=publisher_behaviors, sub0=subscriber_behaviors, sub1=subscriber_behaviors)
def test_faithful_components_always_classified_valid(keypool, pub, sub0, sub1):
    result = run_scenario(
        keypool,
        publisher_behavior=pub,
        subscriber_behaviors=[sub0, sub1],
        publications=2,
    )
    report = result.report
    behaviors = {"/pub": pub, "/sub0": sub0, "/sub1": sub1}
    for component, behavior in behaviors.items():
        if behavior is not None:
            continue  # unfaithful; no guarantee claimed
        # Theorem 1: L_i in L_{V,f} => L_i in \hat{L_V}
        for classified in report.entries_for(component):
            assert classified.verdict is EntryClass.VALID, (
                component,
                behaviors,
                classified,
            )
        # and no hidden entries are attributed to a faithful component
        assert not any(h.component_id == component for h in report.hidden), (
            component,
            behaviors,
        )
