"""Lemma 3 (Correctness): misreporting the data against a faithful
counterpart is detected, and blame lands on the misreporter."""

from repro.adversary import PublisherBehavior, SubscriberBehavior
from repro.adversary.behaviors import flip_first_byte
from repro.audit import EntryClass, Reason

from tests.helpers import run_scenario


class TestPublisherFalsification:
    def test_falsifying_publisher_detected(self, keypool):
        """Lemma 3 (i): the subscriber's entry carries the publisher's own
        signature over the *real* data, convicting the falsified L_x."""
        result = run_scenario(
            keypool,
            publisher_behavior=PublisherBehavior(falsify=flip_first_byte),
            publications=3,
        )
        report = result.report
        assert report.flagged_components() == ["/pub"]
        for classified in report.entries_for("/pub"):
            assert classified.verdict is EntryClass.INVALID
            assert Reason.FALSIFIED_DATA in classified.reasons

    def test_faithful_subscriber_stays_clean(self, keypool):
        result = run_scenario(
            keypool,
            publisher_behavior=PublisherBehavior(falsify=flip_first_byte),
            publications=3,
        )
        report = result.report
        assert "/sub0" in report.clean_components()
        for classified in report.entries_for("/sub0"):
            assert classified.verdict is EntryClass.VALID

    def test_subscriber_log_matches_ground_truth(self, keypool):
        """The valid entries reflect what was actually transmitted."""
        result = run_scenario(
            keypool,
            publisher_behavior=PublisherBehavior(falsify=flip_first_byte),
            publications=2,
        )
        for classified in result.report.entries_for("/sub0"):
            true_digest = result.truth.digest_of("/t", classified.entry.seq)
            assert classified.entry.reported_hash() == true_digest

    def test_falsified_entries_differ_from_ground_truth(self, keypool):
        result = run_scenario(
            keypool,
            publisher_behavior=PublisherBehavior(falsify=flip_first_byte),
            publications=2,
        )
        for classified in result.report.entries_for("/pub"):
            true_digest = result.truth.digest_of("/t", classified.entry.seq)
            assert classified.entry.reported_hash() != true_digest


class TestSubscriberFalsification:
    def test_falsifying_subscriber_detected(self, keypool):
        """Lemma 3 (ii): the subscriber cannot prove its differing claim
        because it cannot forge the publisher's signature."""
        result = run_scenario(
            keypool,
            subscriber_behaviors=[SubscriberBehavior(falsify=flip_first_byte)],
            publications=3,
        )
        report = result.report
        assert report.flagged_components() == ["/sub0"]
        for classified in report.entries_for("/sub0"):
            assert classified.verdict is EntryClass.INVALID

    def test_faithful_publisher_stays_clean(self, keypool):
        result = run_scenario(
            keypool,
            subscriber_behaviors=[SubscriberBehavior(falsify=flip_first_byte)],
            publications=3,
        )
        report = result.report
        assert "/pub" in report.clean_components()
        for classified in report.entries_for("/pub"):
            assert classified.verdict is EntryClass.VALID

    def test_false_accusation_via_random_signature(self, keypool):
        """Figure 8 (b): the subscriber claims the publisher sent an invalid
        signature by recording garbage; eq. (4) pins the lie on it."""
        result = run_scenario(
            keypool,
            subscriber_behaviors=[
                SubscriberBehavior(fabricate_peer_signature=True)
            ],
            publications=2,
        )
        report = result.report
        assert report.flagged_components() == ["/sub0"]
        for classified in report.entries_for("/sub0"):
            assert classified.verdict is EntryClass.INVALID

    def test_replaying_subscriber_detected(self, keypool):
        """Logging a previous payload under the current seq fails: the old
        signature does not cover the new sequence number."""
        result = run_scenario(
            keypool,
            subscriber_behaviors=[SubscriberBehavior(replay_previous=True)],
            publications=4,
        )
        report = result.report
        assert report.flagged_components() == ["/sub0"]
        # the first receipt (nothing to replay yet) is honest; the rest lie
        invalid = [
            c
            for c in report.entries_for("/sub0")
            if c.verdict is EntryClass.INVALID
        ]
        assert len(invalid) >= 2


class TestBothUnfaithful:
    def test_both_falsifying_both_flagged(self, keypool):
        result = run_scenario(
            keypool,
            publisher_behavior=PublisherBehavior(falsify=flip_first_byte),
            subscriber_behaviors=[SubscriberBehavior(falsify=flip_first_byte)],
            publications=2,
        )
        assert result.report.flagged_components() == ["/pub", "/sub0"]
