"""The VerifyPool: batched (digest, sig, key) verification.

The pool is a pure accelerator -- these tests pin its contract: results
come back in input order, malformed key bytes verify False (never
raise), small batches take the inline path, and wiring it into
``audit_sharded`` / ``audit_replica_set`` changes no verdict.
"""

import pytest

from repro.crypto.hashing import sha256
from repro.crypto.verifypool import MIN_POOL_BATCH, VerifyPool, _verify_chunk


def _triples(keypool, count, tamper_every=0):
    triples, expected = [], []
    for i in range(count):
        pair = keypool[i % 3]
        digest = sha256(b"payload-%d" % i)
        sig = pair.private.sign_digest(digest)
        ok = True
        if tamper_every and i % tamper_every == 0:
            corrupted = bytearray(sig)
            corrupted[0] ^= 0x01
            sig = bytes(corrupted)
            ok = False
        triples.append((digest, sig, pair.public.to_bytes()))
        expected.append(ok)
    return triples, expected


class TestChunkKernel:
    def test_verifies_in_order(self, keypool):
        triples, expected = _triples(keypool, 10, tamper_every=3)
        assert _verify_chunk(triples) == expected

    def test_bad_key_bytes_verify_false_not_raise(self, keypool):
        digest = sha256(b"x")
        sig = keypool[0].private.sign_digest(digest)
        assert _verify_chunk([(digest, sig, b"\xa5\x7f junk")]) == [False]
        assert _verify_chunk([(digest, sig, b"")]) == [False]

    def test_key_cache_shares_decodes(self, keypool):
        # many triples under one key: exercises the worker-side decode cache
        triples, expected = _triples(keypool, 6)
        assert _verify_chunk(triples * 3) == expected * 3


class TestPool:
    def test_empty_batch(self):
        with VerifyPool(workers=1) as pool:
            assert pool.verify_batch([]) == []

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            VerifyPool(workers=0)

    def test_small_batch_inline(self, keypool):
        triples, expected = _triples(keypool, 5, tamper_every=2)
        with VerifyPool(workers=4) as pool:
            assert pool.verify_batch(triples) == expected
            assert pool._pool is None  # below MIN_POOL_BATCH: never spawned

    def test_large_batch_across_workers(self, keypool):
        count = MIN_POOL_BATCH * 2
        triples, expected = _triples(keypool, count, tamper_every=7)
        with VerifyPool(workers=2) as pool:
            assert pool.verify_batch(triples) == expected

    def test_closed_pool_rejects_large_batches(self, keypool):
        pool = VerifyPool(workers=2)
        pool.close()
        pool.close()  # idempotent
        triples, _ = _triples(keypool, MIN_POOL_BATCH)
        with pytest.raises(RuntimeError):
            pool.verify_batch(triples)


class TestAuditIntegration:
    def test_audit_sharded_with_pool(self, keypool, rng):
        from repro.sharding.parallel_audit import audit_sharded
        from repro.sharding.sharded_server import ShardedLogServer
        from tests.sharding.workload import (
            build_stream,
            register_pair,
            report_summary,
            topology_for,
        )

        server = ShardedLogServer(shards=4)
        register_pair(server, keypool)
        for record in build_stream(keypool, rng):
            server.submit(record)
        plain = audit_sharded(server, topology=topology_for(), workers=2)
        with VerifyPool(workers=2) as pool:
            pooled = audit_sharded(
                server, topology=topology_for(), workers=2, verify_pool=pool
            )
        assert report_summary(plain.report) == report_summary(pooled.report)
        assert plain.tampered_shards == pooled.tampered_shards == []

    def test_audit_replica_set_with_pool(self, keypool, rng):
        from repro.audit.replica_audit import audit_replica_set
        from repro.core import LogServer, LogServerEndpoint, RemoteLogger
        from tests.sharding.workload import build_stream, report_summary

        servers = [LogServer() for _ in range(3)]
        for server in servers:
            server.register_key("/pub", keypool[0].public)
            server.register_key("/sub", keypool[1].public)
        for record in build_stream(keypool, rng, transmissions=12):
            for server in servers:
                server.submit(record)
        endpoints = [LogServerEndpoint(s) for s in servers]
        clients = [RemoteLogger(e.address) for e in endpoints]
        try:
            plain = audit_replica_set(clients)
            with VerifyPool(workers=2) as pool:
                pooled = audit_replica_set(clients, verify_pool=pool)
        finally:
            for client in clients:
                client.close()
            for endpoint in endpoints:
                endpoint.close()
        assert report_summary(plain.report) == report_summary(pooled.report)
        assert plain.agreeing == pooled.agreeing
