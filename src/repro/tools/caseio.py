"""Case bundles: portable, tamper-evident evidence directories.

Layout of a case directory::

    case/
      entries.log   -- hash-chained log records (FileLogStore format)
      keys.bin      -- framed (component id, public key) pairs
      MANIFEST      -- chain head + Merkle root + counts, human-readable

The bundle is self-contained: ``load_case`` re-verifies the hash chain on
open, rebuilds the key store, and returns a fully queryable/auditable
:class:`~repro.core.log_server.LogServer`.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from typing import Dict

from repro.core.log_server import LogServer
from repro.core.log_store import FileLogStore
from repro.crypto.keys import PublicKey
from repro.errors import LogIntegrityError

_FRAME = struct.Struct("<I")

ENTRIES_FILE = "entries.log"
KEYS_FILE = "keys.bin"
MANIFEST_FILE = "MANIFEST"


@dataclass(frozen=True)
class CaseBundle:
    """A loaded case: the reconstructed server plus its on-disk paths."""

    path: str
    server: LogServer


def _write_framed(f, payload: bytes) -> None:
    f.write(_FRAME.pack(len(payload)) + payload)


def _read_framed(f):
    raw_len = f.read(_FRAME.size)
    if not raw_len:
        return None
    if len(raw_len) < _FRAME.size:
        raise LogIntegrityError("truncated frame length in case file")
    (length,) = _FRAME.unpack(raw_len)
    payload = f.read(length)
    if len(payload) < length:
        raise LogIntegrityError("truncated frame in case file")
    return payload


def export_case(server: LogServer, path: str) -> str:
    """Write ``server``'s evidence into directory ``path``; returns it."""
    os.makedirs(path, exist_ok=True)
    entries_path = os.path.join(path, ENTRIES_FILE)
    if os.path.exists(entries_path):
        raise FileExistsError(f"case already contains {entries_path}")

    store = FileLogStore(entries_path)
    for record in server.store.records():
        store.append(record)
    head = store.head()
    store.close()

    with open(os.path.join(path, KEYS_FILE), "wb") as f:
        for component_id, key in sorted(server.keystore.snapshot().items()):
            _write_framed(f, component_id.encode("utf-8"))
            _write_framed(f, key.to_bytes())

    with open(os.path.join(path, MANIFEST_FILE), "w") as f:
        f.write("ADLP evidence case bundle\n")
        f.write(f"entries: {len(server)}\n")
        f.write(f"components: {len(server.keystore)}\n")
        f.write(f"chain_head: {head.hex()}\n")
        f.write(f"merkle_root: {server.merkle_root().hex()}\n")
    return path


def load_case(path: str) -> CaseBundle:
    """Open a case directory, re-verifying the evidence chain.

    :raises LogIntegrityError: if any record was modified on disk.
    """
    entries_path = os.path.join(path, ENTRIES_FILE)
    keys_path = os.path.join(path, KEYS_FILE)
    if not os.path.exists(entries_path):
        raise FileNotFoundError(f"no {ENTRIES_FILE} in {path}")

    keys: Dict[str, PublicKey] = {}
    if os.path.exists(keys_path):
        with open(keys_path, "rb") as f:
            while True:
                component_raw = _read_framed(f)
                if component_raw is None:
                    break
                key_raw = _read_framed(f)
                if key_raw is None:
                    raise LogIntegrityError("dangling component id in keys.bin")
                keys[component_raw.decode("utf-8")] = PublicKey.from_bytes(key_raw)

    # FileLogStore re-verifies the chain on open.
    store = FileLogStore(entries_path)
    records = store.records()
    store.close()

    server = LogServer()
    for component_id, key in keys.items():
        server.register_key(component_id, key)
    for record in records:
        server.submit(record)

    # Cross-check the manifest commitments when present.
    manifest_path = os.path.join(path, MANIFEST_FILE)
    if os.path.exists(manifest_path):
        with open(manifest_path) as f:
            manifest = dict(
                line.strip().split(": ", 1)
                for line in f
                if ": " in line
            )
        expected_root = manifest.get("merkle_root")
        if expected_root and server.merkle_root().hex() != expected_root:
            raise LogIntegrityError(
                "case Merkle root does not match the MANIFEST commitment"
            )
    return CaseBundle(path=path, server=server)
