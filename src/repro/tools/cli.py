"""Command-line investigator interface.

::

    python -m repro.tools verify  CASE_DIR | --store STORE_DIR [--shards N]
    python -m repro.tools inspect CASE_DIR | --store STORE_DIR [--shards N]
                                  [--component C] [--topic T] [--limit N]
                                  [--shard I]
    python -m repro.tools audit   CASE_DIR | --store STORE_DIR [--shards N]
                                  [--publisher TOPIC=COMPONENT ...]
                                  [--workers N] [--backend thread|process]
    python -m repro.tools trace   CASE_DIR TOPIC SEQ
    python -m repro.tools recover STORE_DIR [--shards N | --shard I]
    python -m repro.tools health  HOST:PORT [HOST:PORT ...]
    python -m repro.tools replicas HOST:PORT [HOST:PORT ...]
                                  [--quorum N] [--audit] [--key KEY_FILE]
    python -m repro.tools sth     HOST:PORT [HOST:PORT ...]
                                  [--shard I] [--key KEY_FILE]
    python -m repro.tools proof   HOST:PORT INDEX [--shard I]
                                  [--key KEY_FILE]

``CASE_DIR`` is a bundle produced by :func:`repro.tools.caseio.export_case`;
``STORE_DIR`` is a :class:`~repro.storage.durable_store.DurableLogStore`
directory (a crashed logger's WAL + checkpoints), opened and replayed in
place -- the investigator can work directly on the wreckage.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.audit import (
    Auditor,
    ProvenanceGraph,
    Topology,
    audit_replica_set,
    render_report,
)
from repro.core.entries import Direction
from repro.core.log_server import LogServer
from repro.core.policy import ReplicationConfig
from repro.core.remote import RemoteLogger
from repro.crypto.keys import PublicKey
from repro.errors import LogIntegrityError, LoggingError, ProofError
from repro.gossip import GossipRelay
from repro.replication import DivergenceDetector, ReplicatedLogger
from repro.sharding import ShardedLogServer, audit_sharded, shard_dirname
from repro.storage.durable_store import DurableLogStore
from repro.tools.caseio import load_case


def _open_store(store_dir: str) -> DurableLogStore:
    """Open an existing store directory; a typo'd path must error, not
    quietly materialize an empty (and trivially "intact") store."""
    if not os.path.isdir(store_dir):
        raise SystemExit(f"no such store directory: {store_dir}")
    return DurableLogStore(store_dir)


def _load_server(args: argparse.Namespace) -> "LogServer | ShardedLogServer":
    """The log server named by the arguments: an exported case bundle or,
    with ``--store``, a durable store directory recovered in place
    (``--shards N`` reopens it as a sharded layout)."""
    store_dir = getattr(args, "store", None)
    shards = getattr(args, "shards", None)
    if shards is not None and store_dir is None:
        raise SystemExit("--shards requires --store (case bundles are unsharded)")
    if store_dir is not None:
        if args.case is not None:
            raise SystemExit("give either CASE_DIR or --store, not both")
        if shards is not None:
            if not os.path.isdir(store_dir):
                raise SystemExit(f"no such store directory: {store_dir}")
            return ShardedLogServer(shards=shards, store_dir=store_dir)
        return LogServer(_open_store(store_dir))
    if args.case is None:
        raise SystemExit("either CASE_DIR or --store is required")
    return load_case(args.case).server


def _source_label(args: argparse.Namespace) -> str:
    store_dir = getattr(args, "store", None)
    return f"store {store_dir}" if store_dir is not None else f"case {args.case}"


def _cmd_verify(args: argparse.Namespace) -> int:
    try:
        server = _load_server(args)
        server.verify_integrity()
    except LogIntegrityError as exc:
        print(f"TAMPERED: {exc}")
        return 2
    print(f"{_source_label(args)}: INTACT")
    print(f"  entries:     {len(server)}")
    print(f"  components:  {len(server.keystore)}")
    for component_id, label in sorted(server.keystore.describe().items()):
        fingerprint = server.keystore.get(component_id).fingerprint()
        print(f"    {component_id:<24} {label:<10} fp={fingerprint}")
    if isinstance(server, ShardedLogServer):
        commitment = server.commitment()
        print(f"  shards:      {commitment.shards}")
        print(f"  set root:    {commitment.root.hex()}")
        for index, shard in enumerate(commitment.shard_commitments):
            print(
                f"  shard {index:3}:   entries={shard.entries:<8} "
                f"head={shard.chain_head.hex()[:16]} "
                f"root={shard.merkle_root.hex()[:16]}"
            )
    else:
        print(f"  chain head:  {server.store.head().hex()}")
        print(f"  merkle root: {server.merkle_root().hex()}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    try:
        server = _load_server(args)
    except LogIntegrityError as exc:
        print(f"TAMPERED: {exc}")
        return 2
    if args.component:
        key = server.keystore.find(args.component)
        if key is not None:
            print(
                f"# {args.component} key: {key.describe()} "
                f"fp={key.fingerprint()}"
            )
    shard = getattr(args, "shard", None)
    if shard is not None:
        if not isinstance(server, ShardedLogServer):
            raise SystemExit("--shard requires --shards (an unsharded source)")
        entries = server.entries(
            component_id=args.component, topic=args.topic, shard=shard
        )
    else:
        entries = server.entries(component_id=args.component, topic=args.topic)
    shown = entries[: args.limit] if args.limit else entries
    for i, entry in enumerate(shown):
        direction = "out" if entry.direction is Direction.OUT else "in "
        payload = (
            f"|D|={len(entry.data)}" if entry.data else f"h(D)={entry.data_hash.hex()[:12]}"
        )
        print(
            f"{i:6} {entry.component_id:<22} {direction} "
            f"{entry.topic:<22} seq={entry.seq:<6} t={entry.timestamp:<18.6f} "
            f"{entry.scheme.name.lower():<5} {payload}"
        )
    if args.limit and len(entries) > args.limit:
        print(f"... and {len(entries) - args.limit} more")
    return 0


def _parse_topology(pairs: List[str]) -> Optional[Topology]:
    if not pairs:
        return None
    topology = Topology()
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--publisher expects TOPIC=COMPONENT, got {pair!r}")
        topic, component = pair.split("=", 1)
        topology.publisher_of[topic] = component
    return topology


def _cmd_audit(args: argparse.Namespace) -> int:
    # Opening a durable store replays its journal, and replay itself can
    # detect tampering (e.g. a WAL shorter than its checkpoint) -- report
    # it like verify does instead of surfacing a traceback.
    try:
        server = _load_server(args)
    except LogIntegrityError as exc:
        print(f"TAMPERED: {exc}")
        return 2
    topology = _parse_topology(args.publisher)
    labels = sorted(server.keystore.describe().values())
    if labels:
        counts = {label: labels.count(label) for label in dict.fromkeys(labels)}
        summary = ", ".join(
            f"{label} x{count}" for label, count in counts.items()
        )
        print(f"registered keys: {summary}")
    if isinstance(server, ShardedLogServer):
        result = audit_sharded(
            server,
            topology=topology,
            workers=getattr(args, "workers", None),
            executor=getattr(args, "backend", "thread"),
        )
        for outcome in result.outcomes:
            if outcome.tampered:
                print(f"shard {outcome.shard}: TAMPERED ({outcome.error})")
            else:
                print(f"shard {outcome.shard}: {outcome.entries} entries, intact")
        print(render_report(result.report, max_findings=args.max_findings))
        if result.tampered_shards:
            print(f"tampered shards: {result.tampered_shards}")
            return 2
        return 1 if result.report.flagged_components() else 0
    auditor = Auditor.for_server(server, topology)
    report = auditor.audit_server(server)
    print(render_report(report, max_findings=args.max_findings))
    return 1 if report.flagged_components() else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    bundle = load_case(args.case)
    report = Auditor.for_server(bundle.server).audit_server(bundle.server)
    valid = [c.entry for c in report.valid_entries()]
    graph = ProvenanceGraph(valid)
    if not graph.has_item(args.topic, args.seq):
        print(f"no valid entry for {args.topic}#{args.seq}")
        return 2
    print(f"lineage of {args.topic}#{args.seq}:")
    for item in graph.lineage(args.topic, args.seq):
        producer = graph.producer_of(item.topic, item.seq) or "?"
        print(f"  {item.topic:<26} #{item.seq:<6} produced by {producer}")
    print("components on the causal chain:")
    for component in graph.suspects(args.topic, args.seq):
        print(f"  {component}")
    return 0


def _recover_one(store_dir: str, label: str) -> int:
    try:
        store = _open_store(store_dir)
    except LogIntegrityError as exc:
        print(f"{label}: TAMPERED: {exc}")
        return 2
    recovery = store.recovery
    print(f"{label}: recovered")
    print(f"  entries:          {recovery.entries}")
    print(f"  from checkpoint:  {recovery.checkpoint_entries or 0}")
    print(f"  replayed tail:    {recovery.replayed}")
    print(f"  torn tail bytes:  {recovery.truncated_bytes} (truncated)")
    print(f"  chain head:       {store.head().hex()}")
    print(f"  merkle root:      {store.merkle_root().hex()}")
    store.close()
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    """Replay a durable store's WAL and report what survived the crash.

    For a sharded layout, ``--shards N`` recovers every shard directory in
    turn and ``--shard I`` exactly one -- tamper localization means an
    investigator usually needs to replay a single shard's wreckage, not
    the whole set.
    """
    shards = getattr(args, "shards", None)
    shard = getattr(args, "shard", None)
    if shard is not None:
        target = os.path.join(args.store_dir, shard_dirname(shard))
        return _recover_one(target, f"store {args.store_dir} shard {shard}")
    if shards is not None:
        worst = 0
        for index in range(shards):
            target = os.path.join(args.store_dir, shard_dirname(index))
            worst = max(
                worst, _recover_one(target, f"store {args.store_dir} shard {index}")
            )
        return worst
    return _recover_one(args.store_dir, f"store {args.store_dir}")


def _parse_address(value: str):
    """``HOST:PORT`` -> the transport-layer tcp address tuple."""
    host, sep, port = value.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise SystemExit(f"replica address must be HOST:PORT, got {value!r}")
    return ("tcp", host, int(port))


def _cmd_health(args: argparse.Namespace) -> int:
    """Probe each replica's commitment once; cross-check for divergence."""
    detector = DivergenceDetector()
    unreachable = 0
    for value in args.replica:
        client = RemoteLogger(_parse_address(value))
        stats: dict = {}
        try:
            commitment = client.health(timeout=args.timeout)
            try:
                # Best-effort observability: servers without an admission
                # controller (or without OP_STATS) just omit the line.
                stats = client.server_stats(timeout=args.timeout)
            except LoggingError:
                stats = {}
        except LoggingError as exc:
            print(f"{value:<28} UNREACHABLE ({exc})")
            unreachable += 1
            continue
        finally:
            client.close()
        detector.observe(value, commitment)
        print(
            f"{value:<28} entries={commitment.entries:<8} "
            f"bytes={commitment.total_bytes:<10} "
            f"head={commitment.chain_head.hex()[:16]} "
            f"root={commitment.merkle_root.hex()[:16]}"
        )
        if any(key.startswith("admission_") for key in stats):
            print(
                f"{'':<28} overload: "
                f"depth={stats.get('admission_depth', 0)} "
                f"peak={stats.get('admission_peak_depth', 0)} "
                f"busy={stats.get('admission_busy_rejections', 0)} "
                f"deadline_expired="
                f"{stats.get('admission_deadline_rejections', 0)}"
            )
    evidence = detector.check()
    for item in evidence:
        print(
            f"DIVERGENCE at {item.entries} entries: "
            + ", ".join(f"{label}={root.hex()[:16]}" for label, root in item.roots)
        )
    if evidence:
        return 2
    return 1 if unreachable else 0


def _load_public_key(path: str) -> PublicKey:
    """Read a logger public key file: raw ``PublicKey.to_bytes()`` output,
    or the same bytes hex-encoded (what ``sth`` prints)."""
    try:
        with open(path, "rb") as f:
            blob = f.read()
    except OSError as exc:
        raise SystemExit(f"cannot read key file {path}: {exc}")
    try:
        return PublicKey.from_bytes(blob)
    except Exception:
        pass
    try:
        return PublicKey.from_bytes(bytes.fromhex(blob.decode("ascii").strip()))
    except Exception:
        raise SystemExit(f"{path} is not a logger public key (raw or hex)")


def _cmd_sth(args: argparse.Namespace) -> int:
    """Fetch each replica's signed tree head; cross-check for split views.

    With ``--key`` the heads are signature-verified and any conflict is
    *proven* equivocation (exit 2); without it the command only reports
    what each replica claims.
    """
    key = _load_public_key(args.key) if args.key else None
    relay = GossipRelay("cli")
    unreachable = 0
    bad_signature = 0
    for value in args.replica:
        client = RemoteLogger(_parse_address(value))
        try:
            sth = client.fetch_sth(timeout=args.timeout, shard=args.shard)
        except LoggingError as exc:
            print(f"{value:<28} UNREACHABLE ({exc})")
            unreachable += 1
            continue
        finally:
            client.close()
        if key is not None:
            relay.register_key(sth.log_id, key)
            verdict = "sig=OK" if sth.verify(key) else "sig=BAD"
            if verdict == "sig=BAD":
                bad_signature += 1
        else:
            verdict = "sig=unverified"
        relay.observe(sth, source=value)
        print(
            f"{value:<28} log={sth.log_id} scope={sth.scope} "
            f"entries={sth.entries:<8} root={sth.merkle_root.hex()[:16]} "
            f"head={sth.chain_head.hex()[:16]} {verdict}"
        )
    for item in relay.evidence():
        print(f"EQUIVOCATION: {item.describe()}")
    if relay.evidence() or bad_signature:
        return 2
    return 1 if unreachable else 0


def _cmd_proof(args: argparse.Namespace) -> int:
    """Verify one record's inclusion against the replica's signed head.

    Fetches the record, the latest STH, and an inclusion proof at the
    STH's tree size, then checks the proof against the signed root (and,
    with ``--key``, the STH signature itself).  Exit 2 on any failure:
    the logger is claiming a history that does not contain this record.
    """
    client = RemoteLogger(_parse_address(args.replica))
    try:
        try:
            sth = client.fetch_sth(timeout=args.timeout, shard=args.shard)
        except LoggingError as exc:
            print(f"cannot fetch STH: {exc}")
            return 2
        if args.key:
            key = _load_public_key(args.key)
            if not sth.verify(key):
                print(f"STH signature INVALID for log {sth.log_id}")
                return 2
        if args.index >= sth.entries:
            print(
                f"index {args.index} is beyond the signed head "
                f"({sth.entries} entries)"
            )
            return 2
        try:
            records = client.fetch_records(
                start=args.index, count=1, timeout=args.timeout,
                shard=args.shard,
            )
            proof = client.prove_inclusion(
                args.index, tree_size=sth.entries, timeout=args.timeout,
                shard=args.shard,
            )
        except ProofError as exc:
            print(f"proof REFUSED: {exc}")
            return 2
        except LoggingError as exc:
            print(f"cannot fetch proof: {exc}")
            return 2
        if not records:
            print(f"no record at index {args.index}")
            return 2
        if not proof.verify(records[0], sth.merkle_root):
            print(
                f"inclusion proof INVALID: record {args.index} is not in "
                f"the signed tree (root {sth.merkle_root.hex()[:16]})"
            )
            return 2
        sig_note = "signature verified" if args.key else "signature unverified"
        print(
            f"record {args.index} INCLUDED in log {sth.log_id} at size "
            f"{sth.entries} (root {sth.merkle_root.hex()[:16]}, {sig_note})"
        )
        return 0
    finally:
        client.close()


def _cmd_replicas(args: argparse.Namespace) -> int:
    """Replica-set status: per-replica health, breaker, lag, quorum."""
    config = ReplicationConfig(quorum=args.quorum)
    logger_set = ReplicatedLogger(
        [_parse_address(value) for value in args.replica], config=config
    )
    try:
        if args.key:
            logger_set.enable_sth_gossip(_load_public_key(args.key))
        logger_set.probe()
        for status in logger_set.statuses():
            if status.entries is None:
                detail = f"UNREACHABLE ({status.last_error})"
            else:
                detail = (
                    f"entries={status.entries:<8} lag={status.lag:<6} "
                    f"root={status.merkle_root.hex()[:16]}"
                )
            print(
                f"replica-{status.index} {args.replica[status.index]:<24} "
                f"breaker={status.breaker:<9} {detail}"
            )
        # One-shot probe: judge quorum on what actually answered (a single
        # failed health is below the breaker threshold, so breaker state
        # alone would call a dead replica healthy here).
        statuses = logger_set.statuses()
        healthy = sum(
            1
            for s in statuses
            if s.entries is not None and s.breaker != "open"
        )
        quorum_status = logger_set.quorum_status()
        quorum_met = healthy >= quorum_status["quorum"]
        print(
            f"quorum: {healthy}/{quorum_status['replicas']} healthy, "
            f"{quorum_status['quorum']} required -> "
            + ("MET" if quorum_met else "NOT MET")
        )
        evidence = logger_set.divergence()
        for item in evidence:
            print(
                f"DIVERGENCE at {item.entries} entries: "
                + ", ".join(
                    f"{label}={root.hex()[:16]}" for label, root in item.roots
                )
            )
        equivocation = logger_set.equivocation()
        for item in equivocation:
            print(f"EQUIVOCATION: {item.describe()}")
        if args.audit:
            audit_clients = [
                RemoteLogger(_parse_address(value)) for value in args.replica
            ]
            try:
                result = audit_replica_set(audit_clients, quorum=args.quorum)
            finally:
                for client in audit_clients:
                    client.close()
            print(
                f"audited replica-{result.audited_replica} "
                f"({result.audited_entries} entries, "
                f"common prefix {result.common_prefix}): "
                f"{len(result.report.valid_entries())} valid"
            )
        if evidence or equivocation:
            return 2
        return 0 if quorum_met else 1
    finally:
        logger_set.close()


def _add_source_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("case", nargs="?", default=None)
    parser.add_argument(
        "--store",
        default=None,
        metavar="STORE_DIR",
        help="operate on a durable log-store directory instead of a case",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="open --store as a sharded layout of N shard directories",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools",
        description="Third-party investigation of ADLP evidence bundles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_verify = sub.add_parser("verify", help="check tamper evidence")
    _add_source_arguments(p_verify)
    p_verify.set_defaults(func=_cmd_verify)

    p_inspect = sub.add_parser("inspect", help="list log entries")
    _add_source_arguments(p_inspect)
    p_inspect.add_argument("--component", default=None)
    p_inspect.add_argument("--topic", default=None)
    p_inspect.add_argument("--limit", type=int, default=50)
    p_inspect.add_argument(
        "--shard",
        type=int,
        default=None,
        metavar="I",
        help="list only shard I's entries (with --shards)",
    )
    p_inspect.set_defaults(func=_cmd_inspect)

    p_audit = sub.add_parser("audit", help="classify all entries")
    _add_source_arguments(p_audit)
    p_audit.add_argument(
        "--publisher",
        action="append",
        default=[],
        metavar="TOPIC=COMPONENT",
        help="declare a topic's unique publisher (repeatable)",
    )
    p_audit.add_argument("--max-findings", type=int, default=20)
    p_audit.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="pool size for a sharded audit (default: min(shards, cpus))",
    )
    p_audit.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="sharded-audit pool: threads in this process, or a "
        "spawn-context process pool (signature checks escape the GIL)",
    )
    p_audit.set_defaults(func=_cmd_audit)

    p_trace = sub.add_parser("trace", help="provenance lineage of one datum")
    p_trace.add_argument("case")
    p_trace.add_argument("topic")
    p_trace.add_argument("seq", type=int)
    p_trace.set_defaults(func=_cmd_trace)

    p_recover = sub.add_parser(
        "recover", help="replay a durable store's WAL after a crash"
    )
    p_recover.add_argument("store_dir")
    p_recover.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="recover all N shard directories of a sharded layout",
    )
    p_recover.add_argument(
        "--shard",
        type=int,
        default=None,
        metavar="I",
        help="recover only shard I's directory",
    )
    p_recover.set_defaults(func=_cmd_recover)

    p_health = sub.add_parser(
        "health", help="probe live log-server replicas' commitments"
    )
    p_health.add_argument("replica", nargs="+", metavar="HOST:PORT")
    p_health.add_argument("--timeout", type=float, default=2.0)
    p_health.set_defaults(func=_cmd_health)

    p_replicas = sub.add_parser(
        "replicas", help="replica-set status: breakers, lag, quorum"
    )
    p_replicas.add_argument("replica", nargs="+", metavar="HOST:PORT")
    p_replicas.add_argument(
        "--quorum",
        type=int,
        default=None,
        help="required agreeing replicas (default: majority)",
    )
    p_replicas.add_argument(
        "--audit",
        action="store_true",
        help="also audit the quorum-consistent view",
    )
    p_replicas.add_argument(
        "--key",
        default=None,
        metavar="KEY_FILE",
        help="logger public key: also gossip signed tree heads across "
        "the replicas and report proven equivocation",
    )
    p_replicas.set_defaults(func=_cmd_replicas)

    p_sth = sub.add_parser(
        "sth", help="fetch signed tree heads; cross-check for split views"
    )
    p_sth.add_argument("replica", nargs="+", metavar="HOST:PORT")
    p_sth.add_argument("--timeout", type=float, default=2.0)
    p_sth.add_argument(
        "--shard",
        type=int,
        default=None,
        metavar="I",
        help="fetch shard I's head instead of the whole-log/set head",
    )
    p_sth.add_argument(
        "--key",
        default=None,
        metavar="KEY_FILE",
        help="logger public key (raw or hex file): verify signatures, "
        "making any conflict proven equivocation",
    )
    p_sth.set_defaults(func=_cmd_sth)

    p_proof = sub.add_parser(
        "proof", help="verify one record's inclusion against the signed head"
    )
    p_proof.add_argument("replica", metavar="HOST:PORT")
    p_proof.add_argument("index", type=int, metavar="INDEX")
    p_proof.add_argument("--timeout", type=float, default=2.0)
    p_proof.add_argument(
        "--shard",
        type=int,
        default=None,
        metavar="I",
        help="prove within shard I (sharded servers)",
    )
    p_proof.add_argument(
        "--key",
        default=None,
        metavar="KEY_FILE",
        help="logger public key: also verify the STH signature",
    )
    p_proof.set_defaults(func=_cmd_proof)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
