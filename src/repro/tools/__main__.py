"""``python -m repro.tools`` entry point."""

import sys

from repro.tools.cli import main

sys.exit(main())
