"""Investigator tooling.

The paper motivates ADLP with third-party investigators (e.g. the NTSB)
who must examine run-time evidence *independently* of the manufacturer
(Section I).  This package gives them a workflow:

- :mod:`repro.tools.caseio` -- export a log server's evidence as a
  self-contained, tamper-evident **case bundle** on disk and load it back.
- :mod:`repro.tools.cli` -- ``python -m repro.tools`` with subcommands
  ``verify`` (integrity), ``inspect`` (list entries), ``audit`` (full
  classification), and ``trace`` (provenance lineage of one datum).
"""

from repro.tools.caseio import export_case, load_case, CaseBundle

__all__ = ["export_case", "load_case", "CaseBundle"]
