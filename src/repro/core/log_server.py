"""The trusted logger.

Accepts public-key registrations and log entries from components, stores the
entries tamper-evidently, and answers the auditor's queries.  Entries are
"simply pushed into the server" (Section V-B): there is no response path a
component could depend on, so a logger failure cannot stall the data plane
-- the paper's freedom from single-point failure.

When backed by a :class:`~repro.storage.durable_store.DurableLogStore` the
server also survives its *own* death: on construction it replays whatever
the store recovered -- decoded entries, Merkle tree, per-component
counters, and the key registry (journaled KEY records plus the checkpoint
snapshot) -- and cross-checks the rebuilt state against the checkpoint
commitments, so ``verify_integrity()``, ``merkle_root()``, and every audit
verdict after a crash equal those of a never-crashed run.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.core.entries import Direction, LogEntry
from repro.crypto.keys import PrivateKey, PublicKey
from repro.crypto.keystore import KeyStore
from repro.crypto.merkle import (
    MerkleConsistencyProof,
    MerkleFrontier,
    MerkleProof,
    MerkleTree,
)
from repro.core.log_store import InMemoryLogStore, LogStore
from repro.errors import DecodingError, LogIntegrityError, LoggingError


@dataclass(frozen=True)
class LogCommitment:
    """A logger's publishable commitment to everything it has ingested.

    One replica's answer to "what do you hold?": two replicas holding the
    same entries in the same order agree on every field; any divergence in
    content or order changes ``chain_head`` and ``merkle_root``.  Cheap to
    take (O(log n) via the Merkle frontier), so replicated deployments can
    poll it as a health probe.
    """

    entries: int
    chain_head: bytes
    merkle_root: bytes
    total_bytes: int


class LogServer:
    """Key registry + tamper-evident entry store + query interface."""

    def __init__(
        self,
        store: Optional[LogStore] = None,
        signer: Optional[PrivateKey] = None,
        log_id: Optional[str] = None,
    ):
        self.keystore = KeyStore()
        #: Logger identity keypair; enables signed tree heads when set.
        self._signer = signer
        self.log_id = log_id or (
            f"log-{signer.public_key.fingerprint()}" if signer else "unsigned"
        )
        # identity test: an empty LogStore is falsy (it defines __len__),
        # `or` would wrongly replace it
        self.store: LogStore = store if store is not None else InMemoryLogStore()
        self._entries: List[LogEntry] = []
        self._merkle = MerkleTree()
        #: incremental twin of the Merkle tree; O(log n) to snapshot into
        #: a checkpoint where rebuilding the tree's frontier would be O(n)
        self._frontier = MerkleFrontier()
        self._by_component: Dict[str, int] = {}
        self._bytes_by_component: Dict[str, int] = {}
        self._observers: List = []
        # reentrant: a durable store's auto-checkpoint fires inside
        # ``submit`` (under this lock) and calls back into
        # ``_checkpoint_extra``, which locks again
        self._lock = threading.RLock()
        #: Undecodable submissions refused (never ingested); lets chaos
        #: tests tell "network mangled the entry" from "entry never sent".
        self.rejected_submissions = 0
        if hasattr(self.store, "checkpoint_extra_provider"):
            self.store.checkpoint_extra_provider = self._checkpoint_extra
        if len(self.store):
            self._recover_from_store()

    # -- crash recovery ----------------------------------------------------

    def _recover_from_store(self) -> None:
        """Rebuild derived state from a store that recovered from disk."""
        records = self.store.records()
        recovery = getattr(self.store, "recovery", None)
        with self._lock:
            for index, record in enumerate(records):
                try:
                    decoded = LogEntry.decode(record)
                except DecodingError as exc:
                    # CRC and chain both passed, so these bytes are what
                    # was originally accepted -- an undecodable record here
                    # means the store was fed garbage, not torn by a crash.
                    raise LogIntegrityError(
                        f"recovered record {index} does not decode: {exc}"
                    ) from exc
                self._entries.append(decoded)
                self._merkle.append(record)
                self._frontier.append(record)
                cid = decoded.component_id
                self._by_component[cid] = self._by_component.get(cid, 0) + 1
                self._bytes_by_component[cid] = (
                    self._bytes_by_component.get(cid, 0) + len(record)
                )
            store_root = getattr(self.store, "merkle_root", None)
            if store_root is not None and store_root() != self._merkle.root():
                raise LogIntegrityError(
                    "rebuilt Merkle tree disagrees with the store's "
                    "recovered frontier"
                )
            extra = dict(recovery.extra) if recovery is not None else {}
            self._restore_keys(extra)
            self._check_recovered_counters(extra)

    def _restore_keys(self, extra: Dict[str, Any]) -> None:
        keys: Dict[str, bytes] = {}
        for component_id, key_hex in extra.get("keys", {}).items():
            keys[component_id] = bytes.fromhex(key_hex)
        keys.update(getattr(self.store, "recovered_keys", {}))
        for component_id, key_bytes in keys.items():
            self.keystore.register(component_id, PublicKey.from_bytes(key_bytes))

    def _check_recovered_counters(self, extra: Dict[str, Any]) -> None:
        """The checkpoint's counters must match a recount of the prefix it
        covered -- a mismatch means entries were reordered or substituted
        in a way that kept the chain intact, which cannot happen short of
        a broken store implementation, so fail loudly."""
        snapshot = extra.get("by_component")
        anchor = getattr(
            getattr(self.store, "recovery", None), "checkpoint_entries", None
        )
        if snapshot is None or anchor is None:
            return
        recount: Dict[str, int] = {}
        for entry in self._entries[:anchor]:
            recount[entry.component_id] = recount.get(entry.component_id, 0) + 1
        if recount != {k: int(v) for k, v in snapshot.items()}:
            raise LogIntegrityError(
                "checkpointed per-component counters disagree with the "
                "recovered entries"
            )

    def _checkpoint_extra(self) -> Dict[str, Any]:
        """Server-side state folded into every durable-store checkpoint."""
        with self._lock:
            return {
                "keys": {
                    component_id: key.to_bytes().hex()
                    for component_id, key in self.keystore.snapshot().items()
                },
                "by_component": dict(self._by_component),
                "bytes_by_component": dict(self._bytes_by_component),
                "merkle_root": self._frontier.root().hex(),
            }

    # -- observers --------------------------------------------------------

    def add_observer(self, callback) -> None:
        """Register a callable invoked with each decoded entry after
        ingestion -- the hook online analyses attach to (e.g.
        :meth:`repro.audit.online.OnlineAuditor.attach`)."""
        with self._lock:
            self._observers.append(callback)

    def remove_observer(self, callback) -> None:
        with self._lock:
            if callback in self._observers:
                self._observers.remove(callback)

    # -- component-facing API ---------------------------------------------

    def register_key(self, component_id: str, key: Union[PublicKey, bytes]) -> None:
        """Store a component's public key (step 1 of the prototype flow).

        With a durable store the registration is also journaled (as an
        unchained KEY record), so the registry survives a logger restart.
        """
        if isinstance(key, bytes):
            key = PublicKey.from_bytes(key)
        self.keystore.register(component_id, key)
        append_key = getattr(self.store, "append_key", None)
        if append_key is not None:
            append_key(component_id, key.to_bytes())

    def submit(self, entry: Union[LogEntry, bytes]) -> int:
        """Ingest one log entry; returns its index in the log.

        Accepts either a decoded :class:`LogEntry` or its wire encoding
        (what a remote logging thread would push over a socket).
        """
        if isinstance(entry, LogEntry):
            record = entry.encode()
            decoded = entry
        else:
            record = bytes(entry)
            try:
                decoded = LogEntry.decode(record)
            except DecodingError as exc:
                with self._lock:
                    self.rejected_submissions += 1
                raise LoggingError(f"undecodable log entry: {exc}") from exc
        with self._lock:
            # Derived state first, the store's append last: if the store
            # auto-checkpoints inside ``append``, the checkpoint must see
            # counters that already include this entry.
            size = len(self._entries)
            self._apply_derived(decoded, record)
            try:
                index = self.store.append(record)
            except BaseException:
                # An injected crash or a real I/O failure: roll the derived
                # state back so memory never claims more than disk holds.
                self._rollback_derived(size, [(decoded, record)])
                raise
            observers = list(self._observers)
        for observer in observers:
            try:
                observer(decoded)
            except Exception:
                pass  # an analysis failure must not reject the entry
        return index

    def submit_batch(self, entries: List[Union[LogEntry, bytes]]) -> List[int]:
        """Ingest several entries as one group commit; returns their indices.

        The whole batch is appended under one lock acquisition and one
        store group commit (a durable store turns that into one WAL write
        burst with a single fsync).  Semantics are all-or-nothing: an
        undecodable entry rejects the batch before anything is mutated,
        and a store failure rolls the derived state back so memory never
        claims more than the store holds -- callers may then re-submit
        per entry to isolate a poison entry without double-ingesting its
        batchmates.  The resulting chain head and Merkle root are
        byte-identical to per-entry submission of the same stream.

        Subclasses or wrappers that intercept :meth:`submit` (outage
        simulation, admission control, ...) must intercept this method
        too: batched submission does NOT route through :meth:`submit`.
        """
        if not entries:
            return []
        pairs: List = []
        for entry in entries:
            if isinstance(entry, LogEntry):
                pairs.append((entry, entry.encode()))
            else:
                record = bytes(entry)
                try:
                    pairs.append((LogEntry.decode(record), record))
                except DecodingError as exc:
                    with self._lock:
                        self.rejected_submissions += 1
                    raise LoggingError(
                        f"undecodable log entry in batch: {exc}"
                    ) from exc
        with self._lock:
            size = len(self._entries)
            store_size = len(self.store)
            for decoded, record in pairs:
                self._apply_derived(decoded, record)
            try:
                indices = self.store.append_batch(
                    [record for _, record in pairs]
                )
            except BaseException:
                # A store whose group commit is atomic (in-memory, durable
                # WAL) kept nothing; a plain per-record fallback store may
                # have kept a prefix.  Either way, re-sync the derived
                # state to exactly what the store now holds.
                landed = len(self.store) - store_size
                self._rollback_derived(size + landed, pairs[landed:])
                raise
            observers = list(self._observers)
        for decoded, _ in pairs:
            for observer in observers:
                try:
                    observer(decoded)
                except Exception:
                    pass  # an analysis failure must not reject the entry
        return indices

    def _apply_derived(self, decoded: LogEntry, record: bytes) -> None:
        """Fold one accepted entry into the derived state (lock held)."""
        self._entries.append(decoded)
        self._merkle.append(record)
        self._frontier.append(record)
        cid = decoded.component_id
        self._by_component[cid] = self._by_component.get(cid, 0) + 1
        self._bytes_by_component[cid] = (
            self._bytes_by_component.get(cid, 0) + len(record)
        )

    def _rollback_derived(self, size: int, pairs: List) -> None:
        """Undo :meth:`_apply_derived` for ``pairs``, shrinking the derived
        state back to ``size`` entries (lock held)."""
        del self._entries[size:]
        self._merkle.truncate(size)
        self._frontier = self._merkle.frontier()
        for decoded, record in pairs:
            cid = decoded.component_id
            self._by_component[cid] -= 1
            if not self._by_component[cid]:
                del self._by_component[cid]
            self._bytes_by_component[cid] -= len(record)
            if not self._bytes_by_component[cid]:
                del self._bytes_by_component[cid]

    # -- auditor/query API ---------------------------------------------------

    def entries(
        self,
        component_id: Optional[str] = None,
        topic: Optional[str] = None,
        direction: Optional[Direction] = None,
        seq: Optional[int] = None,
    ) -> List[LogEntry]:
        """Entries matching every given filter, in ingestion order."""
        with self._lock:
            result = list(self._entries)
        if component_id is not None:
            result = [e for e in result if e.component_id == component_id]
        if topic is not None:
            result = [e for e in result if e.topic == topic]
        if direction is not None:
            result = [e for e in result if e.direction is direction]
        if seq is not None:
            result = [e for e in result if e.seq == seq]
        return result

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Total encoded bytes ingested (the Figure 15 / Table IV metric)."""
        # Taken under the server lock like the sibling accessors: reading
        # the store while ``submit`` appends under the lock would otherwise
        # race on multi-field store state.
        with self._lock:
            return self.store.total_bytes

    def bytes_by_component(self) -> Dict[str, int]:
        """Encoded bytes ingested per component."""
        with self._lock:
            return dict(self._bytes_by_component)

    def raw_records(self, start: int = 0, count: Optional[int] = None) -> List[bytes]:
        """Encoded records ``[start, start + count)`` in ingestion order.

        The fetch side of anti-entropy: a lagging replica replays exactly
        these bytes, so its hash chain and Merkle tree land on the same
        commitments as the donor's.
        """
        with self._lock:
            records = self.store.records()
        if start < 0:
            raise ValueError("start must be non-negative")
        end = len(records) if count is None else start + count
        return records[start:end]

    def components(self) -> List[str]:
        """All component ids that have registered a key."""
        return sorted(self.keystore.snapshot())

    def keys_snapshot(self) -> Dict[str, bytes]:
        """The key registry as ``component_id -> encoded public key``
        (what a recovering replica re-registers during catch-up)."""
        return {
            component_id: key.to_bytes()
            for component_id, key in self.keystore.snapshot().items()
        }

    def public_key(self, component_id: str) -> PublicKey:
        """The registered key for ``component_id`` (raises if unknown)."""
        return self.keystore.get(component_id)

    # -- integrity --------------------------------------------------------

    def verify_integrity(self) -> None:
        """Check the tamper-evident store; raises on any modification."""
        self.store.verify()

    def merkle_root(self) -> bytes:
        """Commitment over all ingested entries (publishable per epoch)."""
        with self._lock:
            return self._merkle.root()

    def commitment(self) -> LogCommitment:
        """Entry count, chain head, and Merkle root in one lock acquisition.

        Uses the incremental frontier for the root, so the snapshot is
        O(log n) even mid-ingest -- cheap enough for the ``OP_HEALTH``
        probe of a replicated deployment to poll continuously.
        """
        with self._lock:
            return LogCommitment(
                entries=len(self._entries),
                chain_head=self.store.head(),
                merkle_root=self._frontier.root(),
                total_bytes=self.store.total_bytes,
            )

    def prove_inclusion(self, index: int, tree_size: Optional[int] = None) -> MerkleProof:
        """Inclusion proof for the entry at ``index`` -- what a third-party
        investigator checks.  ``tree_size`` targets a historical root (the
        one a signed tree head of that size committed to); the default is
        the current tree.  Raises :class:`~repro.errors.ProofError` on an
        out-of-range index or size.
        """
        with self._lock:
            if tree_size is None:
                return self._merkle.prove(index)
            return self._merkle.prove(index, tree_size)

    def prove_consistency(
        self, old_size: int, new_size: Optional[int] = None
    ) -> MerkleConsistencyProof:
        """RFC 6962 consistency proof that the log at ``new_size`` (default:
        current) is an append-only extension of the log at ``old_size``."""
        with self._lock:
            if new_size is None:
                new_size = len(self._merkle)
            return self._merkle.prove_consistency(old_size, new_size)

    # -- signed tree heads -------------------------------------------------

    def attach_signer(self, signer: PrivateKey, log_id: Optional[str] = None) -> None:
        """Give the logger an identity keypair so it can issue signed tree
        heads.  ``log_id`` defaults to the key's fingerprint."""
        with self._lock:
            self._signer = signer
            self.log_id = log_id or f"log-{signer.public_key.fingerprint()}"

    @property
    def signer_public_key(self) -> Optional[PublicKey]:
        """The logger identity's public key (the STH trust anchor)."""
        with self._lock:
            return self._signer.public_key if self._signer else None

    def signed_tree_head(self, timestamp: Optional[float] = None):
        """Sign the current commitment: the logger's publishable promise of
        *the* history at this size.  Raises when no signer is attached."""
        from repro.gossip.sth import issue_sth

        with self._lock:
            if self._signer is None:
                raise LoggingError(
                    "log server has no signer attached; cannot issue a "
                    "signed tree head"
                )
            return issue_sth(
                self._signer,
                self.log_id,
                entries=len(self._entries),
                chain_head=self.store.head(),
                merkle_root=self._frontier.root(),
                timestamp=timestamp,
            )

    def checkpoint(self) -> None:
        """Force a durable checkpoint now (no-op for in-memory stores)."""
        do_checkpoint = getattr(self.store, "checkpoint", None)
        if do_checkpoint is not None:
            # Lock order must match submit(): server lock, then the store's.
            # The store's checkpoint calls back into _checkpoint_extra (which
            # re-enters this RLock); taking the store lock first would invert
            # the order against a concurrent submit and deadlock.
            with self._lock:
                do_checkpoint()

    def close(self) -> None:
        self.store.close()
