"""The trusted logger.

Accepts public-key registrations and log entries from components, stores the
entries tamper-evidently, and answers the auditor's queries.  Entries are
"simply pushed into the server" (Section V-B): there is no response path a
component could depend on, so a logger failure cannot stall the data plane
-- the paper's freedom from single-point failure.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Union

from repro.core.entries import Direction, LogEntry
from repro.crypto.keys import PublicKey
from repro.crypto.keystore import KeyStore
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.core.log_store import InMemoryLogStore, LogStore
from repro.errors import DecodingError, LoggingError


class LogServer:
    """Key registry + tamper-evident entry store + query interface."""

    def __init__(self, store: Optional[LogStore] = None):
        self.keystore = KeyStore()
        # identity test: an empty LogStore is falsy (it defines __len__),
        # `or` would wrongly replace it
        self.store: LogStore = store if store is not None else InMemoryLogStore()
        self._entries: List[LogEntry] = []
        self._merkle = MerkleTree()
        self._by_component: Dict[str, int] = {}
        self._bytes_by_component: Dict[str, int] = {}
        self._observers: List = []
        self._lock = threading.Lock()
        #: Undecodable submissions refused (never ingested); lets chaos
        #: tests tell "network mangled the entry" from "entry never sent".
        self.rejected_submissions = 0

    def add_observer(self, callback) -> None:
        """Register a callable invoked with each decoded entry after
        ingestion -- the hook online analyses attach to (e.g.
        :meth:`repro.audit.online.OnlineAuditor.attach`)."""
        with self._lock:
            self._observers.append(callback)

    def remove_observer(self, callback) -> None:
        with self._lock:
            if callback in self._observers:
                self._observers.remove(callback)

    # -- component-facing API ---------------------------------------------

    def register_key(self, component_id: str, key: Union[PublicKey, bytes]) -> None:
        """Store a component's public key (step 1 of the prototype flow)."""
        if isinstance(key, bytes):
            key = PublicKey.from_bytes(key)
        self.keystore.register(component_id, key)

    def submit(self, entry: Union[LogEntry, bytes]) -> int:
        """Ingest one log entry; returns its index in the log.

        Accepts either a decoded :class:`LogEntry` or its wire encoding
        (what a remote logging thread would push over a socket).
        """
        if isinstance(entry, LogEntry):
            record = entry.encode()
            decoded = entry
        else:
            record = bytes(entry)
            try:
                decoded = LogEntry.decode(record)
            except DecodingError as exc:
                with self._lock:
                    self.rejected_submissions += 1
                raise LoggingError(f"undecodable log entry: {exc}") from exc
        with self._lock:
            index = self.store.append(record)
            self._entries.append(decoded)
            self._merkle.append(record)
            cid = decoded.component_id
            self._by_component[cid] = self._by_component.get(cid, 0) + 1
            self._bytes_by_component[cid] = (
                self._bytes_by_component.get(cid, 0) + len(record)
            )
            observers = list(self._observers)
        for observer in observers:
            try:
                observer(decoded)
            except Exception:
                pass  # an analysis failure must not reject the entry
        return index

    # -- auditor/query API ---------------------------------------------------

    def entries(
        self,
        component_id: Optional[str] = None,
        topic: Optional[str] = None,
        direction: Optional[Direction] = None,
        seq: Optional[int] = None,
    ) -> List[LogEntry]:
        """Entries matching every given filter, in ingestion order."""
        with self._lock:
            result = list(self._entries)
        if component_id is not None:
            result = [e for e in result if e.component_id == component_id]
        if topic is not None:
            result = [e for e in result if e.topic == topic]
        if direction is not None:
            result = [e for e in result if e.direction is direction]
        if seq is not None:
            result = [e for e in result if e.seq == seq]
        return result

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Total encoded bytes ingested (the Figure 15 / Table IV metric)."""
        return self.store.total_bytes

    def bytes_by_component(self) -> Dict[str, int]:
        """Encoded bytes ingested per component."""
        with self._lock:
            return dict(self._bytes_by_component)

    def components(self) -> List[str]:
        """All component ids that have registered a key."""
        return sorted(self.keystore.snapshot())

    def public_key(self, component_id: str) -> PublicKey:
        """The registered key for ``component_id`` (raises if unknown)."""
        return self.keystore.get(component_id)

    # -- integrity --------------------------------------------------------

    def verify_integrity(self) -> None:
        """Check the tamper-evident store; raises on any modification."""
        self.store.verify()

    def merkle_root(self) -> bytes:
        """Commitment over all ingested entries (publishable per epoch)."""
        with self._lock:
            return self._merkle.root()

    def prove_inclusion(self, index: int) -> MerkleProof:
        """Inclusion proof for the entry at ``index`` against the current
        Merkle root -- what a third-party investigator checks."""
        with self._lock:
            return self._merkle.prove(index)

    def close(self) -> None:
        self.store.close()
