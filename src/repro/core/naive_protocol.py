"""The naive ("base") logging protocol of Definition 2.

Each side independently enters ``(id, type(D), direction, t, D)`` -- no
signatures, no acknowledgements, no interdependence between the entries.
Section III-B shows why this is unaccountable; it is nevertheless the
baseline every evaluation table compares ADLP against, so it is implemented
as a first-class transport protocol here.

The wire format is identical to :class:`PlainProtocol` (bare payloads):
logging happens purely on the side.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.logging_thread import LoggingThread
from repro.middleware.transport.base import (
    Connection,
    PublisherProtocol,
    SubscriberProtocol,
    TransportProtocol,
)
from repro.util.clock import Clock, SystemClock


class _NaivePublisherProtocol(PublisherProtocol):
    def __init__(self, outer: "NaiveProtocol", topic: str, type_name: str):
        self._outer = outer
        self._topic = topic
        self._type_name = type_name

    def make_frame(self, seq: int, payload: bytes) -> bytes:
        # One entry per publication: the naive publisher does not know (or
        # care) who its subscribers are.
        self._outer._log(
            direction=Direction.OUT,
            topic=self._topic,
            type_name=self._type_name,
            seq=seq,
            data=payload,
        )
        return payload


class _NaiveSubscriberProtocol(SubscriberProtocol):
    def __init__(self, outer: "NaiveProtocol", topic: str, type_name: str):
        self._outer = outer
        self._topic = topic
        self._type_name = type_name

    def on_frame(
        self, publisher_id: str, connection: Connection, frame: bytes
    ) -> Optional[bytes]:
        self._outer._log(
            direction=Direction.IN,
            topic=self._topic,
            type_name=self._type_name,
            seq=0,  # the naive scheme has no transport-level sequence
            data=frame,
            peer_id=publisher_id,
        )
        return frame


class NaiveProtocol(TransportProtocol):
    """Definition 2's logging scheme as a pluggable transport protocol.

    :param component_id: this node's unique id.
    :param submit: log-server ingestion function
        (e.g. ``log_server.submit``).
    :param clock: timestamp source for log entries.
    :param subscriber_stores_hash: store ``h(D)`` instead of ``D`` in
        subscription entries.  The paper's Table IV measures base logging
        with "the subscribers store hashed data"; this flag reproduces that
        configuration (the default matches Table III's base scheme, which
        stores data as-is).
    """

    name = "naive"

    def __init__(
        self,
        component_id: str,
        submit: Callable[[Union[LogEntry, bytes]], int],
        clock: Optional[Clock] = None,
        subscriber_stores_hash: bool = False,
    ):
        self.component_id = component_id
        self.clock = clock or SystemClock()
        self.subscriber_stores_hash = subscriber_stores_hash
        self.logging_thread = LoggingThread(component_id, submit)

    def _log(
        self,
        direction: Direction,
        topic: str,
        type_name: str,
        seq: int,
        data: bytes,
        peer_id: str = "",
    ) -> None:
        entry = LogEntry(
            component_id=self.component_id,
            topic=topic,
            type_name=type_name,
            direction=direction,
            seq=seq,
            timestamp=self.clock.now(),
            scheme=Scheme.NAIVE,
            peer_id=peer_id,
        )
        if direction is Direction.IN and self.subscriber_stores_hash:
            from repro.core.protocol import message_digest

            entry.data_hash = message_digest(seq, data)
        else:
            entry.data = data
        self.logging_thread.enqueue(entry)

    def publisher_protocol(self, topic: str, type_name: str) -> PublisherProtocol:
        return _NaivePublisherProtocol(self, topic, type_name)

    def subscriber_protocol(self, topic: str, type_name: str) -> SubscriberProtocol:
        return _NaiveSubscriberProtocol(self, topic, type_name)

    def flush(self, timeout: float = 5.0) -> bool:
        """Wait until all queued log entries reached the server."""
        return self.logging_thread.flush(timeout)

    def close(self) -> None:
        self.logging_thread.stop()
