"""The per-node logging thread.

The prototype "created a Logging Thread that runs in parallel with each
node's main thread.  One logging thread is created per ROS node, no matter
how many topics the node publishes and subscribes" (Section V-B).  Entries
are queued by the transport protocol on the hot path and pushed to the log
server asynchronously, so logging never blocks publication or delivery.

When the sink supports group commit (a ``submit_batch`` callable) the
worker drains up to ``batch_max`` queued entries per wakeup and submits
them in one call -- one lock acquisition, one WAL fsync, one RPC round
trip for the whole batch instead of per entry.  Batch submission is
all-or-nothing at the sink, so a failed batch is retried and finally
re-submitted per entry, isolating a poison entry without dropping its
batchmates.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, List, Optional, Union

from repro.core.entries import LogEntry
from repro.errors import ServerBusy
from repro.util.concurrency import StoppableThread

#: Entries buffered before the submitting thread blocks (backpressure).
_QUEUE_CAPACITY = 4096

#: BUSY verdicts tolerated per submission before the ordinary retry
#: ladder takes over.  BUSY is the server *cooperating* (admission
#: control asked us to wait), so honoring its retry-after hint this many
#: times does not burn ``max_retries`` -- but a server that stays busy
#: forever must not wedge the worker, hence the separate bound.
_BUSY_RETRY_LIMIT = 8


class LoggingThread:
    """Asynchronous submitter of log entries to a log-server callable.

    :param component_id: owning node's id (used for the thread name).
    :param submit: the ingestion function, typically
        :meth:`repro.core.log_server.LogServer.submit`.
    :param max_retries: failed submissions are retried this many times
        (with exponentially growing sleeps) before the entry is counted as
        dropped -- a transient logger hiccup must not lose evidence.
    :param retry_backoff: initial sleep between retries; doubles per
        attempt.
    :param on_retry: callable invoked once per retry attempt (stats hook).
    :param submit_batch: optional group-commit ingestion function (e.g.
        :meth:`repro.core.log_server.LogServer.submit_batch`); when given
        and ``batch_max > 1``, queued entries are drained and submitted in
        batches of up to ``batch_max``.
    :param batch_max: upper bound on entries per ``submit_batch`` call.
    :param tick: optional callable invoked once per worker wakeup (both
        after a drain and on idle timeouts) -- the hook deadline-driven
        maintenance like the ACK aggregator's expiry flush piggybacks on.
    """

    def __init__(
        self,
        component_id: str,
        submit: Callable[[Union[LogEntry, bytes]], int],
        max_retries: int = 0,
        retry_backoff: float = 0.01,
        on_retry: Optional[Callable[[], None]] = None,
        submit_batch: Optional[Callable[[List[Union[LogEntry, bytes]]], List[int]]] = None,
        batch_max: int = 1,
        tick: Optional[Callable[[], None]] = None,
    ):
        if batch_max < 1:
            raise ValueError("batch_max must be at least 1")
        self.component_id = component_id
        self._submit = submit
        self._submit_batch = submit_batch
        self._batch_max = batch_max
        self._max_retries = max_retries
        self._retry_backoff = retry_backoff
        self._on_retry = on_retry
        self._tick = tick
        self._queue: "queue.Queue" = queue.Queue(maxsize=_QUEUE_CAPACITY)
        self._pending = 0
        self._pending_lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()
        self._dropped = 0
        #: Entries submitted through a grouped ``submit_batch`` call (the
        #: rest went through per-entry ``submit``).
        self.batched = 0
        #: Grouped ``submit_batch`` calls issued.
        self.batches = 0
        #: BUSY-driven waits honored (server-side admission backpressure).
        self.busy_backoffs = 0
        self._worker = StoppableThread(
            name=f"logging-{component_id}", target=self._run
        )
        self._worker.start()

    def enqueue(self, entry: LogEntry) -> None:
        """Queue an entry for submission (hot path; non-blocking).

        If the queue is full the entry is dropped and counted -- a failing
        logger must not stall the node (the paper's no-single-point-of-
        failure property).  Dropped entries surface in :attr:`dropped`.
        """
        with self._pending_lock:
            self._pending += 1
            self._idle.clear()
        try:
            self._queue.put_nowait(entry)
        except queue.Full:
            self._dropped += 1
            self._finish_one()

    def _finish_one(self) -> None:
        with self._pending_lock:
            self._pending -= 1
            if self._pending == 0:
                self._idle.set()

    def _run(self) -> None:
        while True:
            try:
                entry = self._queue.get(timeout=0.1)
            except queue.Empty:
                self._run_tick()
                if self._worker.stopped():
                    return
                continue
            batch = [entry]
            while len(batch) < self._batch_max:
                try:
                    batch.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            try:
                if self._submit_batch is not None and len(batch) > 1:
                    self._submit_batch_with_retries(batch)
                else:
                    for item in batch:
                        self._submit_with_retries(item)
            finally:
                for _ in batch:
                    self._finish_one()
            self._run_tick()

    def _run_tick(self) -> None:
        if self._tick is None:
            return
        try:
            self._tick()
        except Exception:
            pass  # maintenance trouble must not kill the submit loop

    def _busy_wait(self, exc: ServerBusy, busy_waits: int) -> bool:
        """Honor a BUSY verdict's retry-after hint; ``False`` once the
        separate busy bound is spent (fall through to the retry ladder)."""
        if busy_waits >= _BUSY_RETRY_LIMIT or self._worker.stopped():
            return False
        self.busy_backoffs += 1
        time.sleep(max(exc.retry_after, self._retry_backoff))
        return True

    def _submit_with_retries(self, entry: LogEntry) -> None:
        backoff = self._retry_backoff
        busy_waits = 0
        attempt = 0
        while attempt <= self._max_retries:
            try:
                self._submit(entry)
                return
            except ServerBusy as exc:
                # Admission backpressure: wait the hinted time without
                # burning an ordinary retry (the server is cooperating,
                # not failing), up to the busy bound.
                if self._busy_wait(exc, busy_waits):
                    busy_waits += 1
                    continue
                attempt += 1
            except Exception:
                # The logger is outside the node's failure domain; errors
                # are tolerated (and visible in server-side counts).
                attempt += 1
                if attempt > self._max_retries or self._worker.stopped():
                    break
                if self._on_retry is not None:
                    self._on_retry()
                time.sleep(backoff)
                backoff *= 2
        self._dropped += 1

    def _submit_batch_with_retries(self, batch: List[LogEntry]) -> None:
        """Group-commit ``batch``; on persistent failure fall back to
        per-entry submission.

        The sink's batch ingestion is all-or-nothing (rollback on
        failure), so re-submitting the same batch entry by entry cannot
        double-ingest -- it isolates a poison entry to its own drop
        instead of losing the whole batch.
        """
        backoff = self._retry_backoff
        busy_waits = 0
        attempt = 0
        while attempt <= self._max_retries:
            try:
                self._submit_batch(batch)
                self.batched += len(batch)
                self.batches += 1
                return
            except ServerBusy as exc:
                if self._busy_wait(exc, busy_waits):
                    busy_waits += 1
                    continue
                attempt += 1
            except Exception:
                attempt += 1
                if attempt > self._max_retries or self._worker.stopped():
                    break
                if self._on_retry is not None:
                    self._on_retry()
                time.sleep(backoff)
                backoff *= 2
        for entry in batch:
            self._submit_with_retries(entry)

    @property
    def dropped(self) -> int:
        """Entries lost to backpressure or submission failures."""
        return self._dropped

    def flush(self, timeout: float = 5.0) -> bool:
        """Block until all queued entries have been submitted."""
        return self._idle.wait(timeout)

    def stop(self, flush: bool = True, timeout: float = 5.0) -> None:
        """Flush (optionally) and stop the worker."""
        if flush:
            self.flush(timeout)
        self._worker.stop()
