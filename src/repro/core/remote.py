"""Remote trusted logger.

The paper's logger "could be a remote log server, a local file, or even a
trusted hardware device" (Section II-A).  The in-process
:class:`~repro.core.log_server.LogServer` covers the local cases; this
module puts it behind a socket:

- :class:`LogServerEndpoint` exposes a :class:`LogServer` over any
  middleware transport (TCP in practice), speaking a small framed RPC:
  ``REGISTER_KEY`` and ``SUBMIT``.
- :class:`RemoteLogger` is the component-side stub with the same
  ``register_key``/``submit`` surface the protocols expect, so an
  :class:`~repro.core.adlp_protocol.AdlpProtocol` can be pointed at a
  remote logger with no other change.

Faithful to the paper's failure model, ``SUBMIT`` is fire-and-forget: the
client never waits for a response, so "any failure at the log server does
not interrupt a normal operation of the ROS nodes".  Only key
registration is synchronous (it happens once, at startup, and the paper's
trust model requires the key to be transferred securely before data
flows).
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Union

from repro.core.entries import LogEntry
from repro.core.log_server import LogServer
from repro.crypto.keys import PublicKey
from repro.errors import LoggingError, TransportError
from repro.middleware.transport.base import (
    Connection,
    ConnectionClosed,
    Transport,
)
from repro.middleware.transport.tcp import TcpTransport
from repro.serialization import WireMessage, boolean, bytes_, string, uint64
from repro.storage.spillfile import DiskSpillFile
from repro.util.concurrency import StoppableThread

logger = logging.getLogger(__name__)

#: RPC operation codes.
OP_REGISTER_KEY = 1
OP_SUBMIT = 2


class LoggerRequest(WireMessage):
    """One framed request from a component to the log server."""

    op = uint64(1)
    component_id = string(2)
    key_bytes = bytes_(3)  # OP_REGISTER_KEY
    entry_bytes = bytes_(4)  # OP_SUBMIT


class LoggerResponse(WireMessage):
    """Response to synchronous requests (key registration only)."""

    ok = boolean(1)
    error = string(2)


class LogServerEndpoint:
    """Serves a :class:`LogServer` over a transport listener."""

    def __init__(self, server: LogServer, transport: Optional[Transport] = None):
        self.server = server
        self._transport = transport or TcpTransport()
        self._listener = self._transport.listen()
        self._connections: List[Connection] = []
        self._lock = threading.Lock()
        #: Submission frames received / rejected by the server (observability
        #: for chaos runs; rejection never propagates to the component).
        self.submissions = 0
        self.rejected = 0
        self._acceptor = StoppableThread("logserver-accept", target=self._accept_loop)
        self._acceptor.start()

    @property
    def address(self):
        """Address components pass to :class:`RemoteLogger`."""
        return self._listener.address

    def _accept_loop(self) -> None:
        while not self._acceptor.stopped():
            connection = self._listener.accept(timeout=0.1)
            if connection is None:
                continue
            with self._lock:
                self._connections.append(connection)
            worker = StoppableThread(
                "logserver-conn", target=lambda c=connection: self._serve(c)
            )
            worker.start()

    def _serve(self, connection: Connection) -> None:
        while not self._acceptor.stopped():
            try:
                frame = connection.recv_frame(timeout=0.1)
            except ConnectionClosed:
                return
            if frame is None:
                continue
            try:
                request = LoggerRequest.decode(frame)
            except Exception:
                continue  # a malformed frame must not kill the server
            if request.op == OP_REGISTER_KEY:
                response = LoggerResponse(ok=True)
                try:
                    self.server.register_key(request.component_id, request.key_bytes)
                except Exception as exc:
                    response = LoggerResponse(ok=False, error=str(exc))
                try:
                    connection.send_frame(response.encode())
                except ConnectionClosed:
                    return
            elif request.op == OP_SUBMIT:
                with self._lock:
                    self.submissions += 1
                try:
                    self.server.submit(request.entry_bytes)
                except LoggingError:
                    # fire-and-forget: bad entries are dropped server-side
                    with self._lock:
                        self.rejected += 1

    def close(self) -> None:
        self._acceptor.stop(join=False)
        self._listener.close()
        with self._lock:
            connections = list(self._connections)
        for connection in connections:
            connection.close()
        self._acceptor.stop()


class RemoteLogger:
    """Component-side stub: ``register_key`` + ``submit`` over a socket.

    Drop-in for the ``log_server`` argument of
    :class:`~repro.core.adlp_protocol.AdlpProtocol` /
    :class:`~repro.core.naive_protocol.NaiveProtocol` (``submit``).

    ``submit`` never blocks on the server.  If the connection dies, entries
    are *spilled* into a bounded in-memory queue and re-sent (oldest first)
    once the connection recovers.  When the queue overflows, the oldest
    entries overflow to a :class:`~repro.storage.spillfile.DiskSpillFile`
    (if ``spill_path`` was given) instead of being discarded -- a long
    outage then costs disk space, not evidence; an entry is only counted in
    :attr:`dropped` when there is no disk spill (or writing it fails).
    Reconnection attempts back off exponentially so a dead server is not
    hammered on the hot path.  The node keeps running throughout (the
    paper's no-single-point-of-failure property).
    """

    def __init__(
        self,
        address,
        transport: Optional[Transport] = None,
        spill_capacity: int = 1024,
        reconnect_backoff: float = 0.05,
        max_reconnect_backoff: float = 2.0,
        spill_path: Optional[str] = None,
    ):
        self._transport = transport or TcpTransport()
        self._address = address
        self._connection: Optional[Connection] = None
        self._lock = threading.Lock()
        self._spill: Deque[bytes] = deque()
        self._spill_capacity = spill_capacity
        self._disk: Optional[DiskSpillFile] = (
            DiskSpillFile(spill_path) if spill_path else None
        )
        self._initial_backoff = reconnect_backoff
        self._max_backoff = max_reconnect_backoff
        self._backoff = reconnect_backoff
        self._next_attempt = 0.0
        self._overflow_warned = False
        #: Entries permanently lost to spill-queue overflow.
        self.dropped = 0
        #: Entries that overflowed the memory queue onto disk.
        self.spilled_to_disk = 0
        #: Spilled entries successfully re-sent after a reconnect.
        self.retries = 0

    @property
    def spilled(self) -> int:
        """Entries currently parked in the spill queue (memory + disk)."""
        with self._lock:
            pending = len(self._spill)
            if self._disk is not None:
                pending += len(self._disk)
            return pending

    def stats(self) -> Dict[str, int]:
        """Loss/overflow counters, for merging into protocol ``stats()``."""
        with self._lock:
            return {
                "dropped": self.dropped,
                "spilled": len(self._spill)
                + (len(self._disk) if self._disk is not None else 0),
                "spilled_to_disk": self.spilled_to_disk,
                "spill_retries": self.retries,
            }

    def _connect(self) -> Optional[Connection]:
        with self._lock:
            if self._connection is not None and not self._connection.closed:
                return self._connection
            if time.monotonic() < self._next_attempt:
                return None  # backing off; do not hammer a dead server
            try:
                self._connection = self._transport.connect(self._address)
                self._backoff = self._initial_backoff
            except TransportError:
                self._connection = None
                self._next_attempt = time.monotonic() + self._backoff
                self._backoff = min(self._backoff * 2, self._max_backoff)
            return self._connection

    def register_key(self, component_id: str, key: Union[PublicKey, bytes]) -> None:
        """Synchronously register; raises if the server is unreachable or
        rejects the key (startup must not proceed unkeyed)."""
        if isinstance(key, PublicKey):
            key = key.to_bytes()
        connection = self._connect()
        if connection is None:
            raise LoggingError(f"log server unreachable at {self._address!r}")
        request = LoggerRequest(
            op=OP_REGISTER_KEY, component_id=component_id, key_bytes=key
        )
        connection.send_frame(request.encode())
        frame = connection.recv_frame(timeout=5.0)
        if frame is None:
            raise LoggingError("log server did not answer key registration")
        response = LoggerResponse.decode(frame)
        if not response.ok:
            raise LoggingError(f"key registration rejected: {response.error}")

    def submit(self, entry: Union[LogEntry, bytes]) -> int:
        """Fire-and-forget submission; returns 0 (no server-side index).

        Never raises: on connection trouble the encoded entry is spilled
        and retried on a later call (or via :meth:`flush_spill`).
        """
        record = entry.encode() if isinstance(entry, LogEntry) else bytes(entry)
        connection = self._connect()
        if connection is None:
            self._spill_entry(record)
            return 0
        if not self._drain_spill(connection):
            self._spill_entry(record)
            return 0
        try:
            connection.send_frame(
                LoggerRequest(op=OP_SUBMIT, entry_bytes=record).encode()
            )
        except ConnectionClosed:
            self._spill_entry(record)
        return 0

    def _spill_entry(self, record: bytes) -> None:
        with self._lock:
            self._spill.append(record)
            while len(self._spill) > self._spill_capacity:
                overflow = self._spill.popleft()
                if not self._overflow_warned:
                    self._overflow_warned = True
                    logger.warning(
                        "RemoteLogger spill queue overflowed (capacity %d); "
                        "%s",
                        self._spill_capacity,
                        "overflowing oldest entries to %s" % self._disk.path
                        if self._disk is not None
                        else "oldest evidence is being DROPPED "
                        "(no spill_path configured)",
                    )
                if self._disk is None:
                    self.dropped += 1  # overflow: oldest evidence lost
                    continue
                try:
                    self._disk.append(overflow)
                    self.spilled_to_disk += 1
                except OSError:
                    self.dropped += 1  # disk full/gone: lost after all

    def _drain_spill(self, connection: Connection) -> bool:
        """Re-send parked entries oldest-first; ``False`` on failure.

        The disk file holds entries *older* than anything in memory (it
        receives the memory queue's overflow), so it drains first to keep
        global FIFO order.
        """
        while self._disk is not None:
            record = self._disk.peek()
            if record is None:
                break
            try:
                connection.send_frame(
                    LoggerRequest(op=OP_SUBMIT, entry_bytes=record).encode()
                )
            except ConnectionClosed:
                return False
            # At-least-once window: a crash between send and consume re-sends
            # this one record on restart.  The server-side duplicate is
            # visible to the auditor, never silent loss.
            self._disk.consume()
            with self._lock:
                self.retries += 1
        while True:
            with self._lock:
                if not self._spill:
                    return True
                record = self._spill[0]
            try:
                connection.send_frame(
                    LoggerRequest(op=OP_SUBMIT, entry_bytes=record).encode()
                )
            except ConnectionClosed:
                return False
            with self._lock:
                # pop what we just sent (submit is single-callered per node,
                # but stay safe against concurrent drains)
                if self._spill and self._spill[0] is record:
                    self._spill.popleft()
                self.retries += 1

    def flush_spill(self) -> bool:
        """Attempt to re-send all spilled entries now; ``True`` if empty."""
        connection = self._connect()
        if connection is None:
            return self.spilled == 0
        return self._drain_spill(connection)

    def close(self) -> None:
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None
            if self._disk is not None:
                self._disk.close()
